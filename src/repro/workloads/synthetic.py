"""Synthetic workload generators.

The paper motivates FJS with cloud jobs that tolerate delayed starts
(batch analytics, maintenance, CI, backups).  These generators produce
seeded, reproducible instances across the axes the theory cares about:

* **arrival process** — Poisson (steady), uniform, or bursty;
* **length distribution** — uniform, lognormal (heavy-ish tail), bimodal
  (the short/long dichotomy every lower-bound construction exploits),
  Pareto (heavy tail), or constant;
* **laxity model** — proportional to length (users tolerate delays
  relative to job size), constant, uniform, or zero (rigid jobs).

All generators accept ``integral=True`` to round every quantity to
integers (lengths at least 1), producing instances the exact offline
solver can handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..core.job import Instance, Job

__all__ = [
    "WorkloadSpec",
    "generate",
    "poisson_instance",
    "bimodal_instance",
    "heavy_tail_instance",
    "rigid_instance",
    "small_integral_instance",
]

ArrivalKind = Literal["poisson", "uniform", "bursty"]
LengthKind = Literal["uniform", "lognormal", "bimodal", "pareto", "constant"]
LaxityKind = Literal["proportional", "constant", "uniform", "zero"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a synthetic workload.

    Parameters mirror the generator axes; see the module docstring.
    ``laxity_scale`` multiplies the base laxity (length for
    ``proportional``, 1.0 for ``constant``/``uniform``).
    """

    n: int
    arrival: ArrivalKind = "poisson"
    arrival_rate: float = 1.0
    length: LengthKind = "uniform"
    length_low: float = 1.0
    length_high: float = 10.0
    laxity: LaxityKind = "proportional"
    laxity_scale: float = 2.0
    integral: bool = False
    name: str | None = None

    def describe(self) -> str:
        return (
            f"{self.arrival}-arrivals(rate={self.arrival_rate:g}) × "
            f"{self.length}-lengths[{self.length_low:g},{self.length_high:g}] × "
            f"{self.laxity}-laxity(×{self.laxity_scale:g}), n={self.n}"
        )


def _arrivals(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.n == 0:
        return np.empty(0)
    if spec.arrival == "poisson":
        gaps = rng.exponential(1.0 / spec.arrival_rate, size=spec.n)
        return np.cumsum(gaps) - gaps[0]  # first arrival at 0
    if spec.arrival == "uniform":
        horizon = spec.n / spec.arrival_rate
        return np.sort(rng.uniform(0.0, horizon, size=spec.n))
    if spec.arrival == "bursty":
        # Clusters of geometric size arriving as a Poisson process of
        # bursts; jobs within a burst arrive (nearly) together.
        arrivals: list[float] = []
        t = 0.0
        while len(arrivals) < spec.n:
            burst = int(rng.geometric(0.25))
            jitter = rng.uniform(0.0, 0.05, size=burst)
            arrivals.extend((t + j) for j in jitter)
            t += rng.exponential(5.0 / spec.arrival_rate)
        return np.sort(np.array(arrivals[: spec.n]))
    raise ValueError(f"unknown arrival kind {spec.arrival!r}")


def _lengths(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    lo, hi = spec.length_low, spec.length_high
    if lo <= 0 or hi < lo:
        raise ValueError("need 0 < length_low <= length_high")
    if spec.length == "uniform":
        return rng.uniform(lo, hi, size=spec.n)
    if spec.length == "lognormal":
        mean = np.log(np.sqrt(lo * hi))
        sigma = max(1e-6, np.log(hi / lo) / 4.0)
        return np.clip(rng.lognormal(mean, sigma, size=spec.n), lo, hi)
    if spec.length == "bimodal":
        short = rng.random(spec.n) < 0.5
        return np.where(short, lo, hi).astype(np.float64)
    if spec.length == "pareto":
        raw = lo * (1.0 + rng.pareto(1.5, size=spec.n))
        return np.clip(raw, lo, hi)
    if spec.length == "constant":
        return np.full(spec.n, lo)
    raise ValueError(f"unknown length kind {spec.length!r}")


def _laxities(
    spec: WorkloadSpec, lengths: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    if spec.laxity_scale < 0:
        raise ValueError("laxity_scale must be non-negative")
    if spec.laxity == "proportional":
        return spec.laxity_scale * lengths
    if spec.laxity == "constant":
        return np.full(spec.n, spec.laxity_scale)
    if spec.laxity == "uniform":
        return rng.uniform(0.0, 2.0 * spec.laxity_scale, size=spec.n)
    if spec.laxity == "zero":
        return np.zeros(spec.n)
    raise ValueError(f"unknown laxity kind {spec.laxity!r}")


def generate(spec: WorkloadSpec, seed: int = 0) -> Instance:
    """Generate a reproducible instance from a :class:`WorkloadSpec`."""
    rng = np.random.default_rng(seed)
    arrivals = _arrivals(spec, rng)
    lengths = _lengths(spec, rng)
    laxities = _laxities(spec, lengths, rng)
    if spec.integral:
        arrivals = np.floor(arrivals)
        lengths = np.maximum(1.0, np.round(lengths))
        laxities = np.round(laxities)
    jobs = [
        Job(
            id=i,
            arrival=float(arrivals[i]),
            deadline=float(arrivals[i] + laxities[i]),
            length=float(lengths[i]),
        )
        for i in range(spec.n)
    ]
    name = spec.name or f"synthetic(seed={seed}, {spec.describe()})"
    return Instance(jobs, name=name)


# -- curated shortcut families -------------------------------------------------

def poisson_instance(
    n: int, seed: int = 0, *, rate: float = 1.0, laxity_scale: float = 2.0
) -> Instance:
    """Steady Poisson arrivals, uniform lengths, proportional laxity."""
    return generate(
        WorkloadSpec(n=n, arrival_rate=rate, laxity_scale=laxity_scale), seed
    )


def bimodal_instance(
    n: int, seed: int = 0, *, mu: float = 10.0, laxity_scale: float = 2.0
) -> Instance:
    """Short/long jobs (lengths 1 and μ) — the theory's hard dichotomy."""
    return generate(
        WorkloadSpec(
            n=n,
            length="bimodal",
            length_low=1.0,
            length_high=mu,
            laxity_scale=laxity_scale,
        ),
        seed,
    )


def heavy_tail_instance(n: int, seed: int = 0, *, hi: float = 100.0) -> Instance:
    """Pareto lengths with bursty arrivals — a stressy cloud-like mix."""
    return generate(
        WorkloadSpec(
            n=n,
            arrival="bursty",
            length="pareto",
            length_high=hi,
            laxity="uniform",
            laxity_scale=10.0,
        ),
        seed,
    )


def rigid_instance(n: int, seed: int = 0) -> Instance:
    """Zero-laxity jobs: every scheduler degenerates to Eager."""
    return generate(WorkloadSpec(n=n, laxity="zero"), seed)


def small_integral_instance(
    n: int,
    seed: int = 0,
    *,
    max_arrival: int = 8,
    max_laxity: int = 4,
    max_length: int = 4,
) -> Instance:
    """Tiny integral instances for exact-optimum comparisons.

    All quantities are small integers so the exact branch-and-bound
    solver finishes quickly; used pervasively by the property tests.
    """
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        arrival = float(rng.integers(0, max_arrival + 1))
        laxity = float(rng.integers(0, max_laxity + 1))
        length = float(rng.integers(1, max_length + 1))
        jobs.append(
            Job(id=i, arrival=arrival, deadline=arrival + laxity, length=length)
        )
    return Instance(jobs, name=f"small-integral(n={n}, seed={seed})")
