"""Instance perturbations for robustness studies.

Sensitivity questions ("what if deadlines were tighter?", "what if
arrivals jittered?") need controlled transforms of an existing instance.
Each function returns a new :class:`Instance`; nothing is modified in
place.  The property suite pins the monotonicity facts these transforms
obey — most importantly that *adding laxity can never hurt the offline
optimum* (every feasible schedule stays feasible).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidInstanceError
from ..core.job import Instance, Job

__all__ = [
    "scale_laxity",
    "jitter_arrivals",
    "drop_jobs",
    "tighten_to_rigid",
    "shift_times",
]


def scale_laxity(instance: Instance, factor: float) -> Instance:
    """Multiply every job's laxity by ``factor`` (>= 0).

    ``factor > 1`` relaxes (OPT can only improve); ``factor < 1``
    tightens (OPT can only degrade); ``factor = 0`` is
    :func:`tighten_to_rigid`.
    """
    if factor < 0:
        raise InvalidInstanceError("laxity factor must be non-negative")
    return Instance(
        (
            Job(
                id=j.id,
                arrival=j.arrival,
                deadline=j.arrival + factor * j.laxity,
                length=j.length,
                size=j.size,
            )
            for j in instance
        ),
        name=f"{instance.name}/laxity×{factor:g}",
    )


def tighten_to_rigid(instance: Instance) -> Instance:
    """Remove all laxity: every job must start at its arrival."""
    return scale_laxity(instance, 0.0)


def jitter_arrivals(
    instance: Instance, magnitude: float, seed: int = 0
) -> Instance:
    """Add uniform ``[-magnitude, +magnitude]`` noise to arrivals.

    Deadlines move with their arrivals (laxity is preserved); arrivals
    are clamped at 0.
    """
    if magnitude < 0:
        raise InvalidInstanceError("jitter magnitude must be non-negative")
    rng = np.random.default_rng(seed)
    jobs = []
    for j in instance:
        a = max(0.0, j.arrival + float(rng.uniform(-magnitude, magnitude)))
        jobs.append(
            Job(id=j.id, arrival=a, deadline=a + j.laxity, length=j.length, size=j.size)
        )
    return Instance(jobs, name=f"{instance.name}/jitter±{magnitude:g}")


def drop_jobs(instance: Instance, fraction: float, seed: int = 0) -> Instance:
    """Remove a uniformly random ``fraction`` of the jobs."""
    if not 0.0 <= fraction <= 1.0:
        raise InvalidInstanceError("fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    keep = [j for j in instance if rng.random() >= fraction]
    return Instance(keep, name=f"{instance.name}/drop{fraction:g}")


def shift_times(instance: Instance, delta: float) -> Instance:
    """Translate the whole instance by ``delta`` (resulting arrivals must
    stay non-negative)."""
    return Instance(
        (
            Job(
                id=j.id,
                arrival=j.arrival + delta,
                deadline=j.deadline + delta,
                length=j.length,
                size=j.size,
            )
            for j in instance
        ),
        name=f"{instance.name}/shift{delta:+g}",
    )
