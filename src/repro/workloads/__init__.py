"""Synthetic workload generators and sweep utilities."""

from .cloud import CloudWorkload, batch_window_instance, cloud_instance
from .perturb import (
    drop_jobs,
    jitter_arrivals,
    scale_laxity,
    shift_times,
    tighten_to_rigid,
)
from .processes import bursty_cascade_arrivals, mmpp_arrivals, mmpp_instance
from .sweep import GridResult, ratio_stats, run_grid
from .traces import read_swf_instance, write_swf_instance
from .synthetic import (
    WorkloadSpec,
    bimodal_instance,
    generate,
    heavy_tail_instance,
    poisson_instance,
    rigid_instance,
    small_integral_instance,
)

__all__ = [
    "WorkloadSpec",
    "generate",
    "poisson_instance",
    "bimodal_instance",
    "heavy_tail_instance",
    "rigid_instance",
    "small_integral_instance",
    "CloudWorkload",
    "cloud_instance",
    "batch_window_instance",
    "mmpp_arrivals",
    "mmpp_instance",
    "bursty_cascade_arrivals",
    "scale_laxity",
    "jitter_arrivals",
    "drop_jobs",
    "tighten_to_rigid",
    "shift_times",
    "read_swf_instance",
    "write_swf_instance",
    "GridResult",
    "run_grid",
    "ratio_stats",
]
