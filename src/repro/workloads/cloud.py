"""Cloud-style workloads for the DBP extension and the examples.

The paper's introduction motivates span minimisation with pay-as-you-go
cloud billing and energy-proportional servers.  Production traces are
proprietary; these generators synthesise the structural features that
matter for the span objective (documented substitution, DESIGN.md §5):

* diurnal arrival intensity (day/night load swing),
* a mix of interactive (short, low-laxity) and batch (long, laxity-rich)
  jobs,
* per-job resource demand (``size``) for MinUsageTime DBP packing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.job import Instance, Job

__all__ = ["CloudWorkload", "cloud_instance", "batch_window_instance"]


@dataclass(frozen=True)
class CloudWorkload:
    """Configuration of the synthetic cloud trace.

    ``interactive_fraction`` of jobs are short (lengths
    ``[0.05, 0.5]`` h) with laxity below ``0.1`` h; the rest are batch
    jobs (lengths ``[0.5, 8]`` h) whose starting deadlines stretch up to
    ``batch_max_laxity`` hours.  Sizes are fractions of a unit server.
    """

    n: int = 500
    days: float = 2.0
    interactive_fraction: float = 0.7
    batch_max_laxity: float = 12.0
    peak_rate_ratio: float = 4.0  # day/night arrival intensity ratio
    max_size: float = 0.5


def cloud_instance(config: CloudWorkload | None = None, seed: int = 0) -> Instance:
    """A diurnal interactive+batch cloud trace (times in hours)."""
    cfg = config or CloudWorkload()
    rng = np.random.default_rng(seed)

    # Diurnal arrivals via thinning: intensity peaks mid-day.
    horizon = 24.0 * cfg.days
    arrivals: list[float] = []
    t = 0.0
    lam_max = 1.0
    mean_gap = horizon / max(1, cfg.n) / 2.0
    while len(arrivals) < cfg.n:
        t += rng.exponential(mean_gap)
        if t > horizon:
            t = t % horizon  # wrap to keep exactly n jobs
        phase = np.sin(np.pi * ((t % 24.0) / 24.0)) ** 2
        lam = (1.0 + (cfg.peak_rate_ratio - 1.0) * phase) / cfg.peak_rate_ratio
        if rng.random() < lam / lam_max:
            arrivals.append(t)
    arr = np.sort(np.array(arrivals))

    jobs: list[Job] = []
    for i in range(cfg.n):
        interactive = rng.random() < cfg.interactive_fraction
        if interactive:
            length = float(rng.uniform(0.05, 0.5))
            laxity = float(rng.uniform(0.0, 0.1))
            size = float(rng.uniform(0.05, cfg.max_size / 2))
        else:
            length = float(rng.uniform(0.5, 8.0))
            laxity = float(rng.uniform(0.5, cfg.batch_max_laxity))
            size = float(rng.uniform(0.1, cfg.max_size))
        jobs.append(
            Job(
                id=i,
                arrival=float(arr[i]),
                deadline=float(arr[i] + laxity),
                length=length,
                size=size,
            )
        )
    return Instance(jobs, name=f"cloud(n={cfg.n}, seed={seed})")


def batch_window_instance(
    n: int, seed: int = 0, *, window: float = 24.0, mu: float = 16.0
) -> Instance:
    """Nightly-batch scenario: all jobs must *start* within one window.

    Jobs arrive throughout the window with laxity up to the window's end
    — the regime where span scheduling shines, since everything could in
    principle be co-scheduled near the deadline.
    """
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        a = float(rng.uniform(0.0, window * 0.8))
        length = float(rng.uniform(1.0, mu))
        jobs.append(
            Job(
                id=i,
                arrival=a,
                deadline=window,
                length=length,
                size=float(rng.uniform(0.1, 0.4)),
            )
        )
    return Instance(jobs, name=f"batch-window(n={n}, seed={seed})")
