"""Sweep utilities: run scheduler × instance grids and aggregate ratios.

The benchmark harness repeats one pattern everywhere: run a set of
schedulers over a family of instances, measure spans, and compare with a
reference (exact optimum, certified lower bound, or offline heuristic).
:func:`run_grid` centralises that pattern with deterministic seeding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.engine import simulate
from ..core.job import Instance
from ..schedulers.base import OnlineScheduler

__all__ = ["GridResult", "run_grid", "ratio_stats"]


@dataclass(frozen=True)
class GridResult:
    """One (scheduler, instance) cell of a sweep."""

    scheduler_name: str
    instance_name: str
    span: float
    reference: float
    events: int

    @property
    def ratio(self) -> float:
        """Span over the reference value (competitive-ratio estimate)."""
        return self.span / self.reference if self.reference > 0 else float("inf")


def run_grid(
    schedulers: Sequence[OnlineScheduler],
    instances: Iterable[Instance],
    reference: Callable[[Instance], float],
    *,
    clairvoyant: bool | None = None,
) -> list[GridResult]:
    """Run every scheduler on every instance against a reference span.

    Parameters
    ----------
    schedulers:
        Prototype scheduler objects; each run uses a fresh ``clone()``.
    instances:
        The instance family (materialised once, reused per scheduler).
    reference:
        ``Instance -> float`` producing the denominator (e.g.
        ``exact_optimal_span`` or ``span_lower_bound``), evaluated once
        per instance.
    clairvoyant:
        Information model override; by default each scheduler runs in
        the weakest model it supports (clairvoyant only when required).
    """
    inst_list = list(instances)
    refs = [reference(inst) for inst in inst_list]
    out: list[GridResult] = []
    for proto in schedulers:
        needs = getattr(type(proto), "requires_clairvoyance", False)
        mode = needs if clairvoyant is None else clairvoyant
        for inst, ref in zip(inst_list, refs):
            result = simulate(proto.clone(), inst, clairvoyant=mode)
            out.append(
                GridResult(
                    scheduler_name=proto.name,
                    instance_name=inst.name,
                    span=result.span,
                    reference=ref,
                    events=result.events_processed,
                )
            )
    return out


def ratio_stats(results: Iterable[GridResult]) -> dict[str, dict[str, float]]:
    """Aggregate ratios per scheduler: mean / max / p95.

    Returns ``{scheduler: {"mean": …, "max": …, "p95": …, "runs": …}}``.
    """
    by_sched: dict[str, list[float]] = {}
    for r in results:
        by_sched.setdefault(r.scheduler_name, []).append(r.ratio)
    stats: dict[str, dict[str, float]] = {}
    for name, ratios in by_sched.items():
        arr = np.asarray(ratios)
        stats[name] = {
            "mean": float(arr.mean()),
            "max": float(arr.max()),
            "p95": float(np.percentile(arr, 95)),
            "runs": float(arr.size),
        }
    return stats
