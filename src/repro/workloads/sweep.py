"""Sweep utilities: run scheduler × instance grids and aggregate ratios.

The benchmark harness repeats one pattern everywhere: run a set of
schedulers over a family of instances, measure spans, and compare with a
reference (exact optimum, certified lower bound, or offline heuristic).
:func:`run_grid` centralises that pattern with deterministic seeding.

Grids are embarrassingly parallel — every (scheduler, instance) cell is
an independent simulation — so :func:`run_grid` routes through
:class:`repro.perf.ParallelRunner`: pass ``workers=`` (or set the
``REPRO_WORKERS`` environment variable) to fan the cells out over a
process pool.  Parallel results are **bit-identical** to serial ones:
cells are cloned and ordered before dispatch and results are collected
in submission order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.engine import simulate
from ..core.job import Instance
from ..obs.runtime import get_recorder
from ..perf.parallel import ParallelRunner, get_default_runner
from ..schedulers.base import OnlineScheduler

__all__ = ["GridResult", "run_grid", "ratio_stats"]


@dataclass(frozen=True)
class GridResult:
    """One (scheduler, instance) cell of a sweep."""

    scheduler_name: str
    instance_name: str
    span: float
    reference: float
    events: int

    @property
    def ratio(self) -> float:
        """Span over the reference value (competitive-ratio estimate).

        * ``reference > 0`` — the plain quotient.
        * ``reference == 0 and span == 0`` — an empty cell matched an
          empty reference exactly: ratio ``1.0`` (not ``nan``/``inf``).
        * ``reference == 0 and span > 0`` — ``inf`` (the reference says
          "free" but the scheduler paid; the cell is degenerate).
        * ``reference < 0`` — a span can never be negative, so a
          negative reference is always a bug in the reference callable;
          raise instead of silently masking it.
        """
        if self.reference < 0:
            raise ValueError(
                f"negative reference {self.reference} for "
                f"({self.scheduler_name}, {self.instance_name}): "
                "reference callables must return a span lower bound >= 0"
            )
        if self.reference == 0:
            return 1.0 if self.span == 0 else float("inf")
        return self.span / self.reference


def _run_cell(cell: tuple[OnlineScheduler, Instance, bool, str, float]) -> GridResult:
    """Simulate one grid cell (top-level: picklable for the process pool)."""
    scheduler, inst, mode, name, ref = cell
    result = simulate(scheduler, inst, clairvoyant=mode)
    return GridResult(
        scheduler_name=name,
        instance_name=inst.name,
        span=result.span,
        reference=ref,
        events=result.events_processed,
    )


def run_grid(
    schedulers: Sequence[OnlineScheduler],
    instances: Iterable[Instance],
    reference: Callable[[Instance], float],
    *,
    clairvoyant: bool | None = None,
    workers: int | str | None = None,
    runner: ParallelRunner | None = None,
) -> list[GridResult]:
    """Run every scheduler on every instance against a reference span.

    Parameters
    ----------
    schedulers:
        Prototype scheduler objects; each run uses a fresh ``clone()``.
    instances:
        The instance family (materialised once, reused per scheduler).
    reference:
        ``Instance -> float`` producing the denominator (e.g.
        ``exact_optimal_span`` or ``span_lower_bound``), evaluated once
        per instance.  Wrap with
        :func:`repro.perf.cached_reference` to memoise expensive
        references across repeated sweeps.
    clairvoyant:
        Information model override; by default each scheduler runs in
        the weakest model it supports (clairvoyant only when required).
    workers:
        Process-pool size for the cell fan-out (``None`` reads
        ``REPRO_WORKERS``, default serial; ``0``/``"auto"`` = all
        cores).  Results are bit-identical to the serial order.
    runner:
        An explicit :class:`~repro.perf.ParallelRunner` (overrides
        ``workers``); lets callers share one pool across sweeps.
    """
    if runner is None:
        runner = (
            get_default_runner() if workers is None else ParallelRunner(workers)
        )
    inst_list = list(instances)
    refs = runner.map(reference, inst_list)
    cells: list[tuple[OnlineScheduler, Instance, bool, str, float]] = []
    for proto in schedulers:
        needs = getattr(type(proto), "requires_clairvoyance", False)
        mode = needs if clairvoyant is None else clairvoyant
        for inst, ref in zip(inst_list, refs):
            cells.append((proto.clone(), inst, mode, proto.name, ref))
    obs = get_recorder()
    if obs.enabled:
        obs.instant(
            "sweep.grid",
            schedulers=len(schedulers),
            instances=len(inst_list),
            cells=len(cells),
        )
        obs.counter_add("sweep.cells", float(len(cells)))
    return runner.map(_run_cell, cells)


def ratio_stats(results: Iterable[GridResult]) -> dict[str, dict[str, float]]:
    """Aggregate ratios per scheduler: mean / max / p95.

    Returns ``{scheduler: {"mean": …, "max": …, "p95": …, "runs": …}}``.
    """
    by_sched: dict[str, list[float]] = {}
    for r in results:
        by_sched.setdefault(r.scheduler_name, []).append(r.ratio)
    stats: dict[str, dict[str, float]] = {}
    for name, ratios in by_sched.items():
        arr = np.asarray(ratios)
        stats[name] = {
            "mean": float(arr.mean()),
            "max": float(arr.max()),
            "p95": float(np.percentile(arr, 95)),
            "runs": float(arr.size),
        }
    return stats
