"""Richer arrival processes: MMPP and self-similar-ish arrivals.

The simple generators in :mod:`repro.workloads.synthetic` cover the
classic cases; real cluster traces show regime switching and burst
correlation.  These processes stress schedulers differently: batching
schedulers shine under bursts, Profit under regime switches.

* :func:`mmpp_arrivals` — a 2-state Markov-Modulated Poisson Process
  (quiet/busy regimes with exponential sojourn times).
* :func:`bursty_cascade_arrivals` — a crude heavy-tailed cascade: burst
  sizes are Pareto-distributed, giving arrival counts with much heavier
  correlation than Poisson (a stand-in for self-similar traffic).
"""

from __future__ import annotations

import numpy as np

from ..core.job import Instance, Job

__all__ = ["mmpp_arrivals", "bursty_cascade_arrivals", "mmpp_instance"]


def mmpp_arrivals(
    n: int,
    rng: np.random.Generator,
    *,
    rate_quiet: float = 0.2,
    rate_busy: float = 4.0,
    mean_sojourn: float = 20.0,
) -> np.ndarray:
    """``n`` arrival times from a two-state MMPP.

    The modulating chain alternates quiet/busy with exponential sojourns
    of mean ``mean_sojourn``; arrivals within a state are Poisson with
    that state's rate.
    """
    if n == 0:
        return np.empty(0)
    if min(rate_quiet, rate_busy) <= 0 or mean_sojourn <= 0:
        raise ValueError("rates and sojourn must be positive")
    arrivals: list[float] = []
    t = 0.0
    busy = False
    state_end = float(rng.exponential(mean_sojourn))
    while len(arrivals) < n:
        rate = rate_busy if busy else rate_quiet
        t_next = t + float(rng.exponential(1.0 / rate))
        if t_next >= state_end:
            t = state_end
            busy = not busy
            state_end = t + float(rng.exponential(mean_sojourn))
            continue
        t = t_next
        arrivals.append(t)
    return np.asarray(arrivals)


def bursty_cascade_arrivals(
    n: int,
    rng: np.random.Generator,
    *,
    burst_gap_mean: float = 8.0,
    pareto_shape: float = 1.4,
    within_burst_gap: float = 0.02,
) -> np.ndarray:
    """``n`` arrival times with Pareto-sized bursts.

    Burst inter-arrival times are exponential; burst sizes are
    ``1 + Pareto(shape)`` rounded down, so a few bursts are enormous —
    the arrival-count process is far burstier than Poisson.
    """
    if n == 0:
        return np.empty(0)
    arrivals: list[float] = []
    t = 0.0
    while len(arrivals) < n:
        t += float(rng.exponential(burst_gap_mean))
        size = 1 + int(rng.pareto(pareto_shape))
        for j in range(size):
            arrivals.append(t + j * within_burst_gap)
            if len(arrivals) >= n:
                break
    return np.asarray(arrivals[:n])


def mmpp_instance(
    n: int,
    seed: int = 0,
    *,
    laxity_scale: float = 2.0,
    length_low: float = 1.0,
    length_high: float = 10.0,
) -> Instance:
    """An instance with MMPP arrivals, uniform lengths, proportional laxity."""
    rng = np.random.default_rng(seed)
    arrivals = mmpp_arrivals(n, rng)
    lengths = rng.uniform(length_low, length_high, size=n)
    jobs = [
        Job(
            id=i,
            arrival=float(arrivals[i]),
            deadline=float(arrivals[i] + laxity_scale * lengths[i]),
            length=float(lengths[i]),
        )
        for i in range(n)
    ]
    return Instance(jobs, name=f"mmpp(n={n}, seed={seed})")
