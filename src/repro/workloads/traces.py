"""Trace bridge: SWF-style workload files → FJS instances.

Users with real cluster logs usually have them in a line-per-job format
descended from the Standard Workload Format (SWF): whitespace-separated
fields, ``;`` comments.  This module reads the three fields FJS needs —
**submit time** and **run time** (SWF columns 2 and 4, 1-indexed) plus
optionally **requested processors** as the DBP size — and attaches a
*laxity policy*, since traces record when jobs ran, not how long they
could have waited:

* ``("proportional", s)`` — laxity = s × run time (deadline-tolerant
  batch work);
* ``("constant", c)``     — laxity = c for every job;
* ``("zero", 0)``         — rigid replay.

Writing is supported too, so synthetic instances can round-trip through
the same files other tools consume.
"""

from __future__ import annotations

from pathlib import Path
from typing import Literal

from ..core.errors import InvalidInstanceError
from ..core.job import Instance, Job

__all__ = ["read_swf_instance", "write_swf_instance"]

LaxityPolicy = tuple[Literal["proportional", "constant", "zero"], float]


def _laxity(policy: LaxityPolicy, run_time: float) -> float:
    kind, value = policy
    if kind == "proportional":
        if value < 0:
            raise InvalidInstanceError("proportional laxity factor must be >= 0")
        return value * run_time
    if kind == "constant":
        if value < 0:
            raise InvalidInstanceError("constant laxity must be >= 0")
        return value
    if kind == "zero":
        return 0.0
    raise InvalidInstanceError(f"unknown laxity policy {kind!r}")


def read_swf_instance(
    path: str | Path,
    *,
    laxity: LaxityPolicy = ("proportional", 1.0),
    max_jobs: int | None = None,
    size_divisor: float | None = None,
    name: str | None = None,
) -> Instance:
    """Parse an SWF-style file into an :class:`Instance`.

    Fields used per data line (whitespace separated, 1-indexed as in the
    SWF spec): 1 = job id, 2 = submit time, 4 = run time, 8 = requested
    processors (optional; divided by ``size_divisor`` to produce the DBP
    ``size``, default size 1.0).  Lines starting with ``;`` and jobs with
    non-positive run times (SWF uses -1 for unknown) are skipped.
    """
    jobs: list[Job] = []
    next_id = 0
    base_submit: float | None = None
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < 4:
            raise InvalidInstanceError(
                f"SWF line has {len(fields)} fields, need at least 4: {line!r}"
            )
        submit = float(fields[1])
        run_time = float(fields[3])
        if run_time <= 0:
            continue  # unknown / cancelled jobs
        if base_submit is None:
            base_submit = submit
        arrival = max(0.0, submit - base_submit)
        size = 1.0
        if size_divisor is not None and len(fields) >= 8:
            procs = float(fields[7])
            if procs > 0:
                size = procs / size_divisor
        jobs.append(
            Job(
                id=next_id,
                arrival=arrival,
                deadline=arrival + _laxity(laxity, run_time),
                length=run_time,
                size=size,
            )
        )
        next_id += 1
        if max_jobs is not None and next_id >= max_jobs:
            break
    return Instance(jobs, name=name or f"swf({Path(path).name})")


def write_swf_instance(instance: Instance, path: str | Path) -> None:
    """Write an instance as SWF-style lines (submit = arrival,
    run time = length, requested processors = round(size)).

    Laxity is not representable in SWF; a header comment records each
    job's deadline so :func:`read_swf_instance` consumers outside this
    library still see standard fields, while the comment preserves
    round-trip information for humans.
    """
    lines = [
        "; SWF-style export from repro (FJS reproduction library)",
        "; fields: id submit wait run procs_used avg_cpu mem procs_req ...",
        ";   note: starting deadlines are not part of SWF; laxities below",
    ]
    for j in instance:
        lines.append(f";   job {j.id}: laxity {j.laxity:g}")
    for j in instance:
        lines.append(
            f"{j.id} {j.arrival:.17g} 0 {j.known_length:.17g} "
            f"{max(1, round(j.size))} -1 -1 {max(1, round(j.size))}"
        )
    Path(path).write_text("\n".join(lines) + "\n")
