"""Programmatic experiment runners: ``python -m repro experiment E4``.

The benchmark suite (``benchmarks/bench_e*.py``) is the authoritative,
asserted reproduction of every experiment; these runners expose compact
versions of the same computations for interactive use — each returns the
rendered result table so a user can regenerate any EXPERIMENTS.md row
without invoking pytest.

Each runner accepts a ``quick`` flag: ``True`` (default) uses smaller
sweeps for sub-second latency; ``False`` matches the bench parameters.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .adversaries import (
    PHI,
    ClairvoyantLowerBoundAdversary,
    NonClairvoyantLowerBoundAdversary,
    batch_tightness_instance,
    batchplus_tightness_instance,
    geometric_profile,
)
from .analysis import (
    Table,
    cdb_ratio,
    clairvoyant_adversary_ratio,
    nonclairvoyant_lower_bound,
    optimal_cdb_alpha,
    optimal_profit_k,
    profit_ratio,
)

from .core import simulate
from .offline import exact_optimal_span, span_lower_bound
from .schedulers import (
    Batch,
    BatchPlus,
    ClassifyByDurationBatchPlus,
    Eager,
    Lazy,
    Profit,
    make_scheduler,
    scheduler_names,
)
from .workloads import (
    poisson_instance,
    ratio_stats,
    run_grid,
    small_integral_instance,
)

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]


def _e1(quick: bool) -> str:
    mu, m = 5.0, 8 if quick else 16
    ks = (1, 2, 4) if quick else (1, 2, 4, 8)
    table = Table(
        ["k", "theory >=", "Batch forced ratio"],
        title=f"E1: §3.1 adversary (μ={mu:g}, m={m})",
        precision=3,
    )
    for k in ks:
        profile = geometric_profile(k, m)
        adv = NonClairvoyantLowerBoundAdversary(mu, profile)
        result = simulate(Batch(), adversary=adv, clairvoyant=False)
        witness = adv.paper_optimal_schedule(result.instance)
        theory = nonclairvoyant_lower_bound(
            k, mu, [it.count for it in profile.iterations]
        )
        table.add(k, theory, result.span / witness.span)
    return table.render()


def _e2(quick: bool) -> str:
    mu = 5.0
    ms = (1, 8, 32) if quick else (1, 4, 16, 64, 256)
    table = Table(
        ["m", "ratio", "limit 2μ"],
        title=f"E2: Batch tightness (Figure 2, μ={mu:g})",
        precision=3,
    )
    for m in ms:
        fam = batch_tightness_instance(m=m, mu=mu)
        result = simulate(Batch(), fam.instance)
        table.add(m, result.span / fam.optimal_span, 2 * mu)
    return table.render()


def _e3(quick: bool) -> str:
    mu = 5.0
    ms = (1, 8, 32) if quick else (1, 4, 16, 64, 256)
    table = Table(
        ["m", "ratio", "tight bound μ+1"],
        title=f"E3: Batch+ tightness (Figure 3, μ={mu:g})",
        precision=3,
    )
    for m in ms:
        fam = batchplus_tightness_instance(m=m, mu=mu)
        result = simulate(BatchPlus(), fam.instance)
        table.add(m, result.span / fam.optimal_span, mu + 1)
    return table.render()


def _e4(quick: bool) -> str:
    ns = (2, 8, 32) if quick else (2, 8, 32, 128, 512)
    table = Table(
        ["n", "forced ratio (Profit)", "theory", "φ"],
        title="E4: §4.1 adversary convergence to φ",
        precision=5,
    )
    for n in ns:
        adv = ClairvoyantLowerBoundAdversary(n)
        result = simulate(Profit(), adversary=adv, clairvoyant=True)
        witness = adv.paper_optimal_schedule(result.instance)
        table.add(n, result.span / witness.span, clairvoyant_adversary_ratio(n), PHI)
    return table.render()


def _parametric_sweep(
    title: str,
    params: list[float],
    bound: Callable[[float], float],
    make: Callable[[float], object],
    quick: bool,
) -> str:
    seeds = range(8 if quick else 25)
    instances = [small_integral_instance(6, seed=s, max_length=6) for s in seeds]
    opts = [exact_optimal_span(inst) for inst in instances]
    table = Table(
        ["param", "theory bound", "measured mean", "measured worst"],
        title=title,
        precision=3,
    )
    for value in params:
        ratios = [
            simulate(make(value), inst, clairvoyant=True).span / opt
            for inst, opt in zip(instances, opts)
        ]
        table.add(value, bound(value), float(np.mean(ratios)), max(ratios))
    return table.render()


def _e5(quick: bool) -> str:
    return _parametric_sweep(
        "E5: CDB α sweep vs exact optimum",
        [1.2, 1.5, optimal_cdb_alpha(), 2.0, 3.0],
        cdb_ratio,
        lambda a: ClassifyByDurationBatchPlus(alpha=a),
        quick,
    )


def _e6(quick: bool) -> str:
    return _parametric_sweep(
        "E6: Profit k sweep vs exact optimum",
        [1.2, 1.5, optimal_profit_k(), 2.0, 3.0],
        profit_ratio,
        lambda k: Profit(k=k),
        quick,
    )


def _e7(quick: bool) -> str:
    from repro.core import Instance, Job
    from repro.offline import best_offline_span

    table = Table(
        ["n", "Eager ratio", "Lazy ratio"],
        title="E7: unbounded baselines at fixed μ=1",
        precision=1,
    )
    for n in (4, 16, 64) if quick else (4, 16, 64, 256):
        anti_eager = Instance(
            [Job(i, float(i), float(n + 1), 1.0) for i in range(n)], name="ae"
        )
        anti_lazy = Instance(
            [Job(i, 0.0, float(2 * i), 1.0) for i in range(n)], name="al"
        )
        r_e = simulate(Eager(), anti_eager).span / best_offline_span(anti_eager)
        r_l = simulate(Lazy(), anti_lazy).span / best_offline_span(anti_lazy)
        table.add(n, r_e, r_l)
    return table.render()


def _e10(quick: bool) -> str:
    seeds = range(2 if quick else 4)
    instances = [poisson_instance(40 if quick else 60, seed=s) for s in seeds]
    protos = [make_scheduler(name) for name in scheduler_names()]
    stats = ratio_stats(run_grid(protos, instances, span_lower_bound))
    table = Table(
        ["scheduler", "mean ratio", "max ratio"],
        title="E10: scheduler comparison vs chain LB (poisson family)",
        precision=3,
    )
    for name in sorted(stats, key=lambda n: stats[n]["mean"]):
        table.add(name, stats[name]["mean"], stats[name]["max"])
    return table.render()


def _e13(quick: bool) -> str:
    from .offline import best_offline_span
    from .schedulers import GreedyCover, WaitScale

    seeds = range(3 if quick else 8)
    instances = [poisson_instance(50 if quick else 70, seed=s) for s in seeds]
    refs = [best_offline_span(inst) for inst in instances]

    def mean_ratio(make):
        vals = [
            simulate(make(), inst, clairvoyant=True).span / ref
            for inst, ref in zip(instances, refs)
        ]
        return float(np.mean(vals))

    table = Table(
        ["rule", "param", "mean ratio"],
        title="E13: waiting-rule ablation (vs offline heuristic)",
        precision=3,
    )
    for beta in (0.0, 0.5, 1.0, 2.0):
        table.add("wait-scale", beta, mean_ratio(lambda b=beta: WaitScale(beta=b)))
    for theta in (0.0, 0.5, 0.75, 1.0):
        table.add(
            "greedy-cover", theta, mean_ratio(lambda t=theta: GreedyCover(theta=t))
        )
    table.add("profit", optimal_profit_k(), mean_ratio(lambda: Profit()))
    return table.render()


def _e14(quick: bool) -> str:
    from .workloads import WorkloadSpec, generate

    seeds = range(2 if quick else 4)
    scales = (0.0, 1.0, 4.0) if quick else (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)
    table = Table(
        ["laxity ×p", "eager", "batch+", "profit"],
        title="E14: span / total work vs laxity budget",
        precision=3,
    )
    for scale in scales:
        rows = {"eager": [], "batch+": [], "profit": []}
        for seed in seeds:
            inst = generate(
                WorkloadSpec(n=60, laxity="proportional", laxity_scale=scale),
                seed=seed,
            )
            rows["eager"].append(simulate(Eager(), inst).span / inst.total_work)
            rows["batch+"].append(
                simulate(BatchPlus(), inst).span / inst.total_work
            )
            rows["profit"].append(
                simulate(Profit(), inst, clairvoyant=True).span / inst.total_work
            )
        table.add(scale, *[float(np.mean(rows[k])) for k in ("eager", "batch+", "profit")])
    return table.render()


EXPERIMENTS: dict[str, Callable[[bool], str]] = {
    "E1": _e1,
    "E2": _e2,
    "E3": _e3,
    "E4": _e4,
    "E5": _e5,
    "E6": _e6,
    "E7": _e7,
    "E10": _e10,
    "E13": _e13,
    "E14": _e14,
}


def experiment_ids() -> list[str]:
    """Runner-backed experiment ids (the full set lives in benchmarks/)."""
    return sorted(EXPERIMENTS, key=lambda e: int(e[1:]))


def run_experiment(exp_id: str, quick: bool = True) -> str:
    """Run one experiment and return its rendered table.

    Raises ``KeyError`` for ids only available as benchmarks (E8, E9,
    E11–E15 need pytest-benchmark's timing machinery or long sweeps).
    """
    key = exp_id.upper()
    try:
        runner = EXPERIMENTS[key]
    except KeyError:
        raise KeyError(
            f"no interactive runner for {exp_id!r}; available: "
            f"{experiment_ids()} (the rest run via "
            "`pytest benchmarks/ --benchmark-only`)"
        ) from None
    return runner(quick)
