"""Offline optimisation: exact optima, lower bounds, and heuristics.

Competitive-ratio measurements need ``span_min``; this package supplies
it at three fidelity levels:

* :func:`exact_optimal_span` — exact, for small integral (or exactly
  rescalable) instances;
* :func:`span_lower_bound` — certified lower bound (chain bound) for any
  instance: ratios reported against it are sound *over*-estimates;
* :func:`best_offline_span` — certified upper bound (feasible schedule),
  bracketing the optimum from the other side.
"""

from .anneal import anneal
from .beam import beam_search_schedule, beam_search_span
from .bruteforce import bruteforce_optimal_schedule, bruteforce_optimal_span
from .decompose_instance import (
    exact_optimal_schedule_decomposed,
    exact_optimal_span_decomposed,
    split_independent,
)
from .exact import ExactResult, exact_optimal_schedule, exact_optimal_span
from .exact_float import (
    FloatExactResult,
    exact_optimal_schedule_float,
    exact_optimal_span_float,
)
from .heuristics import (
    best_offline,
    best_offline_span,
    candidate_starts,
    greedy_overlap,
    local_search,
)
from .lower_bounds import (
    FenwickMax,
    chain_lower_bound,
    mandatory_lower_bound,
    span_lower_bound,
)
from .lp_bound import lp_lower_bound

__all__ = [
    "anneal",
    "beam_search_schedule",
    "beam_search_span",
    "ExactResult",
    "exact_optimal_schedule",
    "exact_optimal_span",
    "FloatExactResult",
    "exact_optimal_schedule_float",
    "exact_optimal_span_float",
    "bruteforce_optimal_schedule",
    "bruteforce_optimal_span",
    "split_independent",
    "exact_optimal_schedule_decomposed",
    "exact_optimal_span_decomposed",
    "best_offline",
    "best_offline_span",
    "candidate_starts",
    "greedy_overlap",
    "local_search",
    "FenwickMax",
    "chain_lower_bound",
    "mandatory_lower_bound",
    "lp_lower_bound",
    "span_lower_bound",
]
