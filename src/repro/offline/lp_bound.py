"""Time-indexed LP relaxation: a third certified lower bound.

For an integral instance, discretise time into unit slots
``t ∈ {T₀, …, T₁-1}`` and write the natural IP:

    x_{j,s} ∈ {0,1}   — job j starts at slot s ∈ [a_j, d_j]
    y_t     ∈ [0,1]   — slot t is busy

    min Σ_t y_t
    s.t. Σ_s x_{j,s} = 1                       (each job starts once)
         y_t ≥ Σ_{s : s ≤ t < s+p_j} x_{j,s}   for every job j, slot t
                                               (a slot any job covers is busy)

Every feasible schedule induces a feasible 0/1 point whose objective is
its span (integral schedules have integral spans over unit slots), so
the LP optimum lower-bounds ``span_min``.  The relaxation sees *window
geometry* the combinatorial bounds cannot: it can beat both the chain
bound (which needs disjoint reach windows) and the mandatory bound
(which needs laxity < p).

Solved with ``scipy.optimize.linprog`` (HiGHS).  Cost grows with
``n × horizon``; guarded by ``max_slots``.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SolverError
from ..core.job import Instance

__all__ = ["lp_lower_bound"]

DEFAULT_MAX_SLOTS = 400


def lp_lower_bound(
    instance: Instance, *, max_slots: int = DEFAULT_MAX_SLOTS
) -> float:
    """LP-relaxation lower bound on ``span_min`` (integral instances).

    Raises
    ------
    SolverError
        If the instance is not integral or the time horizon exceeds
        ``max_slots`` unit slots.
    """
    if len(instance) == 0:
        return 0.0
    if not instance.is_integral:
        raise SolverError("the LP bound requires an integral instance")

    t0 = int(min(j.arrival for j in instance))
    t1 = int(max(j.deadline + j.known_length for j in instance))
    slots = t1 - t0
    if slots > max_slots:
        raise SolverError(
            f"horizon spans {slots} unit slots (> max_slots={max_slots})"
        )

    try:
        from scipy.optimize import linprog
        from scipy.sparse import lil_matrix
    except ImportError as exc:  # pragma: no cover - scipy is a dev dep
        raise SolverError("scipy is required for the LP bound") from exc

    jobs = list(instance.jobs)
    # variable layout: x_{j,s} blocks first, then y_t
    x_offset: list[int] = []
    x_starts: list[list[int]] = []
    nvar = 0
    for j in jobs:
        starts = list(range(int(j.arrival), int(j.deadline) + 1))
        x_offset.append(nvar)
        x_starts.append(starts)
        nvar += len(starts)
    y_offset = nvar
    nvar += slots

    c = np.zeros(nvar)
    c[y_offset:] = 1.0  # minimise Σ y_t

    # equality: each job starts exactly once
    a_eq = lil_matrix((len(jobs), nvar))
    for ji in range(len(jobs)):
        for idx in range(len(x_starts[ji])):
            a_eq[ji, x_offset[ji] + idx] = 1.0
    b_eq = np.ones(len(jobs))

    # inequality: coverage_j(t) - y_t <= 0 for each (job, slot) with
    # any covering start
    rows: list[tuple[list[int], list[float]]] = []
    for ji, j in enumerate(jobs):
        p = int(j.known_length)
        for t in range(slots):
            abs_t = t0 + t
            covering = [
                x_offset[ji] + si
                for si, s in enumerate(x_starts[ji])
                if s <= abs_t < s + p
            ]
            if covering:
                cols = covering + [y_offset + t]
                vals = [1.0] * len(covering) + [-1.0]
                rows.append((cols, vals))
    a_ub = lil_matrix((len(rows), nvar))
    for ri, (cols, vals) in enumerate(rows):
        for cc, vv in zip(cols, vals):
            a_ub[ri, cc] = vv
    b_ub = np.zeros(len(rows))

    bounds = [(0.0, 1.0)] * nvar
    result = linprog(
        c,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise SolverError(f"LP solve failed: {result.message}")
    # guard against solver tolerance pushing the bound above truth
    return max(0.0, float(result.fun) - 1e-7)
