"""Exact offline optimum for FJS on integral instances.

Why integral?  For any instance whose arrivals, deadlines and lengths are
integers there exists an *integral* optimal schedule: fixing the
combinatorial overlap pattern of an optimal solution, the span is a
piecewise-linear function of the start vector over a polyhedron defined
by difference constraints (``s_j >= a_j``, ``s_j <= d_j``, and pairwise
ordering/abutment constraints with integer offsets ``p``), whose vertices
are integral; a linear objective over such a region attains its optimum
at a vertex.  Hence searching integer start times is exhaustive.

The solver is a depth-first branch-and-bound over jobs in arrival order
with memoisation:

* **State** — ``(next job index, frontier)`` where the *frontier* is the
  current busy-interval union clipped to ``[a_next, ∞)``.  Components
  ending at or before the next arrival can never overlap any future
  placement (future starts are >= their arrivals), so they are flushed
  into an accumulated cost and dropped from the state — this is what
  makes the memo table effective.
* **Branching** — every integer start in ``[a_j, d_j]``.
* **Bounding** — a branch is cut when its accumulated cost plus the
  remaining jobs' chain lower bound (computed once per suffix) cannot
  beat the incumbent; the incumbent is seeded with the best offline
  heuristic schedule.

For non-integral instances, :func:`exact_optimal_span` attempts an exact
rational rescaling (common denominator up to ``max_denominator``) before
giving up with :class:`SolverError`.

Complexity is exponential in the worst case — this solver targets the
small instances used for tight competitive-ratio measurement (roughly
``n <= 12`` with moderate windows); it enforces an explicit node budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import lcm

from ..core.errors import SolverError
from ..core.intervals import Interval, IntervalUnion
from ..core.job import Instance, Job
from ..core.schedule import Schedule
from .heuristics import best_offline
from .lower_bounds import chain_lower_bound

__all__ = ["exact_optimal_span", "exact_optimal_schedule", "ExactResult"]

#: Default cap on explored search nodes before the solver refuses.
DEFAULT_NODE_BUDGET = 5_000_000


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the exact solver: the optimum and a witness schedule."""

    span: float
    schedule: Schedule
    nodes_explored: int
    memo_hits: int


def _integralize(instance: Instance, max_denominator: int) -> tuple[Instance, float]:
    """Rescale an instance so all times are integers.

    Returns ``(scaled instance, factor)`` with ``original = scaled / factor``.
    Raises :class:`SolverError` when no common denominator up to
    ``max_denominator`` exists.
    """
    if instance.is_integral:
        return instance, 1.0
    fracs: dict[int, tuple[Fraction, Fraction, Fraction]] = {}
    denoms: list[int] = []
    for job in instance:
        triple = []
        for value in (job.arrival, job.deadline, job.known_length):
            frac = Fraction(value).limit_denominator(max_denominator)
            if abs(float(frac) - value) > 1e-12 * max(1.0, abs(value)):
                raise SolverError(
                    f"instance {instance.name!r} is not integral and cannot "
                    f"be rescaled exactly (value {value} is not rational "
                    f"with denominator <= {max_denominator})"
                )
            denoms.append(frac.denominator)
            triple.append(frac)
        fracs[job.id] = (triple[0], triple[1], triple[2])
    q = lcm(*denoms) if denoms else 1
    if q > max_denominator:
        raise SolverError(
            f"instance {instance.name!r} needs denominator {q} > "
            f"{max_denominator} to become integral"
        )
    scaled_jobs = [
        Job(
            id=job.id,
            arrival=float(int(fracs[job.id][0] * q)),
            deadline=float(int(fracs[job.id][1] * q)),
            length=float(int(fracs[job.id][2] * q)),
            size=job.size,
        )
        for job in instance
    ]
    return Instance(scaled_jobs, name=f"{instance.name}/x{q}"), float(q)


def _frontier_key(
    union: IntervalUnion, cutoff: float
) -> tuple[tuple[tuple[float, float], ...], float]:
    """Clip a union at ``cutoff``: flush fully-past components into a cost.

    Returns ``(clipped component key, flushed measure)``.
    """
    kept: list[tuple[float, float]] = []
    flushed = 0.0
    for comp in union.components:
        if comp.right <= cutoff:
            flushed += comp.length
        elif comp.left < cutoff:
            flushed += cutoff - comp.left
            kept.append((cutoff, comp.right))
        else:
            kept.append((comp.left, comp.right))
    return tuple(kept), flushed


def exact_optimal_schedule(
    instance: Instance,
    *,
    node_budget: int = DEFAULT_NODE_BUDGET,
    max_denominator: int = 64,
) -> ExactResult:
    """Exact minimum-span schedule via branch-and-bound with memoisation.

    Raises
    ------
    SolverError
        If the instance cannot be made integral or the node budget is
        exhausted before the search completes.
    """
    if len(instance) == 0:
        empty = Schedule(instance, {})
        return ExactResult(span=0.0, schedule=empty, nodes_explored=0, memo_hits=0)

    scaled, factor = _integralize(instance, max_denominator)
    jobs = scaled.sorted_by_arrival()
    n = len(jobs)

    # Suffix chain lower bounds: bound[i] = chain LB over jobs[i:].  A
    # suffix's placements cost at least this much *in total measure*, but
    # may overlap the current frontier; subtracting the frontier's
    # remaining extent keeps the bound admissible.
    suffix_lb = [0.0] * (n + 1)
    for i in range(n):
        suffix_lb[i] = chain_lower_bound(
            Instance(jobs[i:], name="suffix")
        )

    # Incumbent: best offline heuristic (always feasible => upper bound).
    heuristic = best_offline(scaled)
    best_span = heuristic.span
    best_starts: dict[int, float] = heuristic.starts()

    memo: dict[tuple[int, tuple[tuple[float, float], ...]], float] = {}
    nodes = 0
    memo_hits = 0

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n * 10 + 1000))

    def solve(i: int, union: IntervalUnion, cost: float, starts: dict[int, float]) -> None:
        """Explore placements for jobs[i:] given the frontier ``union``.

        ``cost`` is the measure already flushed (strictly to the left of
        every remaining window); ``union`` holds only components that can
        still interact with future jobs.
        """
        nonlocal nodes, memo_hits, best_span, best_starts
        if i == n:
            total = cost + union.measure
            if total < best_span - 1e-12:
                best_span = total
                best_starts = dict(starts)
            return

        job = jobs[i]
        key, flushed = _frontier_key(union, job.arrival)
        cost += flushed
        union = IntervalUnion.from_pairs(key)

        # Admissible bound: every frontier point already counts toward the
        # final measure, and the remaining jobs add at least
        # max(0, suffix chain LB - frontier measure) beyond it.
        frontier_measure = union.measure
        bound = cost + frontier_measure + max(0.0, suffix_lb[i] - frontier_measure)
        if bound >= best_span - 1e-12:
            return

        seen = memo.get((i, key))
        if seen is not None and seen <= cost + 1e-12:
            memo_hits += 1
            return
        memo[(i, key)] = cost

        nodes += 1
        if nodes > node_budget:
            raise SolverError(
                f"exact solver exceeded its node budget ({node_budget}); "
                "use span_lower_bound/best_offline for this instance size"
            )

        lo = int(job.arrival)
        hi = int(job.deadline)
        p = job.known_length
        # Order candidate starts by added measure (cheapest-first) so the
        # incumbent tightens early and the bound prunes more branches.
        candidates = sorted(
            range(lo, hi + 1),
            key=lambda s: (union.added_measure(Interval(s, s + p)), -s),
        )
        for s in candidates:
            iv = Interval(float(s), float(s) + p)
            starts[job.id] = float(s)
            solve(i + 1, union.insert(iv), cost, starts)
            del starts[job.id]

    try:
        solve(0, IntervalUnion(), 0.0, {})
    finally:
        sys.setrecursionlimit(old_limit)

    # Map starts back to the original time scale.
    starts_orig = {jid: s / factor for jid, s in best_starts.items()}
    schedule = Schedule(instance, starts_orig)
    return ExactResult(
        span=schedule.span,
        schedule=schedule,
        nodes_explored=nodes,
        memo_hits=memo_hits,
    )


def exact_optimal_span(
    instance: Instance,
    *,
    node_budget: int = DEFAULT_NODE_BUDGET,
    max_denominator: int = 64,
) -> float:
    """The exact minimum possible span (``span_min`` in the paper)."""
    return exact_optimal_schedule(
        instance, node_budget=node_budget, max_denominator=max_denominator
    ).span
