"""Plain brute-force optimum for tiny integral instances.

Enumerates the full Cartesian product of integer start windows — no
pruning, no memoisation — serving as an independent cross-check of the
branch-and-bound solver in :mod:`repro.offline.exact` (they must agree
exactly; the property suite verifies this on random tiny instances).
"""

from __future__ import annotations

import itertools

from ..core.errors import SolverError
from ..core.intervals import union_measure
from ..core.job import Instance
from ..core.schedule import Schedule

__all__ = ["bruteforce_optimal_span", "bruteforce_optimal_schedule"]

#: Refuse searches larger than this many start combinations.
MAX_COMBINATIONS = 20_000_000


def bruteforce_optimal_schedule(instance: Instance) -> Schedule:
    """Exhaustive search over all integral start vectors.

    Raises
    ------
    SolverError
        If the instance is not integral or the window product exceeds
        :data:`MAX_COMBINATIONS`.
    """
    if not instance.is_integral:
        raise SolverError("brute force requires an integral instance")
    if len(instance) == 0:
        return Schedule(instance, {})

    jobs = list(instance.jobs)
    windows = [range(int(j.arrival), int(j.deadline) + 1) for j in jobs]
    total = 1
    for w in windows:
        total *= len(w)
        if total > MAX_COMBINATIONS:
            raise SolverError(
                f"brute-force search space exceeds {MAX_COMBINATIONS} "
                "combinations; use the exact branch-and-bound solver"
            )

    lengths = [j.known_length for j in jobs]
    best_span = float("inf")
    best_combo: tuple[int, ...] | None = None
    for combo in itertools.product(*windows):
        span = union_measure(list(map(float, combo)), lengths)
        if span < best_span:
            best_span = span
            best_combo = combo
    assert best_combo is not None
    starts = {j.id: float(s) for j, s in zip(jobs, best_combo)}
    return Schedule(instance, starts)


def bruteforce_optimal_span(instance: Instance) -> float:
    """Span of the brute-force optimum."""
    return bruteforce_optimal_schedule(instance).span
