"""Instance decomposition: split into non-interacting components.

Job ``J``'s active interval always lies inside its **reach window**
``[a(J), d(J) + p(J))`` — no scheduler can place any part of ``J``
outside it.  Two jobs whose reach windows are disjoint therefore can
never overlap, under *any* scheduler; the connected components of the
reach-window intersection graph partition the instance into
sub-instances that are completely independent:

    ``span_min(𝒥) = Σ_components span_min(𝒥_c)``,

and any per-component optimal schedules concatenate into a global
optimum.  This turns the exponential exact solver into one whose cost is
driven by the *largest component*, not the instance size — sparse
workloads with hundreds of jobs become exactly solvable.

Components are found with a single sweep over windows sorted by left
endpoint (O(n log n)).
"""

from __future__ import annotations

from ..core.errors import SolverError
from ..core.job import Instance
from ..core.schedule import Schedule
from .exact import exact_optimal_schedule

__all__ = [
    "split_independent",
    "exact_optimal_span_decomposed",
    "exact_optimal_schedule_decomposed",
]


def split_independent(instance: Instance) -> list[Instance]:
    """Partition into sub-instances whose reach windows don't intersect.

    Returned components are ordered by their earliest arrival; each is a
    plain :class:`Instance` over the original job objects (ids kept).
    """
    if len(instance) == 0:
        return []
    jobs = sorted(
        instance.jobs, key=lambda j: (j.arrival, j.deadline + j.known_length, j.id)
    )
    components: list[list] = []
    current: list = [jobs[0]]
    reach_end = jobs[0].deadline + jobs[0].known_length
    for job in jobs[1:]:
        if job.arrival < reach_end:
            current.append(job)
            reach_end = max(reach_end, job.deadline + job.known_length)
        else:
            components.append(current)
            current = [job]
            reach_end = job.deadline + job.known_length
    components.append(current)
    return [
        Instance(comp, name=f"{instance.name}/component{i}")
        for i, comp in enumerate(components)
    ]


def exact_optimal_schedule_decomposed(
    instance: Instance,
    *,
    max_component: int = 12,
    node_budget: int = 2_000_000,
) -> Schedule:
    """Exact optimum via per-component exact solving.

    Raises
    ------
    SolverError
        If some component exceeds ``max_component`` jobs (the exact
        solver would be infeasible on it) or a component's solve blows
        its node budget.
    """
    if len(instance) == 0:
        return Schedule(instance, {})
    starts: dict[int, float] = {}
    for comp in split_independent(instance):
        if len(comp) > max_component:
            raise SolverError(
                f"component {comp.name!r} has {len(comp)} jobs "
                f"(> max_component={max_component}); exact decomposed "
                "solving is infeasible for this instance"
            )
        result = exact_optimal_schedule(comp, node_budget=node_budget)
        starts.update(result.schedule.starts())
    return Schedule(instance, starts)


def exact_optimal_span_decomposed(
    instance: Instance,
    *,
    max_component: int = 12,
    node_budget: int = 2_000_000,
) -> float:
    """``span_min`` via decomposition (see module docstring)."""
    return exact_optimal_schedule_decomposed(
        instance, max_component=max_component, node_budget=node_budget
    ).span
