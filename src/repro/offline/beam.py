"""Beam-search offline scheduling: between greedy and exact.

The greedy heuristic commits each job to its locally best start; the
exact solver explores everything.  Beam search keeps the ``width`` most
promising partial schedules per step, where a partial schedule's
priority is its flushed-plus-frontier measure plus the chain lower bound
of the remaining suffix (the same admissible bound the exact solver
prunes with).  With ``width=1`` it degenerates to greedy placement in
arrival order; widening the beam monotonically improves the expected
result at linear cost in ``width``.

Used by :func:`repro.offline.heuristics.best_offline` callers needing a
stronger upper bound than greedy + local search, and compared against
exact optima in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.intervals import Interval, IntervalUnion
from ..core.job import Instance
from ..core.schedule import Schedule
from .exact import _frontier_key
from .heuristics import candidate_starts
from .lower_bounds import chain_lower_bound

__all__ = ["beam_search_schedule", "beam_search_span"]


@dataclass(frozen=True)
class _Partial:
    """A partial placement: flushed cost, frontier, and starts so far."""

    cost: float
    frontier: IntervalUnion
    starts: tuple[tuple[int, float], ...]

    def priority(self, suffix_lb: float) -> float:
        frontier_measure = self.frontier.measure
        return (
            self.cost
            + frontier_measure
            + max(0.0, suffix_lb - frontier_measure)
        )


def beam_search_schedule(
    instance: Instance, width: int = 8, branch: int = 6
) -> Schedule:
    """Beam search over per-job candidate starts.

    Parameters
    ----------
    width:
        Beam width (partial schedules retained per step).
    branch:
        Maximum candidate starts expanded per job per partial (the
        cheapest-added-measure candidates are tried first).
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    if branch < 1:
        raise ValueError("branch must be at least 1")
    if len(instance) == 0:
        return Schedule(instance, {})

    jobs = instance.sorted_by_arrival()
    n = len(jobs)
    suffix_lb = [
        chain_lower_bound(Instance(jobs[i:], name="suffix")) for i in range(n)
    ] + [0.0]

    beam: list[_Partial] = [
        _Partial(cost=0.0, frontier=IntervalUnion(), starts=())
    ]
    for i, job in enumerate(jobs):
        p = job.known_length
        expanded: dict[
            tuple[tuple[tuple[float, float], ...]], _Partial
        ] = {}
        for partial in beam:
            key, flushed = _frontier_key(partial.frontier, job.arrival)
            frontier = IntervalUnion.from_pairs(key)
            cost = partial.cost + flushed
            cands = sorted(
                candidate_starts(job, frontier),
                key=lambda s: (frontier.added_measure(Interval(s, s + p)), -s),
            )[:branch]
            for s in cands:
                new_frontier = frontier.insert(Interval(s, s + p))
                child = _Partial(
                    cost=cost,
                    frontier=new_frontier,
                    starts=partial.starts + ((job.id, s),),
                )
                # Deduplicate by frontier shape: among equal frontiers
                # only the cheapest flushed cost can lead anywhere better.
                dkey = (new_frontier.key(),)
                seen = expanded.get(dkey)
                if seen is None or child.cost < seen.cost:
                    expanded[dkey] = child
        pool = sorted(
            expanded.values(), key=lambda c: c.priority(suffix_lb[i + 1])
        )
        beam = pool[:width]

    best = min(beam, key=lambda c: c.cost + c.frontier.measure)
    return Schedule(instance, dict(best.starts))


def beam_search_span(instance: Instance, width: int = 8, branch: int = 6) -> float:
    """Span of the beam-search schedule (an upper bound on OPT)."""
    return beam_search_schedule(instance, width, branch).span
