"""Certified lower bounds on the minimum possible span.

The paper's optimality arguments all rest on one observation (used in the
proofs of Theorems 3.4, 3.5, 4.4 and 4.11): if job ``j`` arrives no
earlier than job ``i``'s *latest possible completion* ``d(i) + p(i)``,
then no scheduler can overlap their active intervals, so any chain of
such pairwise-incompatible jobs contributes the **sum** of its processing
lengths to every schedule's span.

:func:`chain_lower_bound` computes the maximum-weight such chain — the
longest path in the "must-be-disjoint" DAG with edge ``i → j`` iff
``a(j) >= d(i) + p(i)`` and node weights ``p`` — in ``O(n log n)`` with a
Fenwick prefix-max tree.  Together with the trivial bound ``max_j p(j)``
(subsumed by the chain bound, kept for clarity) this yields
:func:`span_lower_bound`, the certified lower bound used to report sound
competitive-ratio *upper estimates* on instances too large for the exact
solver.
"""

from __future__ import annotations

import numpy as np

from ..core.job import Instance

__all__ = [
    "chain_lower_bound",
    "mandatory_lower_bound",
    "span_lower_bound",
    "FenwickMax",
]


class FenwickMax:
    """A Fenwick (binary indexed) tree supporting prefix-maximum queries.

    ``update(i, v)`` raises position ``i`` to at least ``v``;
    ``query(i)`` returns ``max`` over positions ``0..i`` inclusive.
    Values never decrease — sufficient for longest-path DP sweeps.
    """

    __slots__ = ("_n", "_tree")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("size must be non-negative")
        self._n = n
        self._tree = np.zeros(n + 1, dtype=np.float64)

    def update(self, i: int, value: float) -> None:
        """Set position ``i`` (0-based) to ``max(current, value)``."""
        if not 0 <= i < self._n:
            raise IndexError(f"position {i} out of range [0, {self._n})")
        i += 1
        tree = self._tree
        while i <= self._n:
            if tree[i] < value:
                tree[i] = value
            i += i & (-i)

    def query(self, i: int) -> float:
        """Maximum over positions ``0..i`` (0-based, inclusive); 0 if i < 0."""
        if i >= self._n:
            i = self._n - 1
        best = 0.0
        i += 1
        tree = self._tree
        while i > 0:
            if tree[i] > best:
                best = tree[i]
            i -= i & (-i)
        return best


def chain_lower_bound(instance: Instance) -> float:
    """Maximum total length over chains of pairwise-unoverlappable jobs.

    A chain ``j_1, j_2, …, j_m`` with ``a(j_{l+1}) >= d(j_l) + p(j_l)``
    for every ``l`` satisfies ``span >= Σ p(j_l)`` under *any* scheduler,
    because each ``j_l`` must complete before ``j_{l+1}`` can even arrive.

    Runs the classic weighted-chain DP in ``O(n log n)``: process jobs in
    arrival order, query the best chain ending with latest-completion
    ``<= a(j)``, extend, and index the result by the job's own latest
    completion ``d(j) + p(j)``.
    """
    n = len(instance)
    if n == 0:
        return 0.0
    arrays = instance.arrays()
    arrival = arrays["arrival"]
    latest_completion = arrays["deadline"] + arrays["length"]
    length = arrays["length"]

    # Coordinate-compress latest completions for the Fenwick tree.
    coords = np.unique(latest_completion)
    pos = {v: i for i, v in enumerate(coords.tolist())}

    order = np.lexsort((latest_completion, arrival))  # by arrival, then lc
    tree = FenwickMax(len(coords))
    best_overall = 0.0
    for idx in order:
        a = arrival[idx]
        # Best chain whose last job has latest completion <= a(j).  All
        # such jobs have strictly earlier arrivals (a_i <= d_i < d_i+p_i
        # <= a_j), hence were already inserted in this arrival-order sweep.
        k = int(np.searchsorted(coords, a, side="right")) - 1
        best_prefix = tree.query(k) if k >= 0 else 0.0
        best_here = best_prefix + float(length[idx])
        tree.update(pos[float(latest_completion[idx])], best_here)
        if best_here > best_overall:
            best_overall = best_here
    return best_overall


def mandatory_lower_bound(instance: Instance) -> float:
    """Measure of the union of the jobs' *mandatory intervals*.

    A job with ``laxity < p`` runs over ``[d, a+p)`` in **every** feasible
    schedule: its start ``s`` satisfies ``s <= d`` and ``s + p >= a + p``,
    so ``[d, a+p) ⊆ [s, s+p)`` regardless of the scheduler.  The union of
    these per-job mandatory intervals is therefore contained in every
    schedule's busy time, and its measure lower-bounds ``span_min``.

    Complementary to the chain bound: strong for laxity-poor (rigid-ish)
    workloads where chains are short, vacuous when laxity >= p everywhere.
    """
    starts = []
    lengths = []
    for job in instance:
        p = job.known_length
        if job.laxity < p:
            starts.append(job.deadline)
            lengths.append(job.arrival + p - job.deadline)
    if not starts:
        return 0.0
    from ..core.intervals import union_measure

    return union_measure(starts, lengths)


def span_lower_bound(instance: Instance) -> float:
    """The strongest certified lower bound on ``span_min``:
    ``max(chain bound, mandatory bound, max_j p(j))``.

    The chain bound subsumes ``max p`` (single-job chains); the mandatory
    bound is independent of both and dominates on low-laxity workloads.
    """
    if len(instance) == 0:
        return 0.0
    return max(
        chain_lower_bound(instance),
        mandatory_lower_bound(instance),
        instance.max_length,
    )
