"""Simulated-annealing span improver.

Local search (:func:`repro.offline.heuristics.local_search`) stops at
coordinate-wise optima; annealing escapes them by occasionally accepting
uphill moves.  The move set matches the structure of the problem:

* **re-place** — move one job to a random breakpoint candidate of the
  union of the others (the same candidate set local search uses);
* **jump** — move one job to a uniform random feasible start (rarely,
  for diversification).

Cooling is geometric; the incumbent (best-ever) schedule is returned, so
the result is never worse than the initial schedule.  Deterministic
given the seed.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.intervals import Interval, IntervalUnion
from ..core.schedule import Schedule
from .heuristics import candidate_starts

__all__ = ["anneal"]


def anneal(
    schedule: Schedule,
    *,
    iterations: int = 2000,
    initial_temperature: float | None = None,
    cooling: float = 0.995,
    jump_probability: float = 0.1,
    seed: int = 0,
) -> Schedule:
    """Anneal a feasible schedule; returns the best schedule found.

    Parameters
    ----------
    schedule:
        A feasible starting point (e.g. from ``greedy_overlap``).
    iterations:
        Proposal count.
    initial_temperature:
        Defaults to 5% of the initial span.
    cooling:
        Geometric decay factor per iteration (``0 < cooling < 1``).
    jump_probability:
        Fraction of proposals drawn uniformly from the window instead of
        the breakpoint candidates.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if not 0.0 < cooling < 1.0:
        raise ValueError("cooling must lie in (0, 1)")
    instance = schedule.instance
    jobs = list(instance.jobs)
    if len(jobs) < 2 or iterations == 0:
        return schedule

    rng = np.random.default_rng(seed)
    starts = schedule.starts()

    def span_of(assign: dict[int, float]) -> float:
        return IntervalUnion(
            Interval(assign[j.id], assign[j.id] + j.known_length) for j in jobs
        ).measure

    current_span = span_of(starts)
    best_span = current_span
    best_starts = dict(starts)
    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(1e-9, 0.05 * current_span)
    )

    for _ in range(iterations):
        job = jobs[int(rng.integers(len(jobs)))]
        # Degenerate window: the job cannot move.  Tolerance rather than
        # an exact float ==: laxity is a float subtraction, and perturbed
        # workloads produce windows of width ~1e-16 that are zero in
        # every sense that matters here (RL003).
        if job.laxity <= 1e-12:
            temperature *= cooling
            continue
        old = starts[job.id]
        if rng.random() < jump_probability:
            proposal = float(rng.uniform(job.arrival, job.deadline))
        else:
            others = IntervalUnion(
                Interval(starts[j.id], starts[j.id] + j.known_length)
                for j in jobs
                if j.id != job.id
            )
            cands = candidate_starts(job, others)
            proposal = float(cands[int(rng.integers(len(cands)))])
        starts[job.id] = proposal
        new_span = span_of(starts)
        delta = new_span - current_span
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            current_span = new_span
            if new_span < best_span - 1e-12:
                best_span = new_span
                best_starts = dict(starts)
        else:
            starts[job.id] = old
        temperature *= cooling

    return Schedule(instance, best_starts)
