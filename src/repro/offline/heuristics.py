"""Offline heuristics: good feasible schedules (upper bounds on OPT).

With full hindsight, placing a job to maximise overlap with already
placed work is a natural greedy.  For a single interval of length ``p``
against a fixed union, the *added measure* as a function of the start
``s`` is piecewise linear with breakpoints where ``s`` or ``s + p``
crosses a union component endpoint — so only the window ends and
``{e, e - p}`` for each endpoint ``e`` need to be evaluated
(:func:`candidate_starts`).

Provided heuristics:

* :func:`greedy_overlap` — place jobs one at a time (deadline or arrival
  order), each at its added-measure-minimising candidate (ties resolved
  towards the latest start, preserving future flexibility … for the
  already-placed union the tie is span-neutral).
* :func:`local_search` — coordinate descent: re-place one job at a time
  against the union of the others until a fixpoint or sweep budget.
* :func:`best_offline` — best of several greedy orders, each refined by
  local search.  Always feasible, hence a certified *upper* bound on the
  optimal span (and the exact solver's incumbent seed).
"""

from __future__ import annotations

from typing import Iterable, Literal

from ..core.intervals import Interval, IntervalUnion
from ..core.intervalset import MutableIntervalSet
from ..core.job import Instance, Job
from ..core.schedule import Schedule

__all__ = [
    "candidate_starts",
    "greedy_overlap",
    "local_search",
    "best_offline",
    "best_offline_span",
]


def candidate_starts(job: Job, union: IntervalUnion) -> list[float]:
    """Start times sufficient to minimise added measure for ``job``.

    The added measure ``s ↦ len([s, s+p) \\ union)`` is piecewise linear
    in ``s`` with breakpoints at component endpoints ``e`` (where ``s``
    crosses ``e``) and at ``e - p`` (where ``s + p`` crosses ``e``); its
    minimum over the window ``[a, d]`` is attained at a breakpoint or a
    window end.
    """
    a, d, p = job.arrival, job.deadline, job.known_length
    cands = {a, d}
    for comp in union.components:
        for e in (comp.left, comp.right):
            for s in (e, e - p):
                if a <= s <= d:
                    cands.add(s)
    return sorted(cands)


def _best_start(job: Job, union: IntervalUnion) -> float:
    """The added-measure-minimising start (ties -> latest start)."""
    best_s = job.deadline
    best_cost = union.added_measure(
        Interval(job.deadline, job.deadline + job.known_length)
    )
    for s in candidate_starts(job, union):
        cost = union.added_measure(Interval(s, s + job.known_length))
        if cost < best_cost - 1e-12 or (
            cost <= best_cost + 1e-12 and s > best_s
        ):
            best_cost = cost
            best_s = s
    return best_s


def greedy_overlap(
    instance: Instance,
    order: Literal["deadline", "arrival", "length"] = "deadline",
) -> Schedule:
    """Greedy placement minimising incremental span, in the given order.

    ``order`` picks the processing sequence: ``"deadline"`` (default,
    mirrors the online flag structure), ``"arrival"``, or ``"length"``
    (longest first — long jobs anchor the busy periods short ones tuck
    into).
    """
    if order == "deadline":
        jobs: Iterable[Job] = instance.sorted_by_deadline()
    elif order == "arrival":
        jobs = instance.sorted_by_arrival()
    elif order == "length":
        jobs = sorted(
            instance.jobs, key=lambda j: (-j.known_length, j.deadline, j.id)
        )
    else:
        raise ValueError(f"unknown order {order!r}")

    # The accumulating union is a MutableIntervalSet: added-measure
    # queries and inserts are O(log n + k), and candidate endpoints come
    # only from components near the job's window — this is what keeps
    # the heuristic fast on 10^4-job instances (E11).
    mset = MutableIntervalSet()
    starts: dict[int, float] = {}
    for job in jobs:
        s = _best_start_fast(job, mset)
        starts[job.id] = s
        mset.add(s, s + job.known_length)
    return Schedule(instance, starts)


def _best_start_fast(job: Job, mset: MutableIntervalSet) -> float:
    """Like :func:`_best_start` but against a mutable set.

    Candidates with a breakpoint effect lie where ``s`` or ``s + p``
    meets a component endpoint, i.e. endpoints ``e ∈ [a, d + p]``.
    """
    a, d, p = job.arrival, job.deadline, job.known_length
    cands = {a, d}
    for comp in mset.components_overlapping(a - p, d + p):
        for e in (comp.left, comp.right):
            for s in (e, e - p):
                if a <= s <= d:
                    cands.add(s)
    best_s = d
    best_cost = mset.added_measure(d, d + p)
    for s in sorted(cands):
        cost = mset.added_measure(s, s + p)
        if cost < best_cost - 1e-12 or (cost <= best_cost + 1e-12 and s > best_s):
            best_cost = cost
            best_s = s
    return best_s


def local_search(schedule: Schedule, max_sweeps: int = 20) -> Schedule:
    """Coordinate-descent refinement of a feasible schedule.

    Each sweep re-places every job optimally against the union of the
    others; stops at a fixpoint (no job moved) or after ``max_sweeps``.
    The span never increases.
    """
    instance = schedule.instance
    starts = schedule.starts()
    jobs = list(instance.jobs)
    for _ in range(max_sweeps):
        moved = False
        for job in jobs:
            others = IntervalUnion(
                Interval(starts[j.id], starts[j.id] + j.known_length)
                for j in jobs
                if j.id != job.id
            )
            s = _best_start(job, others)
            # Tolerance, not exact float !=: `s` comes from endpoint
            # arithmetic over the other jobs' intervals, so a no-op move
            # can differ from the stored start by ULPs; treating that as
            # "moved" would defeat fixpoint detection (RL003).
            if abs(s - starts[job.id]) > 1e-12:
                old_cost = others.added_measure(
                    Interval(starts[job.id], starts[job.id] + job.known_length)
                )
                new_cost = others.added_measure(
                    Interval(s, s + job.known_length)
                )
                if new_cost < old_cost - 1e-12:
                    starts[job.id] = s
                    moved = True
        if not moved:
            break
    return Schedule(instance, starts)


def best_offline(instance: Instance, max_sweeps: int = 20) -> Schedule:
    """Best feasible schedule across greedy orders + local search.

    A certified **upper** bound on the optimal span.
    """
    if len(instance) == 0:
        return Schedule(instance, {})
    best: Schedule | None = None
    for order in ("deadline", "arrival", "length"):
        candidate = local_search(greedy_overlap(instance, order), max_sweeps)
        if best is None or candidate.span < best.span:
            best = candidate
    assert best is not None
    return best


def best_offline_span(instance: Instance, max_sweeps: int = 20) -> float:
    """Span of :func:`best_offline` (upper bound on ``span_min``)."""
    return best_offline(instance, max_sweeps).span
