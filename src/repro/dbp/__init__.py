"""MinUsageTime Dynamic Bin Packing extension (paper §5).

Flexible jobs are scheduled for span (stage 1) and packed onto
capacity-limited servers (stage 2); the objective is the total server
usage time.  Provides :class:`FirstFit`, the classify-by-duration
variant, and the scheduler ∘ packer pipelines of the paper's concluding
remarks.
"""

from .bestfit import BestFit, NextFit
from .bins import Bin, PlacedItem
from .cdff import ClassifyByDurationFirstFit
from .firstfit import FirstFit
from .pipeline import PackingResult, pack_schedule, run_pipeline, usage_lower_bound
from .render import render_bins

__all__ = [
    "Bin",
    "PlacedItem",
    "FirstFit",
    "BestFit",
    "NextFit",
    "ClassifyByDurationFirstFit",
    "PackingResult",
    "pack_schedule",
    "run_pipeline",
    "usage_lower_bound",
    "render_bins",
]
