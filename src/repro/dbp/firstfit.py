"""First Fit packing for MinUsageTime Dynamic Bin Packing.

First Fit places each arriving item into the lowest-indexed bin that can
hold it (opening a new bin when none can).  For MinUsageTime DBP with
rigid jobs, First Fit is near-optimally ``O(μ)``-competitive in the
non-clairvoyant setting ([20, 23] in the paper); combined with Batch+
scheduling it extends that guarantee to flexible jobs (paper §5).
"""

from __future__ import annotations

from ..core.errors import CapacityExceededError
from .bins import Bin, PlacedItem

__all__ = ["FirstFit"]


class FirstFit:
    """First Fit: lowest-indexed bin with room; open a new one otherwise.

    Placements must be fed in chronological start order (the pipeline
    guarantees this).
    """

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.bins: list[Bin] = []

    def place(self, item_id: int, start: float, end: float, size: float) -> int:
        """Place one item; returns the chosen bin index."""
        if size > self.capacity + 1e-12:
            raise CapacityExceededError(
                f"item {item_id} of size {size} exceeds bin capacity "
                f"{self.capacity}"
            )
        item = PlacedItem(item_id=item_id, start=start, end=end, size=size)
        for b in self.bins:
            if b.fits(start, size):
                b.place(item)
                return b.index
        b = Bin(index=len(self.bins), capacity=self.capacity)
        self.bins.append(b)
        b.place(item)
        return b.index

    @property
    def total_usage_time(self) -> float:
        """Sum of per-bin usage times (the MinUsageTime objective)."""
        return sum(b.usage_time for b in self.bins)

    @property
    def bins_used(self) -> int:
        return sum(1 for b in self.bins if b.ever_used)

    def describe(self) -> str:
        return f"FirstFit(capacity={self.capacity:g})"
