"""ASCII rendering of packing results: one row per bin/server.

Complements :func:`repro.analysis.gantt.render_gantt` (one row per job)
with the server-side view a capacity-planning user wants: when each bin
was on, how full it ran, and the usage-time/idle split.
"""

from __future__ import annotations

import numpy as np

from .pipeline import PackingResult

__all__ = ["render_bins"]

_SHADES = " ░▒▓█"


def render_bins(result: PackingResult, *, width: int = 72, max_bins: int = 24) -> str:
    """Render each bin as a load-shaded timeline row.

    Each column shows the bin's mean load over that time slice as a
    shade (`` ``=off, ``░``→``█`` increasing utilisation).
    """
    bins = [b for b in result.bins if b.ever_used]
    if not bins:
        return "(no bins used)"
    t0 = min(it.start for b in bins for it in b.items)
    t1 = max(it.end for b in bins for it in b.items)
    extent = max(t1 - t0, 1e-9)
    edges = np.linspace(t0, t1, width + 1)

    lines = [
        f"{len(bins)} bins over [{t0:g}, {t1:g}]   "
        f"total usage {result.total_usage_time:g}   "
        f"peak open {result.peak_open_bins}"
    ]
    for b in bins[:max_bins]:
        # mean load per column
        load = np.zeros(width)
        for it in b.items:
            lo = np.clip((it.start - t0) / extent * width, 0, width)
            hi = np.clip((it.end - t0) / extent * width, 0, width)
            first, last = int(lo), min(int(np.ceil(hi)), width)
            for c in range(first, last):
                seg_lo = max(lo, c)
                seg_hi = min(hi, c + 1)
                if seg_hi > seg_lo:
                    load[c] += it.size * (seg_hi - seg_lo)
        frac = np.clip(load / b.capacity, 0.0, 1.0)
        row = "".join(
            _SHADES[min(len(_SHADES) - 1, int(np.ceil(f * (len(_SHADES) - 1))))]
            for f in frac
        )
        lines.append(
            f"bin {b.index:>3} |{row}| on {b.usage_time:g}"
        )
    if len(bins) > max_bins:
        lines.append(f"… {len(bins) - max_bins} more bins not shown")
    return "\n".join(lines)
