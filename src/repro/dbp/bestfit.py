"""Best Fit and Next Fit packers — ablation baselines for First Fit.

MinUsageTime DBP results in the paper's lineage ([15, 16, 19, 20, 23])
centre on First Fit because Any-Fit cousins can be Ω(√μ)-worse for
usage time; experiment E12 measures those gaps empirically:

* **Best Fit** — place each item in the *fullest* bin (at the placement
  instant) that still has room; classically strong for space, known to
  be weak for usage time.
* **Next Fit** — keep a single open bin; if the item doesn't fit, close
  it (it may still drain) and open a new one.  The weakest reasonable
  baseline.
"""

from __future__ import annotations

from ..core.errors import CapacityExceededError
from .bins import Bin, PlacedItem

__all__ = ["BestFit", "NextFit"]


class BestFit:
    """Best Fit: the fullest bin that can still hold the item."""

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.bins: list[Bin] = []

    def place(self, item_id: int, start: float, end: float, size: float) -> int:
        if size > self.capacity + 1e-12:
            raise CapacityExceededError(
                f"item {item_id} of size {size} exceeds capacity {self.capacity}"
            )
        item = PlacedItem(item_id=item_id, start=start, end=end, size=size)
        best: Bin | None = None
        best_load = -1.0
        for b in self.bins:
            load = b.load_at(start)
            if load + size <= self.capacity + 1e-12 and load > best_load:
                best = b
                best_load = load
        if best is None:
            best = Bin(index=len(self.bins), capacity=self.capacity)
            self.bins.append(best)
        best.place(item)
        return best.index

    @property
    def total_usage_time(self) -> float:
        return sum(b.usage_time for b in self.bins)

    @property
    def bins_used(self) -> int:
        return sum(1 for b in self.bins if b.ever_used)

    def describe(self) -> str:
        return f"BestFit(capacity={self.capacity:g})"


class NextFit:
    """Next Fit: one open bin; open a new one when the item doesn't fit."""

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.bins: list[Bin] = []
        self._open: Bin | None = None

    def place(self, item_id: int, start: float, end: float, size: float) -> int:
        if size > self.capacity + 1e-12:
            raise CapacityExceededError(
                f"item {item_id} of size {size} exceeds capacity {self.capacity}"
            )
        item = PlacedItem(item_id=item_id, start=start, end=end, size=size)
        if self._open is None or not self._open.fits(start, size):
            self._open = Bin(index=len(self.bins), capacity=self.capacity)
            self.bins.append(self._open)
        self._open.place(item)
        return self._open.index

    @property
    def total_usage_time(self) -> float:
        return sum(b.usage_time for b in self.bins)

    @property
    def bins_used(self) -> int:
        return sum(1 for b in self.bins if b.ever_used)

    def describe(self) -> str:
        return f"NextFit(capacity={self.capacity:g})"
