"""Bins for MinUsageTime Dynamic Bin Packing.

A bin models one cloud server of fixed ``capacity``.  Items (jobs with a
resource ``size``) occupy it over their active intervals; the bin's
**usage time** is the measure of the union of those intervals — exactly
the per-server span, which under pay-as-you-go billing is what the
provider charges for ([15, 16, 19] in the paper).

Placements must arrive in chronological order of item start times (the
online packing order); each placement verifies the capacity constraint,
which only needs checking at placement instants because a bin's load
changes only at item starts and departures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..core.errors import CapacityExceededError
from ..core.intervals import IntervalUnion, union_measure

__all__ = ["PlacedItem", "Bin"]


@dataclass(frozen=True, slots=True)
class PlacedItem:
    """An item resident in a bin over ``[start, end)`` with a size."""

    item_id: int
    start: float
    end: float
    size: float


@dataclass
class Bin:
    """One server: capacity, resident items, usage-time accounting."""

    index: int
    capacity: float
    items: list[PlacedItem] = field(default_factory=list)
    _active: list[tuple[float, float]] = field(default_factory=list)  # (end, size) heap
    _load: float = 0.0
    _clock: float = float("-inf")

    def _expire(self, t: float) -> None:
        """Release items departed by time ``t`` (half-open intervals)."""
        while self._active and self._active[0][0] <= t:
            _, size = heapq.heappop(self._active)
            self._load -= size

    def load_at(self, t: float) -> float:
        """Instantaneous load at ``t`` (must be >= previous queries)."""
        if t < self._clock:
            raise ValueError("bin queries must be chronologically ordered")
        self._clock = t
        self._expire(t)
        return self._load

    def fits(self, t: float, size: float) -> bool:
        """Whether an item of ``size`` starting at ``t`` respects capacity."""
        return self.load_at(t) + size <= self.capacity + 1e-12

    def place(self, item: PlacedItem) -> None:
        """Admit an item starting now; raises on capacity violation."""
        if not self.fits(item.start, item.size):
            raise CapacityExceededError(
                f"bin {self.index}: item {item.item_id} of size {item.size} "
                f"does not fit at t={item.start} "
                f"(load={self._load}, capacity={self.capacity})"
            )
        self.items.append(item)
        heapq.heappush(self._active, (item.end, item.size))
        self._load += item.size

    @property
    def usage_time(self) -> float:
        """Measure of the union of resident items' intervals."""
        if not self.items:
            return 0.0
        return union_measure(
            [it.start for it in self.items], [it.end - it.start for it in self.items]
        )

    def busy_union(self) -> IntervalUnion:
        """The bin's busy periods as an interval union."""
        return IntervalUnion.from_pairs((it.start, it.end) for it in self.items)

    @property
    def ever_used(self) -> bool:
        return bool(self.items)
