"""Classify-by-duration First Fit packing.

[19] in the paper shows that partitioning items by duration class and
running First Fit separately per class achieves an ``O(log μ)``
competitive ratio for clairvoyant MinUsageTime DBP.  The paper's
concluding remarks combine this packer with the Profit scheduler to
carry the guarantee over to flexible jobs.

Duration classes reuse the geometric classification of
:func:`repro.schedulers.cdb.duration_category`.
"""

from __future__ import annotations

from ..schedulers.cdb import duration_category
from .bins import Bin
from .firstfit import FirstFit

__all__ = ["ClassifyByDurationFirstFit"]


class ClassifyByDurationFirstFit:
    """Per-duration-class First Fit pools.

    Parameters
    ----------
    capacity:
        Bin capacity shared by all pools.
    alpha:
        Max/min duration ratio per class (``> 1``); default 2 matches
        the doubling classes of [19].
    base:
        Base duration anchoring class boundaries.
    """

    def __init__(self, capacity: float, alpha: float = 2.0, base: float = 1.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alpha <= 1:
            raise ValueError("alpha must exceed 1")
        self.capacity = capacity
        self.alpha = alpha
        self.base = base
        self.pools: dict[int, FirstFit] = {}
        self._global_index = 0
        self._index_map: dict[tuple[int, int], int] = {}  # (class, local) -> global

    def place(self, item_id: int, start: float, end: float, size: float) -> int:
        """Place one item in its duration class's pool; returns a global
        bin index (stable across classes)."""
        duration = end - start
        cls = duration_category(duration, self.alpha, self.base)
        pool = self.pools.get(cls)
        if pool is None:
            pool = FirstFit(self.capacity)
            self.pools[cls] = pool
        local = pool.place(item_id, start, end, size)
        key = (cls, local)
        if key not in self._index_map:
            self._index_map[key] = self._global_index
            self._global_index += 1
        return self._index_map[key]

    @property
    def bins(self) -> list[Bin]:
        out: list[Bin] = []
        for cls in sorted(self.pools):
            out.extend(self.pools[cls].bins)
        return out

    @property
    def total_usage_time(self) -> float:
        return sum(p.total_usage_time for p in self.pools.values())

    @property
    def bins_used(self) -> int:
        return sum(p.bins_used for p in self.pools.values())

    def describe(self) -> str:
        return (
            f"CD-FirstFit(capacity={self.capacity:g}, α={self.alpha:g}, "
            f"{len(self.pools)} classes)"
        )
