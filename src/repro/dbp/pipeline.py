"""Scheduler ∘ packer pipelines for generalized MinUsageTime DBP.

The paper's concluding remarks propose the two-stage architecture for
flexible jobs: a *span scheduler* decides when each job starts, and a
*packer* decides which server runs it.  The composition inherits both
guarantees — e.g. Batch+ ∘ First Fit is ``O(μ)``-competitive and
Profit ∘ CD-First-Fit is ``O(log μ)``-competitive for the generalized
problem.

:func:`run_pipeline` executes the composition: simulate the scheduler to
fix start times, then feed the resulting items to the packer in
chronological start order.  :func:`usage_lower_bound` provides the
certified denominator: total usage time is at least the jobs' minimum
span and at least ``total size·duration demand / capacity``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import simulate
from ..core.job import Instance
from ..core.schedule import Schedule
from ..offline.lower_bounds import span_lower_bound
from ..schedulers.base import OnlineScheduler
from .bestfit import BestFit, NextFit
from .bins import Bin
from .cdff import ClassifyByDurationFirstFit
from .firstfit import FirstFit

__all__ = ["PackingResult", "run_pipeline", "pack_schedule", "usage_lower_bound"]

Packer = FirstFit | BestFit | NextFit | ClassifyByDurationFirstFit


@dataclass(frozen=True)
class PackingResult:
    """Outcome of a scheduler ∘ packer pipeline."""

    schedule: Schedule
    assignments: dict[int, int]  # job id -> bin index
    bins: list[Bin]
    total_usage_time: float
    bins_used: int
    scheduler_name: str
    packer_name: str

    @property
    def span(self) -> float:
        return self.schedule.span

    @property
    def peak_open_bins(self) -> int:
        """Maximum number of simultaneously busy bins — the classic DBP
        objective (#servers provisioned at the worst instant)."""
        events: list[tuple[float, int]] = []
        for b in self.bins:
            for comp in b.busy_union():
                events.append((comp.left, 1))
                events.append((comp.right, -1))
        events.sort(key=lambda e: (e[0], e[1]))  # departures before arrivals
        peak = level = 0
        for _, delta in events:
            level += delta
            peak = max(peak, level)
        return peak


def pack_schedule(schedule: Schedule, packer: Packer) -> PackingResult:
    """Pack an existing schedule's items in chronological start order."""
    rows = sorted(
        schedule.rows(), key=lambda r: (r.start, r.job.id)
    )
    assignments: dict[int, int] = {}
    for row in rows:
        assignments[row.job.id] = packer.place(
            row.job.id, row.start, row.end, row.job.size
        )
    return PackingResult(
        schedule=schedule,
        assignments=assignments,
        bins=list(packer.bins),
        total_usage_time=packer.total_usage_time,
        bins_used=packer.bins_used,
        scheduler_name="offline",
        packer_name=packer.describe(),
    )


def run_pipeline(
    scheduler: OnlineScheduler,
    packer: Packer,
    instance: Instance,
    *,
    clairvoyant: bool | None = None,
) -> PackingResult:
    """Simulate the scheduler, then pack the resulting item intervals.

    ``clairvoyant`` defaults to the scheduler's declared requirement.
    """
    mode = (
        type(scheduler).requires_clairvoyance if clairvoyant is None else clairvoyant
    )
    sim = simulate(scheduler.clone(), instance, clairvoyant=mode)
    result = pack_schedule(sim.schedule, packer)
    return PackingResult(
        schedule=result.schedule,
        assignments=result.assignments,
        bins=result.bins,
        total_usage_time=result.total_usage_time,
        bins_used=result.bins_used,
        scheduler_name=scheduler.name,
        packer_name=result.packer_name,
    )


def usage_lower_bound(instance: Instance, capacity: float) -> float:
    """Certified lower bound on any pipeline's total usage time.

    * At least one server is on whenever any job runs: ``>= span_min``,
      bounded below by the chain bound.
    * Work conservation: the time-accumulated size demand
      ``Σ size_j · p_j`` cannot exceed ``capacity ×`` total usage time.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    demand = sum(j.size * j.known_length for j in instance)
    return max(span_lower_bound(instance), demand / capacity)
