"""Command-line interface: ``python -m repro`` / ``fjs``.

Subcommands
-----------
``run``       — run one scheduler on a synthetic workload (or a saved
                instance file), print metrics, optionally a Gantt chart
                and the full event trace.
``compare``   — run all applicable schedulers on a workload family and
                print the span-ratio table (vs the certified lower bound
                or, for small integral instances, the exact optimum).
``adversary`` — replay a lower-bound adversary against a scheduler and
                report the forced ratio next to the theory value.
``bounds``    — print the paper's bound landscape for given μ/α/k.
``certify``   — measure one scheduler's competitive ratio with a
                certified bracket (exact OPT when feasible).
``workload``  — generate a synthetic instance and save it as JSON.
``bench``     — time the pinned perf suite and write ``BENCH_perf.json``
                (see ``repro.perf.bench``).
``lint``      — domain-aware static analysis (clairvoyance contract,
                determinism, float hygiene; see ``repro.lint``).
``obs``       — observability tooling: summarize/explain/diff/export
                JSONL traces, NullRecorder overhead ratchet (see
                ``repro.obs``).
``serve``     — streaming scheduling daemon: JSONL job streams in
                (stdio, Unix, or TCP socket), start-decision records
                out; multi-tenant, backpressured, checkpoint/restore
                (see ``repro.serve`` and ``docs/serving.md``).  ``REPRO_TRACE=1`` makes ``run`` (and any
                other simulation-shaped command) record a structured
                trace; ``run`` writes it to ``<scheduler>.trace.jsonl``
                under ``REPRO_TRACE_DIR`` (default: cwd).

Performance knobs honoured by ``compare``/``experiment`` (and any other
grid-shaped command): ``REPRO_WORKERS`` fans simulation cells out over a
process pool, and expensive offline references are memoized through
``repro.perf.cache`` (disable with ``REPRO_CACHE=0``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .adversaries import (
    ClairvoyantLowerBoundAdversary,
    NonClairvoyantLowerBoundAdversary,
    geometric_profile,
    paper_profile,
)
from .analysis import (
    Table,
    measure_ratio,
    batch_upper_bound,
    batchplus_ratio,
    cdb_ratio,
    clairvoyant_adversary_ratio,
    nonclairvoyant_lower_bound,
    optimal_cdb_alpha,
    optimal_profit_k,
    profit_ratio,
    render_gantt,
)
from .core import SimulationError, load_instance, save_instance, simulate
from .offline import exact_optimal_span, span_lower_bound
from .schedulers import make_scheduler, scheduler_names
from .workloads import WorkloadSpec, generate, ratio_stats, run_grid

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fjs",
        description=(
            "Online Flexible Job Scheduling for Minimum Span "
            "(Ren & Tang, SPAA 2017) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one scheduler on a workload")
    p_run.add_argument("scheduler", choices=scheduler_names())
    p_run.add_argument("--jobs", type=int, default=20)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--laxity-scale", type=float, default=2.0)
    p_run.add_argument("--length-high", type=float, default=10.0)
    p_run.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    p_run.add_argument("--trace", action="store_true", help="print the event trace")
    p_run.add_argument(
        "--summary", action="store_true",
        help="print the full run summary (metrics + certified ratio)",
    )
    p_run.add_argument(
        "--instance", type=str, default=None,
        help="load the instance from a JSON file instead of generating one",
    )

    p_cmp = sub.add_parser("compare", help="compare schedulers on a workload family")
    p_cmp.add_argument("--jobs", type=int, default=50)
    p_cmp.add_argument("--instances", type=int, default=5)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--laxity-scale", type=float, default=2.0)
    p_cmp.add_argument(
        "--exact",
        action="store_true",
        help="use the exact optimum (small integral instances) instead of the lower bound",
    )
    p_cmp.add_argument(
        "--matrix",
        action="store_true",
        help="also print the head-to-head win matrix",
    )

    p_adv = sub.add_parser("adversary", help="replay a lower-bound adversary")
    p_adv.add_argument(
        "setting", choices=["nonclairvoyant", "clairvoyant"], help="which construction"
    )
    p_adv.add_argument("scheduler", choices=scheduler_names())
    p_adv.add_argument("--mu", type=float, default=5.0)
    p_adv.add_argument("--k", type=int, default=4, help="iteration budget (nc)")
    p_adv.add_argument("--n", type=int, default=50, help="iteration budget (c)")
    p_adv.add_argument("--m", type=int, default=16, help="scaled profile size")
    p_adv.add_argument(
        "--paper-profile",
        action="store_true",
        help="use the doubly-exponential paper profile (k <= 2)",
    )

    p_b = sub.add_parser("bounds", help="print the paper's bound landscape")
    p_b.add_argument("--mu", type=float, default=5.0)

    p_cert = sub.add_parser(
        "certify", help="measure a scheduler's ratio with a certified bracket"
    )
    p_cert.add_argument("scheduler", choices=scheduler_names())
    p_cert.add_argument("--jobs", type=int, default=8)
    p_cert.add_argument("--seed", type=int, default=0)
    p_cert.add_argument("--instances", type=int, default=5)
    p_cert.add_argument(
        "--instance", type=str, default=None,
        help="certify on a saved instance file instead",
    )

    p_exp = sub.add_parser(
        "experiment", help="regenerate an EXPERIMENTS.md table interactively"
    )
    p_exp.add_argument("id", help="experiment id, e.g. E4 (see DESIGN.md)")
    p_exp.add_argument(
        "--full", action="store_true", help="bench-sized parameters (slower)"
    )

    p_v = sub.add_parser(
        "verify", help="machine-check every theorem on random or saved instances"
    )
    p_v.add_argument("--jobs", type=int, default=8)
    p_v.add_argument("--seed", type=int, default=0)
    p_v.add_argument("--instances", type=int, default=3)
    p_v.add_argument(
        "--instance", type=str, default=None,
        help="verify on a saved instance file instead",
    )

    p_bench = sub.add_parser(
        "bench", help="time the pinned perf suite and write BENCH_perf.json"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="small parameters (CI smoke): k=1 macro case, 1k-job micros",
    )
    p_bench.add_argument("--repeat", type=int, default=3, help="timed repetitions")
    p_bench.add_argument(
        "--out", type=str, default="BENCH_perf.json", help="output JSON path"
    )
    p_bench.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing output file even if its schema differs",
    )
    p_bench.add_argument(
        "--case", type=str, default=None,
        help="run only cases whose name contains this substring",
    )
    p_bench.add_argument(
        "--ratchet", action="store_true",
        help=(
            "exit non-zero when macro/e1_paper_k2_batch lands below the "
            "recorded columnar baseline minus the ratchet margin"
        ),
    )

    from .lint.cli import add_lint_parser
    from .obs.cli import add_obs_parser
    from .serve.cli import add_serve_parser

    add_lint_parser(sub)
    add_obs_parser(sub)
    add_serve_parser(sub)

    p_w = sub.add_parser("workload", help="generate and save a synthetic instance")
    p_w.add_argument("out", help="output JSON path")
    p_w.add_argument("--jobs", type=int, default=50)
    p_w.add_argument("--seed", type=int, default=0)
    p_w.add_argument("--laxity-scale", type=float, default=2.0)
    p_w.add_argument("--length-high", type=float, default=10.0)
    p_w.add_argument("--integral", action="store_true")

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.instance:
        inst = load_instance(args.instance)
    else:
        spec = WorkloadSpec(
            n=args.jobs,
            laxity_scale=args.laxity_scale,
            length_high=args.length_high,
        )
        inst = generate(spec, seed=args.seed)
    sched = make_scheduler(args.scheduler)
    try:
        result = simulate(
            sched,
            inst,
            clairvoyant=type(sched).requires_clairvoyance,
            trace=args.trace,
        )
    except SimulationError as exc:
        # e.g. REPRO_ENGINE_CORE set to an unknown core name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lb = span_lower_bound(inst)
    print(f"scheduler : {sched.describe()}")
    print(f"workload  : {inst.name}")
    print(f"span      : {result.span:.4f}")
    # 0/0 -> 1.0 and x/0 -> inf, the GridResult.ratio convention
    ratio = result.span / lb if lb > 0 else (1.0 if result.span == 0.0 else float("inf"))
    print(f"lower bnd : {lb:.4f}  (ratio <= {ratio:.4f})")
    print(f"events    : {result.events_processed}")
    if args.summary:
        from .analysis import summarize_run

        print()
        print(summarize_run(result).render())
    if args.gantt:
        print()
        print(render_gantt(result.schedule))
    if args.trace and result.trace is not None:
        print()
        print(result.trace.render())
    recorder = result.recorder
    if recorder is not None and hasattr(recorder, "write_jsonl"):
        from pathlib import Path

        from .obs import trace_dir

        out = Path(trace_dir()) / f"{args.scheduler}.trace.jsonl"
        written = recorder.write_jsonl(
            out, command="run", scheduler=args.scheduler, workload=inst.name
        )
        print(f"trace     : {written} ({len(recorder.records)} records)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .perf import cached_reference

    if args.exact:
        from .workloads import small_integral_instance

        instances = [
            small_integral_instance(min(args.jobs, 8), seed=args.seed + i)
            for i in range(args.instances)
        ]
        reference = cached_reference(exact_optimal_span)
        ref_name = "exact optimum"
    else:
        spec = WorkloadSpec(n=args.jobs, laxity_scale=args.laxity_scale)
        instances = [
            generate(spec, seed=args.seed + i) for i in range(args.instances)
        ]
        reference = cached_reference(span_lower_bound)
        ref_name = "chain lower bound"

    protos = [make_scheduler(name) for name in scheduler_names()]
    results = run_grid(protos, instances, reference)
    stats = ratio_stats(results)
    table = Table(
        ["scheduler", "mean ratio", "p95 ratio", "max ratio"],
        title=f"span ratio vs {ref_name} ({args.instances} instances × {args.jobs} jobs)",
    )
    for name in sorted(stats, key=lambda n: stats[n]["mean"]):
        s = stats[name]
        table.add(name, s["mean"], s["p95"], s["max"])
    table.print()
    if args.matrix:
        from .analysis import compare_schedulers

        print()
        print(compare_schedulers(protos, instances).render())
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    sched = make_scheduler(args.scheduler)
    if args.setting == "nonclairvoyant":
        if type(sched).requires_clairvoyance:
            print(
                f"error: {args.scheduler} requires clairvoyance; the "
                "non-clairvoyant adversary controls lengths adaptively",
                file=sys.stderr,
            )
            return 2
        profile = (
            paper_profile(args.k) if args.paper_profile else geometric_profile(args.k, args.m)
        )
        adv = NonClairvoyantLowerBoundAdversary(args.mu, profile)
        result = simulate(sched, adversary=adv, clairvoyant=False)
        witness = adv.paper_optimal_schedule(result.instance)
        counts = [it.count for it in profile.iterations]
        theory = nonclairvoyant_lower_bound(profile.k, args.mu, counts)
        print(f"adversary : §3.1 (μ={args.mu:g}, k={profile.k}, profile={counts})")
        print(f"released  : {len(result.instance)} jobs in {adv.iterations_released} iteration(s)"
              + (" + final" if adv.final_released else ""))
        print(f"online    : span {result.span:.4f}")
        print(f"witness   : span {witness.span:.4f}")
        print(f"ratio     : {result.span / witness.span:.4f}")
        print(f"theory    : forced ratio >= {theory:.4f} (→ μ={args.mu:g} as k→∞)")
    else:
        if not type(sched).requires_clairvoyance:
            print(
                "note: running a non-clairvoyant scheduler against the "
                "clairvoyant adversary (allowed; lengths are fixed)",
            )
        adv = ClairvoyantLowerBoundAdversary(args.n)
        result = simulate(
            sched, adversary=adv, clairvoyant=type(sched).requires_clairvoyance
        )
        witness = adv.paper_optimal_schedule(result.instance)
        theory = clairvoyant_adversary_ratio(args.n)
        print(f"adversary : §4.1 (n={args.n})")
        print(f"played    : {adv.iterations_played} iteration(s), "
              f"stopped early: {adv.stopped_early}")
        print(f"online    : span {result.span:.4f}")
        print(f"witness   : span {witness.span:.4f}")
        print(f"ratio     : {result.span / witness.span:.4f}")
        print(f"theory    : forced ratio >= {theory:.4f} (→ φ≈1.618 as n→∞)")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    mu = args.mu
    table = Table(["quantity", "value"], title=f"paper bound landscape (μ={mu:g})")
    table.add("non-clairvoyant LB (Thm 3.3)", mu)
    table.add("Batch upper bound (Thm 3.4)", batch_upper_bound(mu))
    table.add("Batch+ tight ratio (Thm 3.5)", batchplus_ratio(mu))
    table.add("clairvoyant LB φ (Thm 4.1)", clairvoyant_adversary_ratio(10**9))
    table.add("CDB bound at optimal α (Thm 4.4)", cdb_ratio(optimal_cdb_alpha()))
    table.add("  optimal α", optimal_cdb_alpha())
    table.add("Profit bound at optimal k (Thm 4.11)", profit_ratio(optimal_profit_k()))
    table.add("  optimal k", optimal_profit_k())
    table.print()
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    sched = make_scheduler(args.scheduler)
    if args.instance:
        instances = [load_instance(args.instance)]
    else:
        from .workloads import small_integral_instance

        instances = [
            small_integral_instance(args.jobs, seed=args.seed + i)
            for i in range(args.instances)
        ]
    table = Table(
        ["instance", "span", "ratio", "method"],
        title=f"certified competitive ratios: {sched.describe()}",
    )
    for inst in instances:
        rb = measure_ratio(sched, inst)
        table.add(inst.name, rb.span, str(rb), rb.opt.method)
    table.print()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .analysis import verify_theorems
    from .workloads import small_integral_instance

    if args.instance:
        instances = [load_instance(args.instance)]
    else:
        instances = [
            small_integral_instance(args.jobs, seed=args.seed + i)
            for i in range(args.instances)
        ]
    all_ok = True
    for inst in instances:
        report = verify_theorems(inst)
        print(report.render())
        print()
        all_ok = all_ok and report.all_passed
    print("all theorems verified" if all_ok else "THEOREM VIOLATION DETECTED")
    return 0 if all_ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_experiment

    try:
        print(run_experiment(args.id, quick=not args.full))
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import check_ratchet, render_records, run_bench

    try:
        records = run_bench(
            quick=args.quick,
            repeat=args.repeat,
            out=args.out,
            force=args.force,
            case=args.case,
        )
    except (FileExistsError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_records(records))
    print(f"\nwrote {args.out}")
    if args.ratchet:
        try:
            verdict = check_ratchet(records)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if verdict is not None:
            print(verdict, file=sys.stderr)
            return 1
        print(
            "perf ratchet OK: macro/e1_paper_k2_batch holds the "
            "columnar baseline"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import cmd_lint

    return cmd_lint(args)


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs.cli import cmd_obs

    return cmd_obs(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import functools

    from .serve.cli import cmd_serve

    # The serve package is print-free (lint RL011); the CLI injects the
    # human-output channels.  In stdio mode stdout carries the JSONL
    # protocol, so human-facing lines go to stderr.
    return cmd_serve(
        args, echo=print, echo_err=functools.partial(print, file=sys.stderr)
    )


def _cmd_workload(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        n=args.jobs,
        laxity_scale=args.laxity_scale,
        length_high=args.length_high,
        integral=args.integral,
    )
    inst = generate(spec, seed=args.seed)
    save_instance(inst, args.out)
    print(f"wrote {len(inst)} jobs (μ={inst.mu:.3f}) to {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "adversary": _cmd_adversary,
        "bounds": _cmd_bounds,
        "certify": _cmd_certify,
        "workload": _cmd_workload,
        "experiment": _cmd_experiment,
        "verify": _cmd_verify,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "obs": _cmd_obs,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
