"""The recorder protocol: zero overhead when disabled, structured when on.

Two concrete recorders:

* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``enabled`` is ``False``.  Instrumentation sites are written as

  .. code-block:: python

      obs = self._obs          # None when disarmed
      if obs is not None:
          obs.instant("engine.start", t=now, job=job_id)

  so a disabled recorder costs exactly one ``is not None`` test on the
  hot path — the engine maps any disabled recorder (including an
  explicit ``NullRecorder``) to ``None`` before the event loop starts.
  This is what keeps the golden engine trace bit-identical and the
  ``macro/e1_paper_k2_batch`` overhead within the ≤2 % budget
  (``python -m repro obs overhead`` measures it).

* :class:`TraceRecorder` — an in-memory structured recorder: an
  append-only list of :class:`~repro.obs.records.ObsRecord` plus a
  :class:`~repro.obs.metrics.MetricsRegistry`.  Sinks are separate:
  :meth:`TraceRecorder.write_jsonl` and
  :func:`repro.obs.chrome.export_chrome_trace` consume a finished
  recorder.

Arming
------
``REPRO_TRACE=1`` arms tracing process-wide (the ambient recorder in
:mod:`repro.obs.runtime`); ``Simulator(recorder=...)`` arms one run
explicitly.  ``REPRO_TRACE_DIR`` names the directory the CLI writes
JSONL traces into (default: the working directory).
"""

from __future__ import annotations

import os
import time as _time
from typing import Any, Iterator

from contextlib import contextmanager

from .metrics import DEFAULT_BUCKETS, MetricsRegistry
from .records import (
    KIND_DECISION,
    KIND_INSTANT,
    KIND_SPAN_BEGIN,
    KIND_SPAN_END,
    ObsRecord,
)

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "TRACE_DIR_ENV",
    "TRACE_ENV",
    "TraceRecorder",
    "trace_dir",
    "trace_enabled",
]

#: Environment variable arming process-wide tracing.
TRACE_ENV = "REPRO_TRACE"
#: Environment variable naming the CLI's trace output directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

_FALSEY = ("", "0", "false", "off")


def trace_enabled() -> bool:
    """Whether ``REPRO_TRACE`` requests structured tracing."""
    return os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSEY


def trace_dir() -> str:
    """The directory CLI trace files go to (``REPRO_TRACE_DIR`` or cwd)."""
    return os.environ.get(TRACE_DIR_ENV, "").strip() or "."


class Recorder:
    """Base recorder: the full protocol, all no-ops.

    Subclasses override what they store.  ``enabled`` is the *contract*
    flag: instrumentation may (and the engine does) skip every call when
    it is ``False``, so a disabled recorder must never rely on being
    invoked.
    """

    enabled: bool = False

    # -- structured records --------------------------------------------------
    def instant(self, name: str, **attrs: Any) -> None:
        """A point-in-time structured event."""

    def decision(
        self, rule: str, *, job: int, t: float, scheduler: str, **attrs: Any
    ) -> None:
        """A scheduler start-decision with its paper rule (provenance)."""

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """A wall-clock span (context manager)."""
        yield

    # -- metrics -------------------------------------------------------------
    def counter_add(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonic counter."""

    def gauge_set(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge."""

    def histogram_observe(
        self, name: str, value: float, edges: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        """Observe a value into a fixed-bucket histogram."""

    # -- cross-process plumbing ----------------------------------------------
    def metrics_snapshot(self, *, reset: bool = False) -> dict[str, Any] | None:
        """The metrics registry as a dict (``None`` when there is none).

        Worker processes call this (with ``reset=True``) at the end of a
        :func:`repro.perf.parallel._run_chunk` so per-task metrics stream
        back to the parent for merging.
        """
        return None

    def merge_metrics(self, snapshot: "dict[str, Any] | None") -> None:
        """Fold a worker's metrics snapshot into this recorder (no-op here)."""


class NullRecorder(Recorder):
    """The do-nothing recorder (default everywhere).

    Identity guarantee, tested in ``tests/test_obs_recorder.py``: running
    any simulation with a :class:`NullRecorder` produces byte-identical
    results, traces, and schedules to running with no recorder at all —
    the engine treats both as "disarmed".
    """

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullRecorder()"


#: Shared singleton — a ``NullRecorder`` is stateless, so one suffices.
NULL_RECORDER = NullRecorder()


class TraceRecorder(Recorder):
    """In-memory structured recorder: records + metrics registry.

    Parameters
    ----------
    max_records:
        Cap on stored records (sweeps route thousands of simulations
        through one ambient recorder; unbounded growth would turn the
        observability layer into the memory bottleneck it is meant to
        find).  Beyond the cap, records are dropped and counted in the
        ``obs.records_dropped`` counter — metrics keep aggregating.
    tag:
        Attributes stamped onto every stored record (the serve layer
        tags each session's records with its tenant, which is what lets
        merged multi-tenant traces summarize per tenant).
    """

    enabled = True

    def __init__(
        self,
        *,
        max_records: int = 1_000_000,
        tag: dict[str, Any] | None = None,
    ) -> None:
        self.records: list[ObsRecord] = []
        self.metrics = MetricsRegistry()
        self.max_records = max_records
        self.tag = dict(tag) if tag else None
        self.epoch = _time.perf_counter()

    # -- internals -----------------------------------------------------------
    def _now(self) -> float:
        return _time.perf_counter() - self.epoch

    def _append(self, kind: str, name: str, attrs: dict[str, Any]) -> None:
        if len(self.records) >= self.max_records:
            self.metrics.counter_add("obs.records_dropped")
            return
        tag = self.tag
        if tag is not None:
            attrs.update(tag)
        self.records.append(ObsRecord(self._now(), kind, name, attrs))

    # -- structured records --------------------------------------------------
    def instant(self, name: str, **attrs: Any) -> None:
        self._append(KIND_INSTANT, name, attrs)

    def decision(
        self, rule: str, *, job: int, t: float, scheduler: str, **attrs: Any
    ) -> None:
        attrs["job"] = job
        attrs["t"] = t
        attrs["scheduler"] = scheduler
        self._append(KIND_DECISION, rule, attrs)
        self.metrics.counter_add(f"decision.{rule}")

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        self._append(KIND_SPAN_BEGIN, name, attrs)
        t0 = _time.perf_counter()
        try:
            yield
        finally:
            wall = _time.perf_counter() - t0
            self._append(KIND_SPAN_END, name, {"wall_s": wall})
            self.metrics.histogram_observe(f"span.{name}.wall_s", wall)

    # -- metrics -------------------------------------------------------------
    def counter_add(self, name: str, value: float = 1.0) -> None:
        self.metrics.counter_add(name, value)

    def gauge_set(self, name: str, value: float) -> None:
        self.metrics.gauge_set(name, value)

    def histogram_observe(
        self, name: str, value: float, edges: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        self.metrics.histogram_observe(name, value, edges)

    # -- cross-process plumbing ----------------------------------------------
    def metrics_snapshot(self, *, reset: bool = False) -> dict[str, Any] | None:
        if not self.metrics:
            return None
        return self.metrics.snapshot(reset=reset)

    def merge_metrics(self, snapshot: "dict[str, Any] | None") -> None:
        if snapshot:
            self.metrics.merge(snapshot)

    # -- sinks ---------------------------------------------------------------
    def write_jsonl(self, path: "str | os.PathLike[str]", **meta: Any) -> str:
        """Write the trace as JSONL (see :mod:`repro.obs.jsonl`)."""
        from .jsonl import write_jsonl

        return write_jsonl(self, path, **meta)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceRecorder({len(self.records)} records)"
