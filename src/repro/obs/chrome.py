"""Chrome ``trace_event`` exporter — open traces in Perfetto.

Converts a :class:`~repro.obs.recorder.TraceRecorder` (or a
:class:`~repro.obs.jsonl.LoadedTrace`) into the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev consume: a JSON object
with a ``traceEvents`` array.

Mapping
-------
========================  ==============================================
obs record                trace event
========================  ==============================================
``span_begin``            ``ph: "B"`` (duration begin)
``span_end``              ``ph: "E"`` (duration end)
``instant``               ``ph: "i"``, thread-scoped
``decision``              ``ph: "i"``, category ``decision`` — the args
                          carry the paper rule, job id, and sim time
``metrics`` counters      one ``ph: "C"`` counter sample at trace end
========================  ==============================================

Timestamps are microseconds of wall-clock time since the recorder epoch
(the format's native unit).  Simulation time rides in ``args.t`` so the
Perfetto detail panel shows both clocks side by side.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union

from .jsonl import LoadedTrace
from .recorder import TraceRecorder
from .records import (
    KIND_DECISION,
    KIND_INSTANT,
    KIND_SPAN_BEGIN,
    KIND_SPAN_END,
    ObsRecord,
)

__all__ = ["chrome_trace_events", "export_chrome_trace"]

_PID = 1
_TID = 1


def _events_from_records(records: list[ObsRecord]) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    for r in records:
        ts_us = r.ts * 1e6
        if r.kind == KIND_SPAN_BEGIN:
            events.append(
                {"name": r.name, "cat": "span", "ph": "B", "ts": ts_us,
                 "pid": _PID, "tid": _TID, "args": r.attrs}
            )
        elif r.kind == KIND_SPAN_END:
            events.append(
                {"name": r.name, "cat": "span", "ph": "E", "ts": ts_us,
                 "pid": _PID, "tid": _TID, "args": r.attrs}
            )
        elif r.kind == KIND_DECISION:
            events.append(
                {"name": f"decision:{r.name}", "cat": "decision", "ph": "i",
                 "ts": ts_us, "pid": _PID, "tid": _TID, "s": "t",
                 "args": r.attrs}
            )
        elif r.kind == KIND_INSTANT:
            events.append(
                {"name": r.name, "cat": "event", "ph": "i", "ts": ts_us,
                 "pid": _PID, "tid": _TID, "s": "t", "args": r.attrs}
            )
    return events


def chrome_trace_events(
    trace: Union[TraceRecorder, LoadedTrace],
) -> dict[str, Any]:
    """The Trace Event Format payload (``{"traceEvents": [...], ...}``)."""
    records = trace.records
    events = _events_from_records(records)
    last_ts = records[-1].ts * 1e6 if records else 0.0
    metrics = trace.metrics
    for name, value in sorted(metrics.counters.items()):
        events.append(
            {"name": name, "cat": "metric", "ph": "C", "ts": last_ts,
             "pid": _PID, "tid": _TID, "args": {"value": value}}
        )
    events.append(
        {"name": "process_name", "ph": "M", "ts": 0.0, "pid": _PID, "tid": _TID,
         "args": {"name": "repro simulation"}}
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro.obs", "format": "chrome-trace-event"},
    }


def export_chrome_trace(
    trace: Union[TraceRecorder, LoadedTrace], path: "str | os.PathLike[str]"
) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace_events(trace)) + "\n", encoding="utf-8")
    return str(target)
