"""JSONL trace sink: one JSON object per line, self-describing.

Layout of a trace file::

    {"kind": "meta", "version": 1, "tool": "repro.obs", ...caller meta}
    {"kind": "instant", "ts": ..., "name": ..., "attrs": {...}}
    {"kind": "decision", "ts": ..., "name": "<rule>", "attrs": {...}}
    ...
    {"kind": "metrics", "data": {"counters": ..., "gauges": ..., "histograms": ...}}

The first *logical* (non-blank) line is always ``meta`` (version-gated so
readers can reject foreign files), the last is always the merged
``metrics`` registry, and everything between is the record stream in
emission order.  The format round-trips losslessly through
:func:`read_jsonl` (tested in ``tests/test_obs_sinks.py``).

The versioned header + atomic-write discipline is shared with other
subsystems through the generic pair :func:`dump_jsonl` /
:func:`scan_jsonl` — ``repro.serve`` checkpoints ride on it, which is why
the writer is hardened: a unique ``mkstemp`` temp file per writer (two
concurrent writers to the same target can never clobber each other's
half-written file), ``fsync`` before the rename (a checkpoint that
``os.replace`` has published must be durable), and a ``finally`` cleanup
so a mid-write exception never leaves a stray temp file behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from .metrics import MetricsRegistry
from .records import ObsRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .recorder import TraceRecorder

__all__ = [
    "JSONL_VERSION",
    "LoadedTrace",
    "dump_jsonl",
    "read_jsonl",
    "scan_jsonl",
    "write_jsonl",
]

JSONL_VERSION = 1


class LoadedTrace:
    """A trace file read back into memory: meta + records + metrics."""

    __slots__ = ("meta", "records", "metrics", "path")

    def __init__(
        self,
        meta: dict[str, Any],
        records: list[ObsRecord],
        metrics: MetricsRegistry,
        path: str = "",
    ) -> None:
        self.meta = meta
        self.records = records
        self.metrics = metrics
        self.path = path

    def by_kind(self, kind: str) -> list[ObsRecord]:
        """All records of one kind, in emission order."""
        return [r for r in self.records if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)


def dump_jsonl(
    path: "str | os.PathLike[str]",
    records: Iterable[Mapping[str, Any]],
    **meta: Any,
) -> str:
    """Atomically write a versioned JSONL file; returns the path written.

    Writes the ``meta`` header line followed by one JSON object per
    record.  Parent directories are created.  The write goes to a
    ``mkstemp`` temp file unique to this writer (concurrent writers to
    the same target cannot collide), is ``fsync``ed before the atomic
    ``os.replace``, and the temp file is removed in ``finally`` if
    anything fails mid-write — so a crashed or raced writer never leaves
    a half-file or a stray temp behind.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header: dict[str, Any] = {"kind": "meta", "version": JSONL_VERSION}
    header.update(meta)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for record in records:
                fh.write(json.dumps(dict(record)) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass  # the normal case: os.replace already consumed it
    return str(target)


def scan_jsonl(
    path: "str | os.PathLike[str]",
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a versioned JSONL file: validated meta header + record dicts.

    The header is the first *logical* record — blank lines anywhere
    (including before the header) are skipped, so a leading newline can
    never demote the real header into the record stream.  A file with no
    records at all (empty, or blank lines only) is rejected: every
    legitimate writer emits at least the header line.
    """
    source = Path(path)
    meta: dict[str, Any] | None = None
    records: list[dict[str, Any]] = []
    with source.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{source}:{lineno}: invalid JSON: {exc}") from None
            if meta is None:
                if not isinstance(obj, dict) or obj.get("kind") != "meta":
                    raise ValueError(
                        f"{source}: not a versioned repro JSONL file "
                        "(first line must be meta)"
                    )
                version = obj.get("version")
                if version != JSONL_VERSION:
                    raise ValueError(
                        f"{source}: unsupported trace version {version!r} "
                        f"(this reader speaks {JSONL_VERSION})"
                    )
                meta = {k: v for k, v in obj.items() if k != "kind"}
                continue
            if not isinstance(obj, dict):
                raise ValueError(
                    f"{source}:{lineno}: record is not a JSON object"
                )
            records.append(obj)
    if meta is None:
        raise ValueError(
            f"{source}: empty file is not a valid trace (missing meta header)"
        )
    return meta, records


def write_jsonl(
    recorder: "TraceRecorder", path: "str | os.PathLike[str]", **meta: Any
) -> str:
    """Write a finished recorder to ``path``; returns the path written.

    Parent directories are created; the write is atomic and crash-safe
    (see :func:`dump_jsonl`) so a crashed run never leaves a half-trace
    that a later ``repro obs summarize`` chokes on.
    """
    header_meta: dict[str, Any] = {"tool": "repro.obs"}
    header_meta.update(meta)

    def rows() -> Iterable[dict[str, Any]]:
        for record in recorder.records:
            yield record.to_dict()
        yield {"kind": "metrics", "data": recorder.metrics.to_dict()}

    return dump_jsonl(path, rows(), **header_meta)


def read_jsonl(path: "str | os.PathLike[str]") -> LoadedTrace:
    """Read a JSONL trace file back (validating the meta header)."""
    meta, rows = scan_jsonl(path)
    records: list[ObsRecord] = []
    metrics = MetricsRegistry()
    for obj in rows:
        if obj.get("kind") == "metrics":
            metrics.merge(MetricsRegistry.from_dict(obj.get("data", {})))
        else:
            records.append(ObsRecord.from_dict(obj))
    return LoadedTrace(meta, records, metrics, path=str(Path(path)))
