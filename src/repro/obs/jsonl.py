"""JSONL trace sink: one JSON object per line, self-describing.

Layout of a trace file::

    {"kind": "meta", "version": 1, "tool": "repro.obs", ...caller meta}
    {"kind": "instant", "ts": ..., "name": ..., "attrs": {...}}
    {"kind": "decision", "ts": ..., "name": "<rule>", "attrs": {...}}
    ...
    {"kind": "metrics", "data": {"counters": ..., "gauges": ..., "histograms": ...}}

The first line is always ``meta`` (version-gated so readers can reject
foreign files), the last is always the merged ``metrics`` registry, and
everything between is the record stream in emission order.  The format
round-trips losslessly through :func:`read_jsonl` (tested in
``tests/test_obs_sinks.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .metrics import MetricsRegistry
from .records import ObsRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .recorder import TraceRecorder

__all__ = ["JSONL_VERSION", "LoadedTrace", "read_jsonl", "write_jsonl"]

JSONL_VERSION = 1


class LoadedTrace:
    """A trace file read back into memory: meta + records + metrics."""

    __slots__ = ("meta", "records", "metrics", "path")

    def __init__(
        self,
        meta: dict[str, Any],
        records: list[ObsRecord],
        metrics: MetricsRegistry,
        path: str = "",
    ) -> None:
        self.meta = meta
        self.records = records
        self.metrics = metrics
        self.path = path

    def by_kind(self, kind: str) -> list[ObsRecord]:
        """All records of one kind, in emission order."""
        return [r for r in self.records if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)


def write_jsonl(
    recorder: "TraceRecorder", path: "str | os.PathLike[str]", **meta: Any
) -> str:
    """Write a finished recorder to ``path``; returns the path written.

    Parent directories are created; the write is atomic (temp file +
    rename) so a crashed run never leaves a half-trace that a later
    ``repro obs summarize`` chokes on.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header = {"kind": "meta", "version": JSONL_VERSION, "tool": "repro.obs"}
    header.update(meta)
    tmp = target.with_suffix(target.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for record in recorder.records:
            fh.write(json.dumps(record.to_dict()) + "\n")
        fh.write(
            json.dumps({"kind": "metrics", "data": recorder.metrics.to_dict()}) + "\n"
        )
    tmp.replace(target)
    return str(target)


def read_jsonl(path: "str | os.PathLike[str]") -> LoadedTrace:
    """Read a JSONL trace file back (validating the meta header)."""
    source = Path(path)
    meta: dict[str, Any] = {}
    records: list[ObsRecord] = []
    metrics = MetricsRegistry()
    with source.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{source}:{lineno}: invalid JSON: {exc}") from None
            kind = obj.get("kind")
            if lineno == 1:
                if kind != "meta":
                    raise ValueError(
                        f"{source}: not a repro.obs trace (first line must be meta)"
                    )
                version = obj.get("version")
                if version != JSONL_VERSION:
                    raise ValueError(
                        f"{source}: unsupported trace version {version!r} "
                        f"(this reader speaks {JSONL_VERSION})"
                    )
                meta = {k: v for k, v in obj.items() if k != "kind"}
            elif kind == "metrics":
                metrics.merge(MetricsRegistry.from_dict(obj.get("data", {})))
            else:
                records.append(ObsRecord.from_dict(obj))
    return LoadedTrace(meta, records, metrics, path=str(source))
