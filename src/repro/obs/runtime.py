"""The ambient (process-global) recorder.

Sweeps fan simulations out across processes; requiring every call site to
thread a recorder through ``run_grid`` → ``ParallelRunner`` → worker →
``Simulator`` would make observability an API-breaking change.  Instead
each process owns one *ambient* recorder, armed once at import:

* ``REPRO_TRACE`` unset/falsey → the shared :data:`~repro.obs.recorder.NULL_RECORDER`
  (zero state, zero cost);
* ``REPRO_TRACE`` truthy → a fresh :class:`~repro.obs.recorder.TraceRecorder`.

Worker processes inherit the environment, so arming the parent arms the
whole pool; :func:`repro.perf.parallel._run_chunk` ships each worker's
metrics delta back for merging (see :mod:`repro.obs.aggregate`).

Tests use :func:`set_recorder` / :func:`reset_recorder` for isolation.
"""

from __future__ import annotations

from .recorder import NULL_RECORDER, Recorder, TraceRecorder, trace_enabled

__all__ = ["get_recorder", "reset_recorder", "set_recorder"]


def _from_env() -> Recorder:
    return TraceRecorder() if trace_enabled() else NULL_RECORDER


# Armed once at import (workers inherit the environment, so arming the
# parent before the pool spawns arms every worker identically).  Eager
# initialisation keeps :func:`get_recorder` a *pure read*: pool-submitted
# work functions call it on every ``Simulator`` construction, and a lazy
# global write there would be exactly the cross-process divergence RL008
# exists to flag.
_ambient: Recorder = _from_env()


def get_recorder() -> Recorder:
    """This process's ambient recorder (armed from ``REPRO_TRACE`` at import)."""
    return _ambient


def set_recorder(recorder: Recorder) -> Recorder:
    """Install an explicit ambient recorder; returns the previous one."""
    global _ambient
    previous = _ambient
    _ambient = recorder
    return previous


def reset_recorder() -> None:
    """Re-arm the ambient recorder from the environment."""
    global _ambient
    _ambient = _from_env()
