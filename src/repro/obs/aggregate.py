"""Rollups and comparisons: trace summaries, merges, and regression diffs.

Three consumers share this module:

* ``repro obs summarize`` — :func:`summarize_trace` rolls a trace up
  into per-span wall-clock totals, counter values, decision-rule counts,
  and record-kind counts;
* ``ParallelRunner`` — :func:`merge_metric_dicts` folds worker metric
  snapshots into one registry (submission order ⇒ deterministic);
* ``repro obs diff`` — :func:`diff_summaries` (two trace summaries) and
  :func:`diff_bench` (two ``BENCH_perf.json`` payloads) compute relative
  regressions against a threshold, returning structured
  :class:`DiffEntry` rows the CLI turns into an exit code for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Union

from .jsonl import LoadedTrace
from .live import TenantTelemetry
from .metrics import MetricsRegistry
from .recorder import TraceRecorder
from .records import KIND_DECISION, KIND_SPAN_END

__all__ = [
    "DiffEntry",
    "TraceSummary",
    "diff_bench",
    "diff_summaries",
    "merge_metric_dicts",
    "render_diff",
    "render_summary",
    "summarize_trace",
]


def merge_metric_dicts(
    snapshots: Iterable[Mapping[str, Any] | None],
    into: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Fold worker metric snapshots (``MetricsRegistry.to_dict`` forms,
    ``None`` entries skipped) into one registry, in iteration order."""
    registry = into if into is not None else MetricsRegistry()
    for snap in snapshots:
        if snap:
            registry.merge(snap)
    return registry


@dataclass
class TraceSummary:
    """Aggregated view of one trace: what ``repro obs summarize`` prints."""

    meta: dict[str, Any] = field(default_factory=dict)
    record_count: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)
    #: span name -> {"count", "total_s", "mean_s", "max_s"}
    spans: dict[str, dict[str, float]] = field(default_factory=dict)
    #: decision rule -> count
    decisions: dict[str, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: histogram name -> {"count", "mean", "min", "max"}
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    #: tenant name -> :meth:`~repro.obs.live.TenantTelemetry.snapshot`
    #: (only for traces whose records carry a ``tenant`` attr — i.e.
    #: serve-daemon traces, including the merged multi-tenant one).
    tenants: dict[str, dict[str, Any]] = field(default_factory=dict)


def summarize_trace(trace: Union[TraceRecorder, LoadedTrace]) -> TraceSummary:
    """Roll a trace up into a :class:`TraceSummary`.

    Records tagged with a ``tenant`` attr (every serve-session trace,
    per-tenant and merged alike) are additionally replayed through one
    :class:`~repro.obs.live.TenantTelemetry` per tenant, so a
    multi-tenant trace summarizes to per-tenant span / queue depth /
    decision mix / ratio instead of one blended rollup.
    """
    summary = TraceSummary(meta=dict(getattr(trace, "meta", {}) or {}))
    summary.record_count = len(trace.records)
    telemetries: dict[str, TenantTelemetry] = {}
    for record in trace.records:
        tenant = record.attrs.get("tenant")
        if tenant is not None:
            telemetry = telemetries.get(tenant)
            if telemetry is None:
                telemetry = telemetries[tenant] = TenantTelemetry(str(tenant))
            telemetry.observe(record)
        summary.kind_counts[record.kind] = summary.kind_counts.get(record.kind, 0) + 1
        if record.kind == KIND_DECISION:
            summary.decisions[record.name] = summary.decisions.get(record.name, 0) + 1
        elif record.kind == KIND_SPAN_END:
            wall = float(record.attrs.get("wall_s", 0.0))
            agg = summary.spans.setdefault(
                record.name,
                {"count": 0.0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0},
            )
            agg["count"] += 1
            agg["total_s"] += wall
            agg["max_s"] = max(agg["max_s"], wall)
    for agg in summary.spans.values():
        if agg["count"]:
            agg["mean_s"] = agg["total_s"] / agg["count"]
    metrics = trace.metrics
    summary.counters = dict(sorted(metrics.counters.items()))
    summary.gauges = dict(sorted(metrics.gauges.items()))
    for name, hist in sorted(metrics.histograms.items()):
        summary.histograms[name] = {
            "count": float(hist.count),
            "mean": hist.mean,
            "min": hist.vmin if hist.count else 0.0,
            "max": hist.vmax if hist.count else 0.0,
        }
    summary.tenants = {
        name: telemetries[name].snapshot() for name in sorted(telemetries)
    }
    return summary


def render_summary(summary: TraceSummary) -> str:
    """Fixed-width text rendering of a :class:`TraceSummary`."""
    lines: list[str] = []
    if summary.meta:
        pairs = ", ".join(
            f"{k}={v}" for k, v in sorted(summary.meta.items()) if k != "version"
        )
        lines.append(f"trace     : {pairs}")
    lines.append(f"records   : {summary.record_count}")
    if summary.kind_counts:
        kinds = "  ".join(
            f"{k}={v}" for k, v in sorted(summary.kind_counts.items())
        )
        lines.append(f"kinds     : {kinds}")
    if summary.decisions:
        lines.append("decisions :")
        for rule, count in sorted(summary.decisions.items()):
            lines.append(f"  {rule:<22} {count:>8}")
    if summary.tenants:
        lines.append("tenants   :")
        lines.append(
            f"  {'name':<16} {'done':>6} {'pend':>5} {'span':>10} "
            f"{'opt_lb':>10} {'ratio':>7}  top rule"
        )
        for name, snap in summary.tenants.items():
            jobs = snap["jobs"]
            ratio = snap["ratio"]
            mix = snap["decisions"]
            top_rule = (
                max(mix.items(), key=lambda kv: (kv[1], kv[0]))[0]
                if mix
                else "-"
            )
            rendered = f"{ratio:.3f}" if ratio is not None else "-"
            lines.append(
                f"  {name:<16} {jobs['completed']:>6} {jobs['pending']:>5} "
                f"{snap['span']:>10.4g} {snap['opt_lb']['value']:>10.4g} "
                f"{rendered:>7}  {top_rule}"
            )
    if summary.spans:
        lines.append("spans     :")
        lines.append(f"  {'name':<28} {'count':>7} {'total_s':>10} {'mean_s':>10}")
        for name, agg in sorted(summary.spans.items()):
            lines.append(
                f"  {name:<28} {int(agg['count']):>7} "
                f"{agg['total_s']:>10.4f} {agg['mean_s']:>10.6f}"
            )
    if summary.counters:
        lines.append("counters  :")
        for name, value in summary.counters.items():
            rendered = f"{int(value)}" if float(value).is_integer() else f"{value:g}"
            lines.append(f"  {name:<36} {rendered:>12}")
    if summary.gauges:
        lines.append("gauges    :")
        for name, value in summary.gauges.items():
            lines.append(f"  {name:<36} {value:>12g}")
    if summary.histograms:
        lines.append("histograms:")
        for name, stats in summary.histograms.items():
            lines.append(
                f"  {name:<36} n={int(stats['count'])} mean={stats['mean']:.6g} "
                f"min={stats['min']:.6g} max={stats['max']:.6g}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------- diff
@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity between two traces/benches."""

    kind: str  # "counter" | "span" | "bench"
    name: str
    before: float
    after: float
    #: Relative change, sign-normalised so positive = WORSE (regression).
    regression: float

    @property
    def regressed(self) -> bool:
        return self.regression > 0


def _relative_regression(before: float, after: float, *, higher_is_better: bool) -> float:
    """Signed relative change where positive means "got worse"."""
    if before == 0:
        return 0.0 if after == 0 else float("inf")
    change = (after - before) / abs(before)
    return -change if higher_is_better else change


def diff_summaries(
    before: TraceSummary, after: TraceSummary, *, threshold: float
) -> list[DiffEntry]:
    """Compare two trace summaries; entries exceeding ``threshold``.

    Counters are compared as *work proxies* (more of a counter than the
    baseline by > threshold is flagged — e.g. engine event counts
    creeping up), span totals as *time* (slower by > threshold flagged).
    Quantities missing on either side are skipped: a diff is a regression
    gate, not a schema check.
    """
    out: list[DiffEntry] = []
    for name, b in sorted(before.counters.items()):
        a = after.counters.get(name)
        if a is None:
            continue
        reg = _relative_regression(b, a, higher_is_better=False)
        if abs(reg) > threshold:
            out.append(DiffEntry("counter", name, b, a, reg))
    for name, bagg in sorted(before.spans.items()):
        aagg = after.spans.get(name)
        if aagg is None:
            continue
        reg = _relative_regression(
            bagg["total_s"], aagg["total_s"], higher_is_better=False
        )
        if abs(reg) > threshold:
            out.append(DiffEntry("span", name, bagg["total_s"], aagg["total_s"], reg))
    return out


def diff_bench(
    before: Mapping[str, Any], after: Mapping[str, Any], *, threshold: float
) -> list[DiffEntry]:
    """Compare two ``BENCH_perf.json`` payloads on ``events_per_s``.

    Higher events/s is better; a relative drop beyond ``threshold`` on
    any shared case is a regression entry.  Improvements beyond the
    threshold are also returned (``regression < 0``) so the CLI can
    report wins, but only positive entries gate the exit code.
    """
    before_cases = {
        str(row["case"]): float(row["events_per_s"])
        for row in before.get("results", [])
    }
    after_cases = {
        str(row["case"]): float(row["events_per_s"])
        for row in after.get("results", [])
    }
    out: list[DiffEntry] = []
    for case, b in sorted(before_cases.items()):
        a = after_cases.get(case)
        if a is None:
            continue
        reg = _relative_regression(b, a, higher_is_better=True)
        if abs(reg) > threshold:
            out.append(DiffEntry("bench", case, b, a, reg))
    return out


def render_diff(entries: list[DiffEntry], *, threshold: float) -> str:
    """Text rendering of diff entries (regressions first)."""
    if not entries:
        return f"no differences beyond threshold {threshold:.1%}"
    lines = [f"{'kind':<8} {'name':<34} {'before':>14} {'after':>14} {'change':>9}"]
    for e in sorted(entries, key=lambda e: -e.regression):
        tag = "REGRESSION" if e.regressed else "improved"
        lines.append(
            f"{e.kind:<8} {e.name:<34} {e.before:>14,.1f} {e.after:>14,.1f} "
            f"{e.regression:>+8.1%}  {tag}"
        )
    return "\n".join(lines)
