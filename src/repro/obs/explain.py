"""Decision-provenance narratives: *why did each job start when it did?*

``repro obs explain run.jsonl`` reconstructs, from a JSONL trace alone:

1. the executed instance (``engine.release`` records carry arrival and
   starting deadline; lengths resolve from ``engine.completion``);
2. every start (``engine.start`` records);
3. the paper rule behind each start (``decision`` records emitted by the
   instrumented schedulers through ``self.obs.decision(...)``);

and then **cross-checks the story against** :func:`repro.core.audit`:
the schedule rebuilt from the trace must be feasible, and every start
the narrative explains must be a start the auditor accepts.  A trace
that tells a tale the auditor rejects is a bug — in the scheduler, the
instrumentation, or the engine — and the explanation says so loudly
instead of narrating fiction.

The same replay reconciles the **live telemetry plane**: every record
is fed through a :class:`~repro.obs.live.TenantTelemetry` (grouped by
the ``tenant`` attr serve sessions tag records with; untagged traces
form one anonymous group), proving at runtime that the incremental OPT
lower bound was monotone nondecreasing at every step and, once the
instance is fully reconstructed, that it never exceeded the certified
offline reference (:func:`repro.offline.lower_bounds.span_lower_bound`
through :class:`repro.perf.cache.ReferenceCache`).  ``--strict`` fails
on either violation: a live dashboard that over-claimed the lower bound
(and hence under-claimed the competitive ratio) is as much a bug as an
infeasible schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

from ..core.audit import audit
from ..core.job import Instance, Job
from .jsonl import LoadedTrace
from .live import TenantTelemetry
from .recorder import TraceRecorder
from .records import (
    KIND_DECISION,
    KIND_INSTANT,
    ObsRecord,
    decision_vocabulary,
    describe_rule,
)

__all__ = ["Explanation", "JobStory", "explain_trace"]

#: Float slack for the live-LB ≤ certified-reference comparison.
_LB_TOLERANCE = 1e-9


@dataclass
class JobStory:
    """One job's reconstructed history and its start-decision provenance."""

    job_id: int
    #: the serve-session tenant the record stream was tagged with
    #: (``None`` for plain single-run traces).
    tenant: str | None = None
    arrival: float | None = None
    deadline: float | None = None
    start: float | None = None
    completion: float | None = None
    length: float | None = None
    #: decision records attributed to this job, in emission order.
    decisions: list[ObsRecord] = field(default_factory=list)

    @property
    def start_rule(self) -> str | None:
        """The rule that *started* the job: the last routing-free decision.

        CDB emits a ``class-boundary`` routing decision at arrival and
        the category's Batch+ later emits the actual start rule; the
        start rule is therefore the last non-routing decision at or
        before the start.
        """
        rules = [
            d.name
            for d in self.decisions
            if d.name != "class-boundary"
            and (self.start is None or float(d.attrs.get("t", -1.0)) <= self.start)
        ]
        return rules[-1] if rules else None

    @property
    def routing(self) -> ObsRecord | None:
        """The CDB ``class-boundary`` routing decision, if any."""
        for d in self.decisions:
            if d.name == "class-boundary":
                return d
        return None

    def narrative(self) -> str:
        """One or two lines: when the job started and which rule fired."""
        bits = [
            f"{self.tenant}/J{self.job_id}" if self.tenant else f"J{self.job_id}"
        ]
        if self.arrival is not None and self.deadline is not None:
            bits.append(f"window [{self.arrival:g}, d={self.deadline:g}]")
        if self.length is not None:
            bits.append(f"p={self.length:g}")
        head = "  ".join(bits)
        if self.start is None:
            return f"{head}\n    never started (trace truncated or run aborted)"
        rule = self.start_rule
        lines = [f"{head}\n    started at t={self.start:g}"]
        if rule is None:
            lines.append(
                "    rule: UNATTRIBUTED — no decision record; the scheduler "
                "did not report provenance for this start"
            )
        else:
            decision = next(
                d for d in reversed(self.decisions) if d.name == rule
            )
            detail = ", ".join(
                f"{k}={v}"
                for k, v in sorted(decision.attrs.items())
                if k not in ("job", "t", "scheduler")
            )
            scheduler = decision.attrs.get("scheduler", "?")
            lines.append(
                f"    rule: {rule} [{scheduler}] — {describe_rule(rule)}"
                + (f" ({detail})" if detail else "")
            )
        routing = self.routing
        if routing is not None:
            detail = ", ".join(
                f"{k}={v}"
                for k, v in sorted(routing.attrs.items())
                if k not in ("job", "t", "scheduler")
            )
            lines.append(f"    routed: class-boundary ({detail})")
        return "\n".join(lines)


@dataclass
class Explanation:
    """The full narrative plus the audit cross-check verdict."""

    stories: list[JobStory] = field(default_factory=list)
    attributed: int = 0
    unattributed: int = 0
    audit_feasible: bool | None = None
    audit_notes: list[str] = field(default_factory=list)
    #: decision names outside :data:`~repro.obs.records.DECISION_RULES`,
    #: with occurrence counts — the runtime face of RL015.
    unknown_rules: dict[str, int] = field(default_factory=dict)
    #: per-tenant live-LB reconciliation rows (``""`` = untagged trace):
    #: ``{span, live_lb, ratio, monotone, reference_lb, consistent}``.
    telemetry: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def fully_attributed(self) -> bool:
        """Every reconstructed start carries a paper rule."""
        return self.unattributed == 0

    @property
    def lb_monotone(self) -> bool | None:
        """The replayed live LB never decreased (``None``: nothing replayed)."""
        if not self.telemetry:
            return None
        return all(row["monotone"] for row in self.telemetry.values())

    @property
    def lb_consistent(self) -> bool | None:
        """Live LB ≤ certified offline reference for every tenant whose
        instance reconstructed completely (``None``: no reference)."""
        rows = [
            row for row in self.telemetry.values()
            if row["reference_lb"] is not None
        ]
        if not rows:
            return None
        return all(row["consistent"] for row in rows)

    @property
    def vocabulary_clean(self) -> bool:
        """Every decision record names a rule in the closed vocabulary."""
        return not self.unknown_rules

    def render(self, limit: int = 200) -> str:
        lines = [
            f"jobs      : {len(self.stories)} "
            f"({self.attributed} attributed, {self.unattributed} unattributed)"
        ]
        if self.audit_feasible is not None:
            verdict = "feasible" if self.audit_feasible else "INFEASIBLE"
            lines.append(f"audit     : {verdict} (schedule rebuilt from trace)")
        for note in self.audit_notes:
            lines.append(f"audit     : {note}")
        for name, count in sorted(self.unknown_rules.items()):
            lines.append(
                f"vocabulary: UNKNOWN rule {name!r} emitted {count}x — not in "
                "DECISION_RULES (RL015 violated at runtime)"
            )
        for name, row in sorted(self.telemetry.items()):
            label = name or "(trace)"
            ratio = row["ratio"]
            bits = [
                f"span={row['span']:g}",
                f"live LB={row['live_lb']:g}",
                f"ratio={ratio:.3f}" if ratio is not None else "ratio=-",
                "monotone" if row["monotone"] else "NON-MONOTONE",
            ]
            reference = row["reference_lb"]
            if reference is not None:
                verdict = (
                    "≤ certified reference"
                    if row["consistent"]
                    else "EXCEEDS certified reference"
                )
                bits.append(f"{verdict} {reference:g}")
            lines.append(f"telemetry : {label}: " + ", ".join(bits))
        lines.append("")
        for story in self.stories[:limit]:
            lines.append(story.narrative())
        if len(self.stories) > limit:
            lines.append(f"… {len(self.stories) - limit} more jobs")
        return "\n".join(lines)


def explain_trace(trace: Union[TraceRecorder, LoadedTrace]) -> Explanation:
    """Build the decision-provenance narrative for one trace."""
    stories: dict[tuple[str, int], JobStory] = {}

    def story(tenant: str, job_id: int) -> JobStory:
        st = stories.get((tenant, job_id))
        if st is None:
            st = stories[(tenant, job_id)] = JobStory(
                job_id, tenant=tenant or None
            )
        return st

    vocabulary = decision_vocabulary()
    unknown: dict[str, int] = {}
    # Live-telemetry replay: one estimator per tenant tag, with the
    # monotonicity of the incremental OPT LB checked at every record.
    replays: dict[str, TenantTelemetry] = {}
    monotone: dict[str, bool] = {}

    for record in trace.records:
        tenant = str(record.attrs.get("tenant") or "")
        if record.kind in (KIND_DECISION, KIND_INSTANT):
            telemetry = replays.get(tenant)
            if telemetry is None:
                telemetry = replays[tenant] = TenantTelemetry(tenant or "(trace)")
                monotone[tenant] = True
            before = telemetry.lb.value
            telemetry.observe(record)
            if telemetry.lb.value < before:
                monotone[tenant] = False
        if record.kind == KIND_DECISION:
            if record.name not in vocabulary:
                unknown[record.name] = unknown.get(record.name, 0) + 1
            job = record.attrs.get("job")
            if job is not None:
                story(tenant, int(job)).decisions.append(record)
            continue
        if record.kind != KIND_INSTANT:
            continue
        job = record.attrs.get("job")
        if job is None:
            continue
        st = story(tenant, int(job))
        t = float(record.attrs.get("t", record.ts))
        if record.name == "engine.release":
            st.arrival = float(record.attrs.get("arrival", t))
            deadline = record.attrs.get("deadline")
            st.deadline = float(deadline) if deadline is not None else None
            length = record.attrs.get("length")
            if length is not None:
                st.length = float(length)
        elif record.name == "engine.start":
            st.start = t
        elif record.name == "engine.completion":
            st.completion = t
            length = record.attrs.get("length")
            if length is not None:
                st.length = float(length)
            elif st.start is not None:
                st.length = t - st.start

    explanation = Explanation(
        stories=sorted(
            stories.values(), key=lambda s: (s.tenant or "", s.job_id)
        ),
        unknown_rules=unknown,
    )
    for st in explanation.stories:
        if st.start is None:
            continue
        if st.start_rule is None:
            explanation.unattributed += 1
        else:
            explanation.attributed += 1

    # ---- audit cross-check + live-LB reconciliation -----------------------
    # Per tenant group: merged multi-tenant traces carry independent job
    # id spaces and independent engine clocks, so each group rebuilds
    # (and audits, and reconciles) its own instance.
    groups: dict[str, list[JobStory]] = {}
    for st in explanation.stories:
        groups.setdefault(st.tenant or "", []).append(st)

    feasible: bool | None = None
    audited_any = False
    incomplete_any = False
    reference_fn = None
    for tenant, group in sorted(groups.items()):
        jobs: list[Job] = []
        starts: dict[int, float] = {}
        complete = True
        for st in group:
            if st.arrival is None or st.deadline is None or st.length is None:
                complete = False
                incomplete_any = True
                continue
            jobs.append(
                Job(
                    id=st.job_id,
                    arrival=st.arrival,
                    deadline=st.deadline,
                    length=st.length,
                )
            )
            if st.start is not None:
                starts[st.job_id] = st.start
        if jobs:
            audited_any = True
            name = "rebuilt-from-trace" + (f":{tenant}" if tenant else "")
            report = audit(Instance(jobs, name=name), starts)
            feasible = (
                report.feasible
                if feasible is None
                else (feasible and report.feasible)
            )
            prefix = f"{tenant}: " if tenant else ""
            for finding in report.violations:
                explanation.audit_notes.append(
                    f"{prefix}{finding.code}: {finding.message}"
                )
        telemetry = replays.get(tenant)
        if telemetry is None:
            continue
        live_lb = telemetry.lb.value
        reference: float | None = None
        consistent: bool | None = None
        if jobs and complete:
            if reference_fn is None:
                from ..offline import span_lower_bound
                from ..perf import cached_reference

                reference_fn = cached_reference(span_lower_bound)
            reference = float(
                reference_fn(
                    Instance(
                        jobs,
                        name="telemetry-reconcile"
                        + (f":{tenant}" if tenant else ""),
                    )
                )
            )
            consistent = live_lb <= reference + _LB_TOLERANCE
        explanation.telemetry[tenant] = {
            "span": telemetry.span,
            "live_lb": live_lb,
            "ratio": telemetry.ratio,
            "monotone": monotone[tenant],
            "reference_lb": reference,
            "consistent": consistent,
        }
    explanation.audit_feasible = feasible
    if audited_any and incomplete_any:
        explanation.audit_notes.append(
            "partial reconstruction: some jobs lacked release/completion "
            "records and were excluded from the audit"
        )
    if not audited_any and explanation.stories:
        explanation.audit_notes.append(
            "no auditable jobs reconstructed (trace lacks engine.release records)"
        )
    return explanation
