"""Decision-provenance narratives: *why did each job start when it did?*

``repro obs explain run.jsonl`` reconstructs, from a JSONL trace alone:

1. the executed instance (``engine.release`` records carry arrival and
   starting deadline; lengths resolve from ``engine.completion``);
2. every start (``engine.start`` records);
3. the paper rule behind each start (``decision`` records emitted by the
   instrumented schedulers through ``self.obs.decision(...)``);

and then **cross-checks the story against** :func:`repro.core.audit`:
the schedule rebuilt from the trace must be feasible, and every start
the narrative explains must be a start the auditor accepts.  A trace
that tells a tale the auditor rejects is a bug — in the scheduler, the
instrumentation, or the engine — and the explanation says so loudly
instead of narrating fiction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..core.audit import audit
from ..core.job import Instance, Job
from .jsonl import LoadedTrace
from .recorder import TraceRecorder
from .records import (
    KIND_DECISION,
    KIND_INSTANT,
    ObsRecord,
    decision_vocabulary,
    describe_rule,
)

__all__ = ["Explanation", "JobStory", "explain_trace"]


@dataclass
class JobStory:
    """One job's reconstructed history and its start-decision provenance."""

    job_id: int
    arrival: float | None = None
    deadline: float | None = None
    start: float | None = None
    completion: float | None = None
    length: float | None = None
    #: decision records attributed to this job, in emission order.
    decisions: list[ObsRecord] = field(default_factory=list)

    @property
    def start_rule(self) -> str | None:
        """The rule that *started* the job: the last routing-free decision.

        CDB emits a ``class-boundary`` routing decision at arrival and
        the category's Batch+ later emits the actual start rule; the
        start rule is therefore the last non-routing decision at or
        before the start.
        """
        rules = [
            d.name
            for d in self.decisions
            if d.name != "class-boundary"
            and (self.start is None or float(d.attrs.get("t", -1.0)) <= self.start)
        ]
        return rules[-1] if rules else None

    @property
    def routing(self) -> ObsRecord | None:
        """The CDB ``class-boundary`` routing decision, if any."""
        for d in self.decisions:
            if d.name == "class-boundary":
                return d
        return None

    def narrative(self) -> str:
        """One or two lines: when the job started and which rule fired."""
        bits = [f"J{self.job_id}"]
        if self.arrival is not None and self.deadline is not None:
            bits.append(f"window [{self.arrival:g}, d={self.deadline:g}]")
        if self.length is not None:
            bits.append(f"p={self.length:g}")
        head = "  ".join(bits)
        if self.start is None:
            return f"{head}\n    never started (trace truncated or run aborted)"
        rule = self.start_rule
        lines = [f"{head}\n    started at t={self.start:g}"]
        if rule is None:
            lines.append(
                "    rule: UNATTRIBUTED — no decision record; the scheduler "
                "did not report provenance for this start"
            )
        else:
            decision = next(
                d for d in reversed(self.decisions) if d.name == rule
            )
            detail = ", ".join(
                f"{k}={v}"
                for k, v in sorted(decision.attrs.items())
                if k not in ("job", "t", "scheduler")
            )
            scheduler = decision.attrs.get("scheduler", "?")
            lines.append(
                f"    rule: {rule} [{scheduler}] — {describe_rule(rule)}"
                + (f" ({detail})" if detail else "")
            )
        routing = self.routing
        if routing is not None:
            detail = ", ".join(
                f"{k}={v}"
                for k, v in sorted(routing.attrs.items())
                if k not in ("job", "t", "scheduler")
            )
            lines.append(f"    routed: class-boundary ({detail})")
        return "\n".join(lines)


@dataclass
class Explanation:
    """The full narrative plus the audit cross-check verdict."""

    stories: list[JobStory] = field(default_factory=list)
    attributed: int = 0
    unattributed: int = 0
    audit_feasible: bool | None = None
    audit_notes: list[str] = field(default_factory=list)
    #: decision names outside :data:`~repro.obs.records.DECISION_RULES`,
    #: with occurrence counts — the runtime face of RL015.
    unknown_rules: dict[str, int] = field(default_factory=dict)

    @property
    def fully_attributed(self) -> bool:
        """Every reconstructed start carries a paper rule."""
        return self.unattributed == 0

    @property
    def vocabulary_clean(self) -> bool:
        """Every decision record names a rule in the closed vocabulary."""
        return not self.unknown_rules

    def render(self, limit: int = 200) -> str:
        lines = [
            f"jobs      : {len(self.stories)} "
            f"({self.attributed} attributed, {self.unattributed} unattributed)"
        ]
        if self.audit_feasible is not None:
            verdict = "feasible" if self.audit_feasible else "INFEASIBLE"
            lines.append(f"audit     : {verdict} (schedule rebuilt from trace)")
        for note in self.audit_notes:
            lines.append(f"audit     : {note}")
        for name, count in sorted(self.unknown_rules.items()):
            lines.append(
                f"vocabulary: UNKNOWN rule {name!r} emitted {count}x — not in "
                "DECISION_RULES (RL015 violated at runtime)"
            )
        lines.append("")
        for story in self.stories[:limit]:
            lines.append(story.narrative())
        if len(self.stories) > limit:
            lines.append(f"… {len(self.stories) - limit} more jobs")
        return "\n".join(lines)


def explain_trace(trace: Union[TraceRecorder, LoadedTrace]) -> Explanation:
    """Build the decision-provenance narrative for one trace."""
    stories: dict[int, JobStory] = {}

    def story(job_id: int) -> JobStory:
        st = stories.get(job_id)
        if st is None:
            st = stories[job_id] = JobStory(job_id)
        return st

    vocabulary = decision_vocabulary()
    unknown: dict[str, int] = {}

    for record in trace.records:
        if record.kind == KIND_DECISION:
            if record.name not in vocabulary:
                unknown[record.name] = unknown.get(record.name, 0) + 1
            job = record.attrs.get("job")
            if job is not None:
                story(int(job)).decisions.append(record)
            continue
        if record.kind != KIND_INSTANT:
            continue
        job = record.attrs.get("job")
        if job is None:
            continue
        st = story(int(job))
        t = float(record.attrs.get("t", record.ts))
        if record.name == "engine.release":
            st.arrival = float(record.attrs.get("arrival", t))
            deadline = record.attrs.get("deadline")
            st.deadline = float(deadline) if deadline is not None else None
            length = record.attrs.get("length")
            if length is not None:
                st.length = float(length)
        elif record.name == "engine.start":
            st.start = t
        elif record.name == "engine.completion":
            st.completion = t
            length = record.attrs.get("length")
            if length is not None:
                st.length = float(length)
            elif st.start is not None:
                st.length = t - st.start

    explanation = Explanation(
        stories=sorted(stories.values(), key=lambda s: s.job_id),
        unknown_rules=unknown,
    )
    for st in explanation.stories:
        if st.start is None:
            continue
        if st.start_rule is None:
            explanation.unattributed += 1
        else:
            explanation.attributed += 1

    # ---- audit cross-check ------------------------------------------------
    jobs: list[Job] = []
    starts: dict[int, float] = {}
    complete = True
    for st in explanation.stories:
        if st.arrival is None or st.deadline is None or st.length is None:
            complete = False
            continue
        jobs.append(
            Job(id=st.job_id, arrival=st.arrival, deadline=st.deadline, length=st.length)
        )
        if st.start is not None:
            starts[st.job_id] = st.start
    if jobs:
        report = audit(Instance(jobs, name="rebuilt-from-trace"), starts)
        explanation.audit_feasible = report.feasible
        for finding in report.violations:
            explanation.audit_notes.append(f"{finding.code}: {finding.message}")
        if not complete:
            explanation.audit_notes.append(
                "partial reconstruction: some jobs lacked release/completion "
                "records and were excluded from the audit"
            )
    elif explanation.stories:
        explanation.audit_notes.append(
            "no auditable jobs reconstructed (trace lacks engine.release records)"
        )
    return explanation
