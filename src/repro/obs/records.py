"""Structured observability records and the decision-rule vocabulary.

Everything the :mod:`repro.obs` layer emits is an :class:`ObsRecord`: a
flat, JSON-serialisable ``(ts, kind, name, attrs)`` quadruple.  ``ts`` is
*wall-clock* time relative to the recorder's epoch (what profiles and the
Chrome exporter need); simulation time, when meaningful, travels in
``attrs["t"]`` (what the decision-provenance narrative needs).  Keeping
the two clocks separate is deliberate: a span is a wall-clock concept, a
scheduler decision is a simulation-time concept, and conflating them is
how trace tooling becomes unusable.

Decision provenance
-------------------
Every start decision an instrumented scheduler makes is recorded with one
of the :data:`DECISION_RULES` — the paper's own rule vocabulary:

``deadline-flag``
    A pending job reached its starting deadline ``d(J)`` and was
    designated the iteration's flag job (Batch / Batch+ / CDB category /
    Profit, §3.2 / §4.2 / §4.3).
``batch-start``
    Started because the current flag's batch fired at ``d(J_f)``.
``open-phase``
    Batch+ open phase: arrived while the flag was running and started
    immediately (Theorem 3.5's μ-threshold argument — the job starts
    before ``d(J_f) + p(J_f)``, bounding the iteration span by
    ``(μ+1)·p(J_f)``).
``class-boundary``
    CDB routed the job into duration category ``i`` with
    ``b·α^(i-1) < p(J) <= b·α^i`` (Theorem 4.4).
``profit-gain``
    Profit's gain test passed: at a flag start ``p(J) <= k·p(J_f)``, or
    at arrival ``p(J) <= k·(d(J_f)+p(J_f)-a(J))`` (Theorem 4.11).
``epoch``
    EpochBatch's fixed-period batch point fired (practitioner baseline;
    no paper guarantee).
``deadline-backstop``
    EpochBatch's per-job backstop: the starting deadline arrived strictly
    between epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "DECISION_RULES",
    "KIND_COUNTER",
    "KIND_DECISION",
    "KIND_GAUGE",
    "KIND_INSTANT",
    "KIND_SPAN_BEGIN",
    "KIND_SPAN_END",
    "ObsRecord",
    "decision_vocabulary",
    "describe_rule",
]

# Record kinds (the JSONL ``kind`` field).
KIND_INSTANT = "instant"
KIND_DECISION = "decision"
KIND_SPAN_BEGIN = "span_begin"
KIND_SPAN_END = "span_end"
KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"

#: The paper-rule vocabulary for scheduler start decisions, with the
#: one-line narrative used by ``repro obs explain``.
DECISION_RULES: dict[str, str] = {
    "deadline-flag": (
        "starting deadline d(J) reached while pending — designated flag job"
    ),
    "batch-start": "started in the flag job's batch at d(J_f)",
    "open-phase": (
        "arrived during the flag's run — Batch+ open phase starts it at once"
    ),
    "class-boundary": (
        "classified into CDB duration category i with b*alpha^(i-1) < p <= b*alpha^i"
    ),
    "profit-gain": (
        "Profit gain test passed: >= 1/k of the job's run overlaps a flag's run"
    ),
    "epoch": "EpochBatch fixed-period batch point fired",
    "deadline-backstop": (
        "starting deadline arrived strictly between epochs (EpochBatch backstop)"
    ),
}


def decision_vocabulary() -> frozenset[str]:
    """The closed set of legal decision-rule names.

    This is the runtime face of the same contract the static analyzer
    proves as RL015 (:mod:`repro.lint.invariants.vocabulary`): every
    ``obs.decision(reason, ...)`` a scheduler emits must name one of
    these rules, and every rule must be reachable from some scheduler.
    ``repro obs explain --strict`` rejects traces that violate it.
    """
    return frozenset(DECISION_RULES)


def describe_rule(rule: str) -> str:
    """The one-line narrative for a decision rule (or a shrug)."""
    return DECISION_RULES.get(rule, "(rule not in the paper vocabulary)")


@dataclass(frozen=True, slots=True)
class ObsRecord:
    """One structured observability record.

    Attributes
    ----------
    ts:
        Wall-clock seconds since the recorder's epoch.
    kind:
        One of the ``KIND_*`` constants.
    name:
        The record's name: an event name (``engine.start``), a span name
        (``engine.run``), or — for decisions — the rule that fired.
    attrs:
        Flat JSON-serialisable attributes.  Convention: ``t`` is
        simulation time, ``job`` a job id, ``scheduler`` the registry
        name of the deciding scheduler.
    """

    ts: float
    kind: str
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"ts": self.ts, "kind": self.kind, "name": self.name, "attrs": self.attrs}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ObsRecord":
        return cls(
            ts=float(d["ts"]),
            kind=str(d["kind"]),
            name=str(d["name"]),
            attrs=dict(d.get("attrs", {})),
        )
