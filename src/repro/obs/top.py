"""``repro obs top`` — the refreshing terminal dashboard for a daemon.

Connects to a running serve daemon's read-only telemetry listener
(``repro serve --telemetry HOST:PORT``), fetches the JSON snapshot, and
renders one table row per tenant: clock, queue depth, run counts,
observed span, the incremental OPT lower bound, the live
competitive-ratio estimate, and the dominant decision rules.

``repro obs top --connect HOST:PORT`` refreshes in place until
interrupted; ``--once`` prints a single frame, and ``--once --format
json`` dumps the raw snapshot for scripts and CI (the serve-smoke job
reconciles that scraped ratio against ``repro obs explain``).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping

__all__ = ["fetch_snapshot", "render_top"]

#: ANSI: clear screen + home — the dashboard repaints in place.
CLEAR = "\x1b[2J\x1b[H"


def fetch_snapshot(connect: str, *, timeout: float = 5.0) -> dict[str, Any]:
    """Fetch one telemetry snapshot from ``host:port``.

    Raises :class:`OSError` (connection refused/reset/timeout) or
    :class:`ValueError` (bad address or non-JSON payload) — the CLI
    turns both into a clean exit instead of a traceback.
    """
    host, _, port = connect.rpartition(":")
    if not host or not port:
        raise ValueError(f"--connect takes HOST:PORT, got {connect!r}")
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        conn.request("GET", "/snapshot")
        response = conn.getresponse()
        body = response.read()
        if response.status != 200:
            raise ValueError(
                f"telemetry endpoint answered {response.status} "
                f"{response.reason}"
            )
    finally:
        conn.close()
    payload = json.loads(body)
    if not isinstance(payload, dict):
        raise ValueError("telemetry snapshot is not a JSON object")
    return payload


def _fmt_ratio(ratio: Any) -> str:
    return f"{ratio:.3f}" if isinstance(ratio, (int, float)) else "-"


def _top_rules(decisions: Mapping[str, int], limit: int = 2) -> str:
    """The dominant decision rules, e.g. ``batch-start:12 open-phase:3``."""
    ranked = sorted(decisions.items(), key=lambda kv: (-kv[1], kv[0]))
    return " ".join(f"{rule}:{count}" for rule, count in ranked[:limit]) or "-"


def render_top(snapshot: Mapping[str, Any]) -> str:
    """Render one dashboard frame from a telemetry snapshot."""
    tenants: Mapping[str, Any] = snapshot.get("tenants", {})
    daemon: Mapping[str, Any] = snapshot.get("daemon", {})
    lines: list[str] = []
    lines.append(
        "repro obs top — "
        f"{len(tenants)} tenant(s), "
        f"lines_in={daemon.get('lines_in', '-')}, "
        f"records_out={daemon.get('records_out', '-')}, "
        f"errors={daemon.get('errors', '-')}"
        + (", DRAINING" if daemon.get("draining") else "")
    )
    header = (
        f"{'tenant':<16} {'clock':>9} {'pend':>5} {'run':>4} {'done':>6} "
        f"{'span':>10} {'opt_lb':>10} {'ratio':>7}  rules"
    )
    lines.append(header)
    lines.append("-" * len(header))
    queued: Mapping[str, Any] = (
        daemon.get("queued", {}) if isinstance(daemon.get("queued"), Mapping)
        else {}
    )
    for name, snap in sorted(tenants.items()):
        jobs = snap["jobs"]
        pending = jobs["pending"] + int(queued.get(name, 0) or 0)
        lines.append(
            f"{name:<16} {snap['clock']:>9g} {pending:>5} "
            f"{jobs['running']:>4} {jobs['completed']:>6} "
            f"{snap['span']:>10.4g} {snap['opt_lb']['value']:>10.4g} "
            f"{_fmt_ratio(snap['ratio']):>7}  {_top_rules(snap['decisions'])}"
        )
    if not tenants:
        lines.append("(no tenants yet)")
    aggregate: Mapping[str, Any] = snapshot.get("aggregate", {})
    if aggregate:
        lines.append(
            f"total: released={aggregate.get('released', 0)} "
            f"started={aggregate.get('started', 0)} "
            f"completed={aggregate.get('completed', 0)} "
            f"span={aggregate.get('span', 0.0):g} "
            f"max_ratio={_fmt_ratio(aggregate.get('max_ratio'))}"
        )
    loopwatch: Mapping[str, Any] = snapshot.get("loopwatch", {})
    counters: Mapping[str, Any] = loopwatch.get("counters", {})
    if counters:
        lines.append(
            "loopwatch: "
            f"{counters.get('loopwatch.callbacks', 0):.0f} callback(s), "
            f"{counters.get('loopwatch.stalls', 0):.0f} stall(s), "
            f"{counters.get('loopwatch.orphans', 0):.0f} orphan(s)"
        )
    return "\n".join(lines)
