"""Observability layer: structured tracing, metrics, decision provenance.

``repro.obs`` is the system's flight recorder.  It answers the questions
print-debugging cannot: *why did the scheduler start J17 at t=42.5?*,
*where did the sweep spend its wall-clock?*, *did this PR make the
engine slower?* — without costing anything when switched off.

Components
----------
* :mod:`repro.obs.recorder` — the :class:`Recorder` protocol;
  :class:`NullRecorder` (default, zero overhead) and
  :class:`TraceRecorder` (in-memory records + metrics).  Armed by
  ``REPRO_TRACE=1`` or ``Simulator(recorder=...)``.
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  with merge semantics for cross-process aggregation.
* :mod:`repro.obs.records` — the :class:`ObsRecord` schema and the
  paper-rule vocabulary for scheduler start decisions.
* :mod:`repro.obs.jsonl` / :mod:`repro.obs.chrome` — sinks: JSONL trace
  files and Chrome ``trace_event`` JSON for Perfetto.
* :mod:`repro.obs.aggregate` — summaries, merges, and regression diffs.
* :mod:`repro.obs.explain` — decision-provenance narratives cross-checked
  against :func:`repro.core.audit`, plus the live-LB reconciliation.
* :mod:`repro.obs.live` — the live telemetry plane: per-tenant span,
  queue depth, decision mix, and the online competitive-ratio estimate
  the serving daemon exposes (``REPRO_TELEMETRY``).
* :mod:`repro.obs.top` — the ``repro obs top`` terminal dashboard over
  the daemon's telemetry listener.
* :mod:`repro.obs.cli` — ``python -m repro obs summarize|explain|diff|
  export|overhead|top``.

See ``docs/observability.md`` for the guided tour.
"""

from .records import (
    DECISION_RULES,
    ObsRecord,
    decision_vocabulary,
    describe_rule,
)
from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TRACE_DIR_ENV,
    TRACE_ENV,
    TraceRecorder,
    trace_dir,
    trace_enabled,
)
from .runtime import get_recorder, reset_recorder, set_recorder
from .jsonl import (
    JSONL_VERSION,
    LoadedTrace,
    dump_jsonl,
    read_jsonl,
    scan_jsonl,
    write_jsonl,
)
from .chrome import chrome_trace_events, export_chrome_trace
from .aggregate import (
    DiffEntry,
    TraceSummary,
    diff_bench,
    diff_summaries,
    merge_metric_dicts,
    render_diff,
    render_summary,
    summarize_trace,
)
from .explain import Explanation, JobStory, explain_trace
from .live import (
    IntervalUnion,
    LiveAggregator,
    OnlineOptLowerBound,
    TELEMETRY_ADDR_ENV,
    TELEMETRY_ENV,
    TenantTelemetry,
    render_prometheus,
    telemetry_addr,
    telemetry_enabled,
)

__all__ = [
    "DECISION_RULES",
    "DEFAULT_BUCKETS",
    "DiffEntry",
    "Explanation",
    "Histogram",
    "IntervalUnion",
    "JSONL_VERSION",
    "JobStory",
    "LiveAggregator",
    "LoadedTrace",
    "MetricsRegistry",
    "OnlineOptLowerBound",
    "TELEMETRY_ADDR_ENV",
    "TELEMETRY_ENV",
    "TenantTelemetry",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsRecord",
    "Recorder",
    "TRACE_DIR_ENV",
    "TRACE_ENV",
    "TraceRecorder",
    "TraceSummary",
    "chrome_trace_events",
    "decision_vocabulary",
    "describe_rule",
    "diff_bench",
    "diff_summaries",
    "dump_jsonl",
    "explain_trace",
    "export_chrome_trace",
    "get_recorder",
    "merge_metric_dicts",
    "read_jsonl",
    "render_diff",
    "render_prometheus",
    "render_summary",
    "reset_recorder",
    "scan_jsonl",
    "set_recorder",
    "summarize_trace",
    "telemetry_addr",
    "telemetry_enabled",
    "trace_dir",
    "trace_enabled",
    "write_jsonl",
]
