"""The metrics registry: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain in-process aggregate — no
background threads, no exporters, no global state.  It exists to be
cheap, mergeable, and serialisable:

* **cheap** — a counter increment is one dict update; a histogram
  observation is a binary search over a fixed bucket-edge tuple;
* **mergeable** — :meth:`MetricsRegistry.merge` folds another registry
  (or its :meth:`to_dict` form) into this one, which is how
  :class:`repro.perf.parallel.ParallelRunner` workers stream per-task
  metrics back to the parent's merged sweep summary;
* **serialisable** — :meth:`to_dict` / :meth:`from_dict` round-trip
  through JSON so registries can cross process boundaries and land in
  JSONL trace files.

Histograms use *fixed* bucket edges chosen at first observation (default
:data:`DEFAULT_BUCKETS`, a power-of-4 geometric ladder).  Fixed edges are
what makes histograms mergeable without resampling: two histograms with
the same edges merge by adding counts.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping

__all__ = ["DEFAULT_BUCKETS", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper edges (geometric, base 4): values above
#: the last edge land in the implicit +inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3, 1.6384e-2,
    6.5536e-2, 0.262144, 1.048576, 4.194304, 16.777216, 67.108864,
)


class Histogram:
    """A fixed-bucket histogram: counts per bucket plus sum/count/min/max.

    ``edges`` are the inclusive upper bounds of the finite buckets; one
    extra overflow bucket catches everything beyond the last edge.  Two
    histograms merge iff their edges are identical.
    """

    __slots__ = ("edges", "counts", "total", "count", "vmin", "vmax")

    def __init__(self, edges: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram edges must be strictly increasing")
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)  # +1 = overflow bucket
        self.total = 0.0
        self.count = 0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += value
        self.count += 1
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ValueError(
                "cannot merge histograms with different bucket edges "
                f"({len(self.edges)} vs {len(other.edges)} edges)"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Histogram":
        h = cls(tuple(float(e) for e in d["edges"]))
        h.counts = [int(c) for c in d["counts"]]
        h.total = float(d["total"])
        h.count = int(d["count"])
        h.vmin = float(d["min"]) if d.get("min") is not None else float("inf")
        h.vmax = float(d["max"]) if d.get("max") is not None else float("-inf")
        return h


class MetricsRegistry:
    """Named counters, gauges, and histograms with merge semantics.

    Merge semantics per instrument: counters **add**, gauges keep the
    **last-set** value (worker gauges overwrite in merge order, which is
    deterministic because :class:`~repro.perf.parallel.ParallelRunner`
    merges snapshots in task-submission order), histograms **add
    bucket-wise**.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ instruments
    def counter_add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram_observe(
        self, name: str, value: float, edges: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(edges)
        hist.observe(value)

    # --------------------------------------------------------------- plumbing
    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold ``other`` (a registry or its ``to_dict`` form) into this."""
        if not isinstance(other, MetricsRegistry):
            other = MetricsRegistry.from_dict(other)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in other.gauges.items():
            self.gauges[name] = value
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                clone = Histogram(hist.edges)
                clone.merge(hist)
                self.histograms[name] = clone
            else:
                mine.merge(hist)

    def snapshot(self, *, reset: bool = False) -> dict[str, Any]:
        """The ``to_dict`` form; with ``reset=True`` also clears state.

        Snapshot-and-reset is the worker-side half of cross-process
        aggregation: each :func:`repro.perf.parallel._run_chunk` ships
        the delta accumulated during its chunk and starts fresh.
        """
        out = self.to_dict()
        if reset:
            self.counters = {}
            self.gauges = {}
            self.histograms = {}
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.counters = {str(k): float(v) for k, v in d.get("counters", {}).items()}
        reg.gauges = {str(k): float(v) for k, v in d.get("gauges", {}).items()}
        reg.histograms = {
            str(k): Histogram.from_dict(v)
            for k, v in d.get("histograms", {}).items()
        }
        return reg
