"""``python -m repro obs`` — the observability toolbelt.

Subcommands
-----------
``summarize <trace.jsonl>...``
    Span/counter/decision rollups per trace file.
``explain <trace.jsonl>``
    Human-readable narrative of why each job started when it did
    (paper-rule provenance), cross-checked against ``audit()``.
    ``--strict`` exits non-zero on unattributed starts, decision rules
    outside the closed ``DECISION_RULES`` vocabulary (the runtime face
    of lint rule RL015), or audit failure.
``diff <before> <after> [--threshold 0.10]``
    Compare two trace summaries *or* two ``BENCH_perf.json`` files
    (auto-detected).  Exits 1 when any quantity regressed beyond the
    threshold — the CI regression gate.
``export <trace.jsonl> [--out FILE]``
    Convert to Chrome ``trace_event`` JSON (open in ``chrome://tracing``
    or https://ui.perfetto.dev).
``overhead [--quick] [--tolerance 0.02]``
    Ratchet the zero-overhead-when-disabled contract: times the §3.1
    macro bench with the recorder fully disarmed and with an explicit
    ``NullRecorder``, and fails if the delta exceeds the tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

from .aggregate import (
    diff_bench,
    diff_summaries,
    render_diff,
    render_summary,
    summarize_trace,
)
from .chrome import export_chrome_trace
from .explain import explain_trace
from .jsonl import LoadedTrace, read_jsonl
from .recorder import NULL_RECORDER, NullRecorder, Recorder

__all__ = ["add_obs_parser", "cmd_obs"]


def add_obs_parser(sub: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    p = sub.add_parser(
        "obs",
        help="observability tooling: summarize/explain/diff/export traces",
        description=(
            "Work with repro.obs JSONL traces and BENCH_perf.json files: "
            "rollups, decision-provenance narratives, regression diffs, "
            "Chrome trace export, and the NullRecorder overhead ratchet."
        ),
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    p_sum = obs_sub.add_parser("summarize", help="span/counter rollups per trace")
    p_sum.add_argument("traces", nargs="+", help="JSONL trace file(s)")
    p_sum.add_argument(
        "--format", choices=["text", "json"], default="text", help="output format"
    )

    p_exp = obs_sub.add_parser(
        "explain", help="narrate why each job started when it did"
    )
    p_exp.add_argument("trace", help="JSONL trace file")
    p_exp.add_argument(
        "--limit", type=int, default=200, help="max jobs to narrate (default 200)"
    )
    p_exp.add_argument(
        "--strict",
        action="store_true",
        help=(
            "exit 1 on unattributed starts, out-of-vocabulary decision "
            "rules, or an infeasible rebuilt schedule"
        ),
    )

    p_diff = obs_sub.add_parser(
        "diff", help="compare two traces or two BENCH_perf.json files"
    )
    p_diff.add_argument("before", help="baseline trace/bench JSON file")
    p_diff.add_argument("after", help="candidate trace/bench JSON file")
    p_diff.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression threshold (default 0.10 = 10%%)",
    )

    p_chrome = obs_sub.add_parser(
        "export", help="convert a JSONL trace to Chrome trace_event JSON"
    )
    p_chrome.add_argument("trace", help="JSONL trace file")
    p_chrome.add_argument(
        "--out", default=None, help="output path (default: <trace>.chrome.json)"
    )

    p_over = obs_sub.add_parser(
        "overhead", help="check NullRecorder overhead on the macro bench"
    )
    p_over.add_argument(
        "--quick",
        action="store_true",
        help="use the ~100k-event geometric profile instead of §3.1 k=2 (CI smoke)",
    )
    p_over.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="max tolerated relative slowdown (default 0.02 = 2%%)",
    )
    p_over.add_argument(
        "--repeat", type=int, default=5, help="best-of repetitions per arm"
    )


def _load(path: str) -> LoadedTrace:
    try:
        return read_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_summarize(args: argparse.Namespace) -> int:
    payloads: list[dict[str, Any]] = []
    for i, path in enumerate(args.traces):
        trace = _load(path)
        summary = summarize_trace(trace)
        if args.format == "json":
            payloads.append(
                {
                    "path": path,
                    "meta": summary.meta,
                    "records": summary.record_count,
                    "kinds": summary.kind_counts,
                    "decisions": summary.decisions,
                    "spans": summary.spans,
                    "counters": summary.counters,
                    "gauges": summary.gauges,
                    "histograms": summary.histograms,
                }
            )
        else:
            if i:
                print()
            print(f"== {path}")
            print(render_summary(summary))
    if args.format == "json":
        print(json.dumps(payloads, indent=2))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    explanation = explain_trace(_load(args.trace))
    print(explanation.render(limit=args.limit))
    if args.strict and (
        not explanation.fully_attributed
        or explanation.audit_feasible is False
        or not explanation.vocabulary_clean
    ):
        print(
            "\nstrict: unattributed starts, out-of-vocabulary decision "
            "rules, or audit failure — see above",
            file=sys.stderr,
        )
        return 1
    return 0


def _is_bench_payload(path: str) -> dict[str, Any] | None:
    """Parse ``path`` as a BENCH_perf.json payload, or ``None``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(payload, dict) and "results" in payload:
        return payload
    return None


def _cmd_diff(args: argparse.Namespace) -> int:
    if args.threshold < 0:
        print("error: --threshold must be >= 0", file=sys.stderr)
        return 2
    bench_before = _is_bench_payload(args.before)
    bench_after = _is_bench_payload(args.after)
    if (bench_before is None) != (bench_after is None):
        print(
            "error: cannot diff a bench file against a trace file",
            file=sys.stderr,
        )
        return 2
    if bench_before is not None and bench_after is not None:
        entries = diff_bench(bench_before, bench_after, threshold=args.threshold)
    else:
        before = summarize_trace(_load(args.before))
        after = summarize_trace(_load(args.after))
        entries = diff_summaries(before, after, threshold=args.threshold)
    print(render_diff(entries, threshold=args.threshold))
    regressions = [e for e in entries if e.regressed]
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {args.threshold:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    out = args.out or f"{args.trace}.chrome.json"
    written = export_chrome_trace(trace, out)
    print(f"wrote {written} (open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _time_macro(
    quick: bool, recorder: Recorder | None, repeat: int
) -> tuple[float, int]:
    """Best-of wall time for the overhead case under one recorder arm.

    ``quick=False`` times the pinned §3.1 macro case
    (``macro/e1_paper_k2_batch``, ~260k events); ``quick=True``
    substitutes a ~100k-event geometric profile that runs in well under a
    second — still large enough that a 2 % relative delta is resolvable
    above timer noise (the k=1 paper profile, at 77 events, is not).
    """
    from ..adversaries import (
        NonClairvoyantLowerBoundAdversary,
        geometric_profile,
        paper_profile,
    )
    from ..core.engine import Simulator
    from ..schedulers import Batch

    profile = geometric_profile(6, 64) if quick else paper_profile(2)
    best = float("inf")
    events = 0
    for _ in range(max(repeat, 1)):
        adv = NonClairvoyantLowerBoundAdversary(5.0, profile)
        sim = Simulator(Batch(), adversary=adv, clairvoyant=False, recorder=recorder)
        t0 = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - t0
        events = result.events_processed
        if wall < best:
            best = wall
    return best, events


def _cmd_overhead(args: argparse.Namespace) -> int:
    case = "macro/geom_k6_m64_batch" if args.quick else "macro/e1_paper_k2_batch"
    # Warm both arms once, then interleave timed repetitions (ABAB…) so
    # thermal/frequency drift hits both arms equally.
    _time_macro(args.quick, NULL_RECORDER, 1)
    _time_macro(args.quick, NullRecorder(), 1)
    best_off = float("inf")
    best_null = float("inf")
    events = 0
    for _ in range(max(args.repeat, 1)):
        wall_off, events = _time_macro(args.quick, NULL_RECORDER, 1)
        wall_null, _ = _time_macro(args.quick, NullRecorder(), 1)
        best_off = min(best_off, wall_off)
        best_null = min(best_null, wall_null)
    overhead = (best_null - best_off) / best_off
    print(f"case                : {case} ({events} events)")
    print(f"recorder disarmed   : {best_off:.4f}s ({events / best_off:,.0f} ev/s)")
    print(f"explicit NullRecorder: {best_null:.4f}s ({events / best_null:,.0f} ev/s)")
    print(f"overhead            : {overhead:+.2%} (tolerance {args.tolerance:.1%})")
    if overhead > args.tolerance:
        print(
            "FAIL: NullRecorder is no longer free — something consults the "
            "recorder on the disabled path",
            file=sys.stderr,
        )
        return 1
    print("OK: NullRecorder is indistinguishable from no recorder")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    handlers = {
        "summarize": _cmd_summarize,
        "explain": _cmd_explain,
        "diff": _cmd_diff,
        "export": _cmd_export,
        "overhead": _cmd_overhead,
    }
    return handlers[args.obs_command](args)
