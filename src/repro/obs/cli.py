"""``python -m repro obs`` — the observability toolbelt.

Subcommands
-----------
``summarize <trace.jsonl>...``
    Span/counter/decision rollups per trace file.
``explain <trace.jsonl>``
    Human-readable narrative of why each job started when it did
    (paper-rule provenance), cross-checked against ``audit()``.
    ``--strict`` exits non-zero on unattributed starts, decision rules
    outside the closed ``DECISION_RULES`` vocabulary (the runtime face
    of lint rule RL015), or audit failure.
``diff <before> <after> [--threshold 0.10]``
    Compare two trace summaries *or* two ``BENCH_perf.json`` files
    (auto-detected).  Exits 1 when any quantity regressed beyond the
    threshold — the CI regression gate.
``export <trace.jsonl> [--out FILE]``
    Convert to Chrome ``trace_event`` JSON (open in ``chrome://tracing``
    or https://ui.perfetto.dev).
``overhead [--quick] [--tolerance 0.02] [--telemetry]``
    Ratchet the zero-overhead-when-disabled contract: times the §3.1
    macro bench with the recorder fully disarmed and with an explicit
    ``NullRecorder``, and fails if the delta exceeds the tolerance.
    ``--telemetry`` ratchets the live telemetry plane's contract
    instead (default tolerance 3%): telemetry rides the recorder
    protocol, so with a ``NullRecorder`` (no records) an armed
    ``REPRO_TELEMETRY`` must cost nothing on the engine path.  The
    *armed* feed cost is also measured on the serve pipeline for
    reporting; its regression gate is the absolute
    ``serve/telemetry_armed`` floor in ``BENCH_perf.json``.
``top --connect HOST:PORT [--interval 2.0] [--once] [--format text|json]``
    Refreshing terminal dashboard over a running daemon's telemetry
    listener (``repro serve --telemetry``): per-tenant span, queue
    depth, decision mix, and the live competitive-ratio estimate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

from .aggregate import (
    diff_bench,
    diff_summaries,
    render_diff,
    render_summary,
    summarize_trace,
)
from .chrome import export_chrome_trace
from .explain import explain_trace
from .jsonl import LoadedTrace, read_jsonl
from .recorder import NULL_RECORDER, NullRecorder, Recorder

__all__ = ["add_obs_parser", "cmd_obs"]


def add_obs_parser(sub: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    p = sub.add_parser(
        "obs",
        help="observability tooling: summarize/explain/diff/export traces",
        description=(
            "Work with repro.obs JSONL traces and BENCH_perf.json files: "
            "rollups, decision-provenance narratives, regression diffs, "
            "Chrome trace export, and the NullRecorder overhead ratchet."
        ),
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    p_sum = obs_sub.add_parser("summarize", help="span/counter rollups per trace")
    p_sum.add_argument("traces", nargs="+", help="JSONL trace file(s)")
    p_sum.add_argument(
        "--format", choices=["text", "json"], default="text", help="output format"
    )

    p_exp = obs_sub.add_parser(
        "explain", help="narrate why each job started when it did"
    )
    p_exp.add_argument("trace", help="JSONL trace file")
    p_exp.add_argument(
        "--limit", type=int, default=200, help="max jobs to narrate (default 200)"
    )
    p_exp.add_argument(
        "--strict",
        action="store_true",
        help=(
            "exit 1 on unattributed starts, out-of-vocabulary decision "
            "rules, an infeasible rebuilt schedule, or a replayed live "
            "telemetry LB that decreased or exceeded the certified reference"
        ),
    )

    p_diff = obs_sub.add_parser(
        "diff", help="compare two traces or two BENCH_perf.json files"
    )
    p_diff.add_argument("before", help="baseline trace/bench JSON file")
    p_diff.add_argument("after", help="candidate trace/bench JSON file")
    p_diff.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression threshold (default 0.10 = 10%%)",
    )

    p_chrome = obs_sub.add_parser(
        "export", help="convert a JSONL trace to Chrome trace_event JSON"
    )
    p_chrome.add_argument("trace", help="JSONL trace file")
    p_chrome.add_argument(
        "--out", default=None, help="output path (default: <trace>.chrome.json)"
    )

    p_over = obs_sub.add_parser(
        "overhead", help="check NullRecorder overhead on the macro bench"
    )
    p_over.add_argument(
        "--quick",
        action="store_true",
        help="use the ~100k-event geometric profile instead of §3.1 k=2 (CI smoke)",
    )
    p_over.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "max tolerated relative slowdown (default 0.02 = 2%%, "
            "or 0.03 with --telemetry)"
        ),
    )
    p_over.add_argument(
        "--repeat", type=int, default=5, help="best-of repetitions per arm"
    )
    p_over.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "ratchet the live telemetry plane instead: an armed "
            "REPRO_TELEMETRY must stay free on the NullRecorder engine "
            "path (and the armed serve-pipeline feed cost is reported)"
        ),
    )

    p_top = obs_sub.add_parser(
        "top", help="live dashboard over a serve daemon's telemetry listener"
    )
    p_top.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="telemetry listener address (see `repro serve --telemetry`)",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2.0)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (scripts/CI)",
    )
    p_top.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="frame format: rendered table or the raw JSON snapshot",
    )


def _load(path: str) -> LoadedTrace:
    try:
        return read_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_summarize(args: argparse.Namespace) -> int:
    payloads: list[dict[str, Any]] = []
    for i, path in enumerate(args.traces):
        trace = _load(path)
        summary = summarize_trace(trace)
        if args.format == "json":
            payloads.append(
                {
                    "path": path,
                    "meta": summary.meta,
                    "records": summary.record_count,
                    "kinds": summary.kind_counts,
                    "decisions": summary.decisions,
                    "spans": summary.spans,
                    "counters": summary.counters,
                    "gauges": summary.gauges,
                    "histograms": summary.histograms,
                    "tenants": summary.tenants,
                }
            )
        else:
            if i:
                print()
            print(f"== {path}")
            print(render_summary(summary))
    if args.format == "json":
        print(json.dumps(payloads, indent=2))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    explanation = explain_trace(_load(args.trace))
    print(explanation.render(limit=args.limit))
    if args.strict and (
        not explanation.fully_attributed
        or explanation.audit_feasible is False
        or not explanation.vocabulary_clean
        or explanation.lb_monotone is False
        or explanation.lb_consistent is False
    ):
        print(
            "\nstrict: unattributed starts, out-of-vocabulary decision "
            "rules, audit failure, or a live-LB violation — see above",
            file=sys.stderr,
        )
        return 1
    return 0


def _is_bench_payload(path: str) -> dict[str, Any] | None:
    """Parse ``path`` as a BENCH_perf.json payload, or ``None``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(payload, dict) and "results" in payload:
        return payload
    return None


def _cmd_diff(args: argparse.Namespace) -> int:
    if args.threshold < 0:
        print("error: --threshold must be >= 0", file=sys.stderr)
        return 2
    bench_before = _is_bench_payload(args.before)
    bench_after = _is_bench_payload(args.after)
    if (bench_before is None) != (bench_after is None):
        print(
            "error: cannot diff a bench file against a trace file",
            file=sys.stderr,
        )
        return 2
    if bench_before is not None and bench_after is not None:
        entries = diff_bench(bench_before, bench_after, threshold=args.threshold)
    else:
        before = summarize_trace(_load(args.before))
        after = summarize_trace(_load(args.after))
        entries = diff_summaries(before, after, threshold=args.threshold)
    print(render_diff(entries, threshold=args.threshold))
    regressions = [e for e in entries if e.regressed]
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {args.threshold:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    out = args.out or f"{args.trace}.chrome.json"
    written = export_chrome_trace(trace, out)
    print(f"wrote {written} (open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _time_macro(
    quick: bool, recorder: Recorder | None, repeat: int
) -> tuple[float, int]:
    """Best-of wall time for the overhead case under one recorder arm.

    ``quick=False`` times the pinned §3.1 macro case
    (``macro/e1_paper_k2_batch``, ~260k events); ``quick=True``
    substitutes a ~100k-event geometric profile that runs in well under a
    second — still large enough that a 2 % relative delta is resolvable
    above timer noise (the k=1 paper profile, at 77 events, is not).
    """
    from ..adversaries import (
        NonClairvoyantLowerBoundAdversary,
        geometric_profile,
        paper_profile,
    )
    from ..core.engine import Simulator
    from ..schedulers import Batch

    profile = geometric_profile(6, 64) if quick else paper_profile(2)
    best = float("inf")
    events = 0
    for _ in range(max(repeat, 1)):
        adv = NonClairvoyantLowerBoundAdversary(5.0, profile)
        sim = Simulator(Batch(), adversary=adv, clairvoyant=False, recorder=recorder)
        t0 = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - t0
        events = result.events_processed
        if wall < best:
            best = wall
    return best, events


def _time_serve(jobs_per_tenant: int, telemetry: bool, repeat: int) -> tuple[float, int]:
    """Best-of wall time for the serve two-tenant workload (one arm)."""
    from ..perf.bench import _bench_serve_two_tenants

    best = float("inf")
    records = 0
    for _ in range(max(repeat, 1)):
        t0 = time.perf_counter()
        records = _bench_serve_two_tenants(jobs_per_tenant, telemetry=telemetry)
        wall = time.perf_counter() - t0
        best = min(best, wall)
    return best, records


def _cmd_overhead_telemetry(args: argparse.Namespace, tolerance: float) -> int:
    """The ``--telemetry`` ratchet: an armed plane must ride the recorder.

    Telemetry consumes recorder records; a :class:`NullRecorder`
    produces none, so arming ``REPRO_TELEMETRY`` process-wide must leave
    the NullRecorder engine path untouched — that delta is the gate.
    The *armed* per-record feed cost (real, and paid only by armed
    serve sessions) is measured on the serve pipeline and reported; its
    regression gate is the absolute ``serve/telemetry_armed`` bench
    floor, not a relative tolerance here.
    """
    import os

    from .live import TELEMETRY_ENV

    case = "macro/geom_k6_m64_batch" if args.quick else "macro/e1_paper_k2_batch"
    saved = os.environ.get(TELEMETRY_ENV)

    def _armed_macro(repeat: int) -> tuple[float, int]:
        os.environ[TELEMETRY_ENV] = "1"
        try:
            return _time_macro(args.quick, NullRecorder(), repeat)
        finally:
            if saved is None:
                os.environ.pop(TELEMETRY_ENV, None)
            else:
                os.environ[TELEMETRY_ENV] = saved

    _time_macro(args.quick, NULL_RECORDER, 1)
    _armed_macro(1)
    best_off = float("inf")
    best_armed = float("inf")
    events = 0
    for _ in range(max(args.repeat, 1)):
        wall_off, events = _time_macro(args.quick, NULL_RECORDER, 1)
        wall_armed, _ = _armed_macro(1)
        best_off = min(best_off, wall_off)
        best_armed = min(best_armed, wall_armed)
    overhead = (best_armed - best_off) / best_off
    print(f"case                : {case} ({events} events)")
    print(f"recorder disarmed   : {best_off:.4f}s ({events / best_off:,.0f} ev/s)")
    print(
        f"armed + NullRecorder: {best_armed:.4f}s "
        f"({events / best_armed:,.0f} ev/s)"
    )
    print(f"overhead            : {overhead:+.2%} (tolerance {tolerance:.1%})")
    jobs = 300 if args.quick else 1_500
    serve_off, records = _time_serve(jobs, False, args.repeat)
    serve_armed, _ = _time_serve(jobs, True, args.repeat)
    feed = (serve_armed - serve_off) / serve_off
    print(
        f"armed serve feed    : {records / serve_armed:,.0f} rec/s vs "
        f"{records / serve_off:,.0f} rec/s disarmed ({feed:+.1%}; "
        "gated by the serve/telemetry_armed bench floor)"
    )
    if overhead > tolerance:
        print(
            "FAIL: arming REPRO_TELEMETRY taxes the NullRecorder engine "
            "path — telemetry must ride the recorder protocol only",
            file=sys.stderr,
        )
        return 1
    print("OK: armed telemetry is free wherever the recorder is off")
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    tolerance = (
        args.tolerance
        if args.tolerance is not None
        else (0.03 if args.telemetry else 0.02)
    )
    if tolerance < 0:
        print("error: --tolerance must be >= 0", file=sys.stderr)
        return 2
    if args.telemetry:
        return _cmd_overhead_telemetry(args, tolerance)
    case = "macro/geom_k6_m64_batch" if args.quick else "macro/e1_paper_k2_batch"
    # Warm both arms once, then interleave timed repetitions (ABAB…) so
    # thermal/frequency drift hits both arms equally.
    _time_macro(args.quick, NULL_RECORDER, 1)
    _time_macro(args.quick, NullRecorder(), 1)
    best_off = float("inf")
    best_null = float("inf")
    events = 0
    for _ in range(max(args.repeat, 1)):
        wall_off, events = _time_macro(args.quick, NULL_RECORDER, 1)
        wall_null, _ = _time_macro(args.quick, NullRecorder(), 1)
        best_off = min(best_off, wall_off)
        best_null = min(best_null, wall_null)
    overhead = (best_null - best_off) / best_off
    print(f"case                : {case} ({events} events)")
    print(f"recorder disarmed   : {best_off:.4f}s ({events / best_off:,.0f} ev/s)")
    print(f"explicit NullRecorder: {best_null:.4f}s ({events / best_null:,.0f} ev/s)")
    print(f"overhead            : {overhead:+.2%} (tolerance {tolerance:.1%})")
    if overhead > tolerance:
        print(
            "FAIL: NullRecorder is no longer free — something consults the "
            "recorder on the disabled path",
            file=sys.stderr,
        )
        return 1
    print("OK: NullRecorder is indistinguishable from no recorder")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .top import CLEAR, fetch_snapshot, render_top

    if args.interval <= 0:
        print("error: --interval must be > 0", file=sys.stderr)
        return 2
    try:
        while True:
            try:
                snapshot = fetch_snapshot(args.connect)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if args.format == "json":
                print(json.dumps(snapshot, indent=2))
            else:
                prefix = "" if args.once else CLEAR
                print(prefix + render_top(snapshot))
            if args.once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_obs(args: argparse.Namespace) -> int:
    handlers = {
        "summarize": _cmd_summarize,
        "explain": _cmd_explain,
        "diff": _cmd_diff,
        "export": _cmd_export,
        "overhead": _cmd_overhead,
        "top": _cmd_top,
    }
    return handlers[args.obs_command](args)
