"""Live telemetry plane: streaming per-tenant span / ratio aggregation.

The serving daemon multiplexes many tenant scheduler streams; this
module is what lets an operator *watch* them.  A
:class:`TenantTelemetry` consumes the structured records the engine
already emits through the recorder protocol (``engine.release`` /
``engine.start`` / ``engine.completion`` instants plus ``decision``
records) and maintains, online:

* the **observed span** — the measure of the union of committed run
  intervals ``[s, s+p)`` (an incremental version of
  :func:`repro.core.intervals.union_measure`);
* busy/idle split of the tenant's clock, queue depth (released minus
  started) and run counts;
* the decision-rule mix over the closed
  :data:`~repro.obs.records.DECISION_RULES` vocabulary;
* an **online competitive-ratio estimate** ``span / LB`` where ``LB``
  is :class:`OnlineOptLowerBound` — an incremental form of the repo's
  certified offline bounds (:mod:`repro.offline.lower_bounds`).

Ratio-LB math
-------------
``OnlineOptLowerBound`` is the running max of three quantities, each
maintained incrementally and each individually monotone nondecreasing
as jobs are added — so the combined bound is monotone by construction:

* **chain bound** — the max-weight chain in the must-be-disjoint DAG
  (``a(j) >= d(i) + p(i)`` ⇒ no scheduler can overlap ``i`` and ``j``).
  Instead of the offline Fenwick sweep, a Pareto front of
  ``(latest_completion, best_chain_weight)`` pairs — strictly
  increasing in both coordinates — answers "best chain ending at
  latest-completion ``<= a``" with one bisect, then inserts the
  extended chain and prunes dominated entries.  Amortized
  ``O(log n)`` per arrival.  When jobs are fed in nondecreasing
  arrival order (the serve stream guarantees it; equal arrivals never
  chain onto each other since ``a < d + p``), the front reproduces
  :func:`repro.offline.lower_bounds.chain_lower_bound` exactly; fed in
  any other order it stays a *sound* (possibly weaker) bound, because
  every queried predecessor really satisfies the disjointness test.
* **mandatory bound** — the union measure of ``[d, a+p)`` over jobs
  with ``laxity < p`` (they occupy that window in every feasible
  schedule), maintained by the same incremental interval union.
* **max length** — a single running max.

``span / LB >= span / OPT``: the live ratio is a sound *upper*
estimate of the schedule's competitive ratio on the instance so far.
``repro obs explain`` replays this estimator over finished traces and
cross-checks it against the certified offline reference
(:func:`repro.offline.lower_bounds.span_lower_bound` through
:class:`repro.perf.cache.ReferenceCache`).

Knobs
-----
``REPRO_TELEMETRY``
    Arms (default) or disarms the daemon's live aggregation; disarmed,
    sessions skip the per-record feed entirely.
``REPRO_TELEMETRY_ADDR``
    ``host:port`` for the daemon's read-only telemetry listener
    (equivalent to ``repro serve --telemetry``); unset means no
    listener.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from typing import Any, Mapping

from .records import KIND_DECISION, KIND_INSTANT, ObsRecord

__all__ = [
    "IntervalUnion",
    "LiveAggregator",
    "OnlineOptLowerBound",
    "TELEMETRY_ADDR_ENV",
    "TELEMETRY_ENV",
    "TenantTelemetry",
    "render_prometheus",
    "telemetry_addr",
    "telemetry_enabled",
]

#: Environment variable arming the daemon's live aggregation (default on).
TELEMETRY_ENV = "REPRO_TELEMETRY"
#: Environment variable naming the telemetry listener's ``host:port``.
TELEMETRY_ADDR_ENV = "REPRO_TELEMETRY_ADDR"

_FALSEY = ("", "0", "false", "off")


def telemetry_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` arms live aggregation (default yes)."""
    return os.environ.get(TELEMETRY_ENV, "1").strip().lower() not in _FALSEY


def telemetry_addr(override: str | None = None) -> tuple[str, int] | None:
    """The telemetry listener address, or ``None`` when unconfigured.

    ``override`` (the ``--telemetry`` flag) wins over
    ``REPRO_TELEMETRY_ADDR``; both use ``host:port`` syntax.
    """
    spec = override if override is not None else os.environ.get(
        TELEMETRY_ADDR_ENV, ""
    )
    spec = spec.strip()
    if not spec:
        return None
    host, _, port = spec.rpartition(":")
    if not host or not port:
        raise ValueError(f"telemetry address takes HOST:PORT, got {spec!r}")
    return host, int(port)


class IntervalUnion:
    """Incremental union measure of half-open intervals ``[s, e)``.

    Disjoint merged intervals live in two parallel sorted lists; each
    ``add`` bisects for the overlap range, splices, and updates the
    running ``total`` — amortized ``O(log n)`` because every merged
    interval is removed at most once.  Touching intervals are merged
    (identical measure, smaller lists).
    """

    __slots__ = ("_starts", "_ends", "total")

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._ends: list[float] = []
        self.total = 0.0

    def add(self, start: float, end: float) -> None:
        """Fold ``[start, end)`` into the union (no-op when empty)."""
        if end <= start:
            return
        starts, ends = self._starts, self._ends
        lo = bisect_left(ends, start)
        hi = bisect_right(starts, end)
        if lo == hi:  # disjoint from everything
            starts.insert(lo, start)
            ends.insert(lo, end)
            self.total += end - start
            return
        new_start = min(start, starts[lo])
        new_end = max(end, ends[hi - 1])
        removed = 0.0
        for k in range(lo, hi):
            removed += ends[k] - starts[k]
        del starts[lo:hi]
        del ends[lo:hi]
        starts.insert(lo, new_start)
        ends.insert(lo, new_end)
        self.total += (new_end - new_start) - removed

    def measure_until(self, t: float) -> float:
        """Measure of the union intersected with ``(-inf, t]``."""
        starts, ends = self._starts, self._ends
        k = bisect_right(starts, t)
        covered = 0.0
        for i in range(k):
            end = ends[i]
            covered += (end if end <= t else t) - starts[i]
        return covered

    def __len__(self) -> int:
        return len(self._starts)


class OnlineOptLowerBound:
    """Monotone incremental lower bound on OPT's span (see module doc).

    ``add(arrival, deadline, length)`` folds one released job in;
    ``value`` only ever grows.  On a full instance fed in nondecreasing
    arrival order the bound equals the certified offline
    :func:`~repro.offline.lower_bounds.span_lower_bound`.
    """

    __slots__ = ("_lcs", "_vals", "chain", "max_length", "_mandatory")

    def __init__(self) -> None:
        # Pareto front: _lcs strictly increasing, _vals strictly increasing.
        self._lcs: list[float] = []
        self._vals: list[float] = []
        self.chain = 0.0
        self.max_length = 0.0
        self._mandatory = IntervalUnion()

    @property
    def mandatory(self) -> float:
        """The incremental mandatory-interval bound component."""
        return self._mandatory.total

    @property
    def value(self) -> float:
        """The combined bound: max(chain, mandatory, max length)."""
        chain = self.chain
        mandatory = self._mandatory.total
        best = chain if chain >= mandatory else mandatory
        return best if best >= self.max_length else self.max_length

    def add(self, arrival: float, deadline: float, length: float) -> None:
        """Fold one released job ``(a, d, p)`` into the bound."""
        if length > self.max_length:
            self.max_length = length
        if arrival + length > deadline:  # laxity < p: mandatory interval
            self._mandatory.add(deadline, arrival + length)
        lcs, vals = self._lcs, self._vals
        # Best chain whose last job completes by this arrival, extended.
        i = bisect_right(lcs, arrival) - 1
        cand = (vals[i] if i >= 0 else 0.0) + length
        if cand > self.chain:
            self.chain = cand
        lc = deadline + length
        j = bisect_left(lcs, lc)
        if j > 0 and vals[j - 1] >= cand:
            return  # dominated by an earlier completion with a better chain
        n = len(lcs)
        if j < n and lcs[j] == lc:
            if vals[j] >= cand:
                return
            vals[j] = cand
            k = j + 1
        else:
            lcs.insert(j, lc)
            vals.insert(j, cand)
            n += 1
            k = j + 1
        # Prune now-dominated successors (later completion, weaker chain).
        m = k
        while m < n and vals[m] <= cand:
            m += 1
        if m > k:
            del lcs[k:m]
            del vals[k:m]


class TenantTelemetry:
    """One tenant's live aggregates, fed one :class:`ObsRecord` at a time.

    The serve session calls the ``_handle_*`` methods directly from its
    per-op collect loop (they are inside the RL011/RL012 hot-section
    lint scope: no stdio, no per-job object materialisation);
    :meth:`observe` is the generic record-dispatch entry used by trace
    replay (``repro obs explain`` / ``summarize``) and tests.
    """

    __slots__ = (
        "tenant",
        "clock",
        "released",
        "started",
        "completed",
        "total_work",
        "first_arrival",
        "decisions",
        "lb",
        "_span",
        "_lengths",
        "_open_runs",
        "_deferred",
    )

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self.clock = 0.0
        self.released = 0
        self.started = 0
        self.completed = 0
        self.total_work = 0.0
        self.first_arrival: float | None = None
        self.decisions: dict[str, int] = {}
        self.lb = OnlineOptLowerBound()
        self._span = IntervalUnion()
        self._lengths: dict[int, float] = {}
        self._open_runs: dict[int, float] = {}
        # Released without a known length (non-clairvoyant streams):
        # (arrival, deadline) parked until the completion reveals p.
        self._deferred: dict[int, tuple[float, float]] = {}

    # ------------------------------------------------------- record handlers
    def _handle_release(self, attrs: Mapping[str, Any]) -> None:
        self.released += 1
        arrival = float(attrs["arrival"])
        if self.first_arrival is None or arrival < self.first_arrival:
            self.first_arrival = arrival
        deadline = float(attrs["deadline"])
        length = attrs.get("length")
        job = int(attrs["job"])
        if length is None:
            self._deferred[job] = (arrival, deadline)
        else:
            p = float(length)
            self._lengths[job] = p
            self.total_work += p
            self.lb.add(arrival, deadline, p)

    def _handle_start(self, attrs: Mapping[str, Any]) -> None:
        self.started += 1
        t = float(attrs["t"])
        if t > self.clock:
            self.clock = t
        job = int(attrs["job"])
        p = self._lengths.pop(job, None)
        if p is None:
            self._open_runs[job] = t  # length lands with the completion
        else:
            self._span.add(t, t + p)

    def _handle_completion(self, attrs: Mapping[str, Any]) -> None:
        self.completed += 1
        t = float(attrs["t"])
        if t > self.clock:
            self.clock = t
        job = int(attrs["job"])
        start = self._open_runs.pop(job, None)
        if start is not None:
            self._span.add(start, t)
        deferred = self._deferred.pop(job, None)
        if deferred is not None:
            length = attrs.get("length")
            p = float(length) if length is not None else t - (
                start if start is not None else t
            )
            self.total_work += p
            self.lb.add(deferred[0], deferred[1], p)

    def _handle_decision(self, rule: str) -> None:
        counts = self.decisions
        counts[rule] = counts.get(rule, 0) + 1

    # ------------------------------------------------------------ public api
    def observe(self, record: ObsRecord) -> None:
        """Dispatch one structured record into the aggregates."""
        kind = record.kind
        if kind == KIND_INSTANT:
            name = record.name
            if name == "engine.release":
                self._handle_release(record.attrs)
            elif name == "engine.start":
                self._handle_start(record.attrs)
            elif name == "engine.completion":
                self._handle_completion(record.attrs)
        elif kind == KIND_DECISION:
            self._handle_decision(record.name)

    @property
    def span(self) -> float:
        """Measure of the union of committed run intervals."""
        return self._span.total

    @property
    def ratio(self) -> float | None:
        """Live competitive-ratio upper estimate (``None`` before any
        run has committed span — a ratio of 0 would be noise, not
        an estimate)."""
        lb = self.lb.value
        span = self._span.total
        if lb <= 0.0 or span <= 0.0:
            return None
        return span / lb

    def snapshot(self) -> dict[str, Any]:
        """The tenant's aggregates as one JSON-serialisable dict."""
        lb = self.lb
        clock = self.clock
        busy = self._span.measure_until(clock)
        horizon = clock - (
            self.first_arrival if self.first_arrival is not None else clock
        )
        idle = horizon - busy
        return {
            "tenant": self.tenant,
            "clock": clock,
            "jobs": {
                "released": self.released,
                "started": self.started,
                "completed": self.completed,
                "pending": self.released - self.started,
                "running": self.started - self.completed,
            },
            "span": self._span.total,
            "busy_s": busy,
            "idle_s": idle if idle > 0.0 else 0.0,
            "total_work": self.total_work,
            "decisions": dict(sorted(self.decisions.items())),
            "opt_lb": {
                "value": lb.value,
                "chain": lb.chain,
                "mandatory": lb.mandatory,
                "max_length": lb.max_length,
            },
            "ratio": self.ratio,
        }


class LiveAggregator:
    """All tenants' telemetry plus daemon-level context, one snapshot.

    The daemon owns exactly one; sessions feed their tenant's
    :class:`TenantTelemetry` and readers (the ``stats`` protocol op and
    the telemetry listener) call :meth:`snapshot` /
    :func:`render_prometheus`.
    """

    def __init__(self) -> None:
        self.tenants: dict[str, TenantTelemetry] = {}

    def tenant(self, name: str) -> TenantTelemetry:
        """Get or create one tenant's telemetry."""
        telemetry = self.tenants.get(name)
        if telemetry is None:
            telemetry = self.tenants[name] = TenantTelemetry(name)
        return telemetry

    def observe(self, tenant: str, record: ObsRecord) -> None:
        """Replay-style feed: dispatch one record to one tenant."""
        self.tenant(tenant).observe(record)

    def snapshot(
        self,
        *,
        daemon: Mapping[str, Any] | None = None,
        loopwatch: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """The full telemetry snapshot (the ``/snapshot`` JSON payload).

        ``daemon`` and ``loopwatch`` are caller-supplied sections (queue
        depths and intake counters from the daemon; stall/pending
        metrics from :mod:`repro.serve.loopwatch`) merged in verbatim.
        """
        tenants = {
            name: telemetry.snapshot()
            for name, telemetry in sorted(self.tenants.items())
        }
        ratios = [
            snap["ratio"] for snap in tenants.values()
            if snap["ratio"] is not None
        ]
        payload: dict[str, Any] = {
            "kind": "telemetry",
            "tenants": tenants,
            "aggregate": {
                "tenants": len(tenants),
                "released": sum(s["jobs"]["released"] for s in tenants.values()),
                "started": sum(s["jobs"]["started"] for s in tenants.values()),
                "completed": sum(
                    s["jobs"]["completed"] for s in tenants.values()
                ),
                "span": sum(s["span"] for s in tenants.values()),
                "max_ratio": max(ratios) if ratios else None,
            },
        }
        if daemon is not None:
            payload["daemon"] = dict(daemon)
        if loopwatch is not None:
            payload["loopwatch"] = dict(loopwatch)
        return payload


def _label(value: str) -> str:
    """Escape a Prometheus label value."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _metric(value: float | int | None) -> str:
    if value is None:
        return "NaN"
    return f"{value:g}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`LiveAggregator.snapshot` as Prometheus text.

    One exposition per scrape — gauges for the per-tenant aggregates,
    counters for intake/decision totals — terminated by a newline, as
    the text exposition format requires.
    """
    lines: list[str] = []

    def gauge(name: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")

    def counter(name: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")

    tenants: Mapping[str, Any] = snapshot.get("tenants", {})
    gauge("repro_tenant_span", "observed span (union of committed runs)")
    for name, snap in tenants.items():
        lines.append(
            f'repro_tenant_span{{tenant="{_label(name)}"}} '
            f"{_metric(snap['span'])}"
        )
    gauge("repro_tenant_opt_lb", "incremental certified lower bound on OPT span")
    for name, snap in tenants.items():
        lines.append(
            f'repro_tenant_opt_lb{{tenant="{_label(name)}"}} '
            f"{_metric(snap['opt_lb']['value'])}"
        )
    gauge("repro_tenant_ratio", "live competitive-ratio upper estimate")
    for name, snap in tenants.items():
        lines.append(
            f'repro_tenant_ratio{{tenant="{_label(name)}"}} '
            f"{_metric(snap['ratio'])}"
        )
    gauge("repro_tenant_clock", "tenant logical clock")
    for name, snap in tenants.items():
        lines.append(
            f'repro_tenant_clock{{tenant="{_label(name)}"}} '
            f"{_metric(snap['clock'])}"
        )
    gauge("repro_tenant_jobs", "job counts by state")
    for name, snap in tenants.items():
        for state, count in snap["jobs"].items():
            lines.append(
                f'repro_tenant_jobs{{tenant="{_label(name)}",'
                f'state="{state}"}} {count}'
            )
    counter("repro_tenant_decisions_total", "scheduler decisions by paper rule")
    for name, snap in tenants.items():
        for rule, count in snap["decisions"].items():
            lines.append(
                f'repro_tenant_decisions_total{{tenant="{_label(name)}",'
                f'rule="{_label(rule)}"}} {count}'
            )
    daemon: Mapping[str, Any] = snapshot.get("daemon", {})
    for key in ("lines_in", "records_out", "errors"):
        if key in daemon:
            counter(f"repro_daemon_{key}_total", f"daemon {key.replace('_', ' ')}")
            lines.append(f"repro_daemon_{key}_total {_metric(daemon[key])}")
    queued = daemon.get("queued")
    if isinstance(queued, Mapping):
        gauge("repro_daemon_tenant_queue_depth", "queued ops per tenant")
        for name, depth in queued.items():
            lines.append(
                "repro_daemon_tenant_queue_depth"
                f'{{tenant="{_label(name)}"}} {_metric(depth)}'
            )
    loopwatch: Mapping[str, Any] = snapshot.get("loopwatch", {})
    counters: Mapping[str, Any] = loopwatch.get("counters", {})
    if counters:
        counter("repro_loopwatch_total", "instrumented event-loop counters")
        for name, value in sorted(counters.items()):
            short = name.removeprefix("loopwatch.")
            lines.append(
                f'repro_loopwatch_total{{counter="{_label(short)}"}} '
                f"{_metric(value)}"
            )
    gauges: Mapping[str, Any] = loopwatch.get("gauges", {})
    if gauges:
        gauge("repro_loopwatch_gauge", "instrumented event-loop gauges")
        for name, value in sorted(gauges.items()):
            short = name.removeprefix("loopwatch.")
            lines.append(
                f'repro_loopwatch_gauge{{gauge="{_label(short)}"}} '
                f"{_metric(value)}"
            )
    return "\n".join(lines) + "\n"
