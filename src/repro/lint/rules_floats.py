"""RL003 — float-hygiene in theorem-certification code.

The certification stack (``analysis/theory.py``, ``analysis/certify.py``
and everything under ``offline/``) turns measured spans into *verdicts*
about the paper's theorems.  An exact ``==`` / ``!=`` between
float-typed expressions there is a latent soundness bug: two
mathematically equal spans computed along different operation orders
differ in ULPs, silently flipping a certification.  The repo convention
is exact :class:`fractions.Fraction` arithmetic where the theorem
demands equality, or an explicit documented tolerance (``abs(a - b) <=
1e-12``) where rounding is accepted.

Float-typedness is inferred locally (annotations, float literals, true
division, ``math.*`` calls, known model attributes) — see
:class:`repro.lint.astutils.FloatTyper`.  Comparisons that are obviously
integral (``len(x) == 0``, int literals both sides) are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .astutils import FloatTyper, walk_functions
from .base import FileContext, Rule, register
from .findings import LintFinding

__all__ = ["FloatHygieneRule"]

_TARGET_SUFFIXES = (
    "analysis/theory.py",
    "analysis/certify.py",
)


def _in_scope(path: str) -> bool:
    norm = path.replace("\\", "/")
    if "/offline/" in norm:
        return True
    return any(norm.endswith(sfx) for sfx in _TARGET_SUFFIXES)


@register
class FloatHygieneRule(Rule):
    code = "RL003"
    name = "float-hygiene"
    severity = "error"
    description = (
        "exact ==/!= between float-typed expressions in theorem "
        "certification code; use Fraction or a documented tolerance"
    )

    def applies_to(self, path: str) -> bool:
        return _in_scope(path)

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        typer = FloatTyper(ctx.tree)
        seen: set[int] = set()
        for fn in walk_functions(ctx.tree):
            typer.prime(fn)
            for node in ast.walk(fn):
                if id(node) in seen or not isinstance(node, ast.Compare):
                    continue
                seen.add(id(node))
                yield from self._check_compare(ctx, typer, fn.name, node)
        # Module-level comparisons (rare but possible in constants).
        typer.reset()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare) and id(node) not in seen:
                yield from self._check_compare(ctx, typer, "<module>", node)

    def _check_compare(
        self,
        ctx: FileContext,
        typer: FloatTyper,
        symbol: str,
        node: ast.Compare,
    ) -> Iterator[LintFinding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # Skip None / string / bool sentinels.
            if _is_sentinel(left) or _is_sentinel(right):
                continue
            if typer.is_intlike(left) and typer.is_intlike(right):
                continue
            lf, rf = typer.is_float(left), typer.is_float(right)
            if not (lf or rf):
                continue
            if (lf and typer.is_intlike(right)) or (rf and typer.is_intlike(left)):
                # float vs int literal/len() — still exact, still flagged:
                # `laxity == 0` misses laxity == 5e-17 jitter.
                pass
            opname = "==" if isinstance(op, ast.Eq) else "!="
            yield self.finding(
                ctx,
                node,
                f"exact {opname} between float-typed expressions in "
                "certification code; compare Fractions or use a documented "
                "tolerance (abs(a - b) <= 1e-12)",
                symbol=symbol,
            )


def _is_sentinel(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None
        or isinstance(node.value, (str, bool))
    )
