"""Per-file fact extraction for the whole-program dataflow pass.

A :class:`FileSummary` is a pure-data snapshot of everything the
interprocedural analyses need to know about one module — no AST nodes,
no cross-references — so it can be pickled across the ``--jobs`` process
pool and cached on disk keyed by content hash.  The whole-program pass
(:mod:`repro.lint.dataflow.program`) then runs over summaries only.

Extraction is a single AST walk per function with a small origin-tag
fixpoint (the dataflow generalisation of
:func:`repro.lint.astutils.job_name_visitor`): every local name carries
a set of *origins* —

``("param", p)``
    derived from parameter ``p`` (aliases included);
``("job",)``
    intrinsically job-typed (``ctx.pending()`` loop targets,
    ``JobView``-annotated locals, job-ish lambda parameters);
``("attr", a)``
    derived from ``self.<a>`` (job-container attributes are resolved
    against the class hierarchy at program time);
``("runner",)``
    a :class:`repro.perf.ParallelRunner` (RL008 submission sites).

Constant values are folded at extraction (literals, unary/binary
arithmetic, a few ``math`` calls); names that cannot be folded locally
are recorded as ``ref`` descriptors and resolved against module-level
constants — across modules — by the program pass (RL009).
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "CallSite",
    "ClassSummary",
    "FileSummary",
    "FunctionSummary",
    "extract_summary",
    "fold_const",
    "module_name_for",
]

#: Annotations marking a parameter/local as job-typed.
_JOB_TYPES = {"JobView", "Job"}

#: ``ctx`` accessors whose elements are job views.
_JOB_LIST_CALLS = {"pending", "running"}

#: Clairvoyant attributes: reading any of these on a job is the taint source.
_TAINT_ATTRS = {"length", "with_length", "_lengths"}

#: Constructors producing a ParallelRunner.
_RUNNER_CTORS = {"ParallelRunner", "get_default_runner"}

#: Constructors producing an engine ``Simulator`` (the asyncsafety rules
#: treat a ``.run()`` on such a receiver as a whole-instance blocking
#: simulation, which must never run inline on the event loop).
_SIM_CTORS = {"Simulator"}

#: Sanctioned seeded-RNG constructors (shared with RL002's notion).
_SEEDED_OK = {
    "random.Random",
    "random.SystemRandom",
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.Generator",
    "numpy.random.Generator",
    "np.random.SeedSequence",
    "numpy.random.SeedSequence",
}

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}

#: Event-kind identifiers of the engine's raw-tuple heap (leading
#: underscores stripped, ``EventKind.`` prefixes reduced to the leaf).
_EVENT_KIND_NAMES = {
    "COMPLETION",
    "ASSIGN",
    "ARRIVAL",
    "DEADLINE",
    "TIMER",
    "ADVERSARY",
}

#: Receiver-mutating methods that count as *state* writes on the field
#: they are called through (``self._pending.pop(...)``).  Deliberately
#: excludes append/extend-style growth so trace/log buffers do not show
#: up as state fields.
_INDEX_MUTATORS = {
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "remove",
    "discard",
}

#: ``# parity: object-only`` / ``# parity: columnar-only`` (RL013).
_PARITY_RE = re.compile(r"#\s*parity:\s*(object-only|columnar-only)\b")

#: ``math`` functions folded during constant propagation.
_FOLDABLE_MATH = {
    "math.sqrt": math.sqrt,
    "math.log": math.log,
    "math.log2": math.log2,
    "math.log10": math.log10,
    "math.exp": math.exp,
    "math.floor": math.floor,
    "math.ceil": math.ceil,
    "math.fabs": math.fabs,
}


# ---------------------------------------------------------------------------
# Data model (JSON-native field types only)
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function."""

    callee: str  #: dotted name as written ("self._peek", "helpers.peek")
    lineno: int
    col: int
    args: list[dict[str, Any]]  #: positional argument descriptors
    kwargs: dict[str, dict[str, Any]]  #: keyword argument descriptors
    recv_runner: bool = False  #: receiver resolved to a ParallelRunner
    recv_sim: bool = False  #: receiver resolved to a Simulator
    awaited: bool = False  #: the call is the operand of an ``await``
    in_finally: bool = False  #: lexically inside a ``finally`` block


@dataclass
class FunctionSummary:
    """Facts about one function or method."""

    name: str  #: module-level qualname ("Cls.m", "f", "f.<locals>.g")
    lineno: int
    params: list[str]  #: positional parameter names, ``self`` included
    job_params: list[str]  #: heuristically job-typed parameters
    #: ``.length``/``.with_length``/``._lengths`` reads on param-derived
    #: names: ``[param, attr, lineno, col]``
    param_length_reads: list[list[Any]] = field(default_factory=list)
    #: reads on intrinsically job-typed names: ``[attr, lineno, col]``
    intrinsic_length_reads: list[list[Any]] = field(default_factory=list)
    #: reads on ``self.<a>``-derived names: ``[self_attr, attr, lineno, col]``
    attr_length_reads: list[list[Any]] = field(default_factory=list)
    #: ``self.<a>`` attributes assigned job-typed values in this function
    job_attr_stores: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: raise-guard derived parameter domains: ``[param, op, const, lineno]``
    guards: list[list[Any]] = field(default_factory=list)
    #: direct effects: ``[kind, detail, lineno]`` with kind in
    #: {"global_write", "rng", "clock"}
    effects: list[list[Any]] = field(default_factory=list)
    #: ``heappush`` sites: ``[heap_ref, [elt categories], lineno, col]``
    heap_pushes: list[list[Any]] = field(default_factory=list)
    returns_taint: bool = False  #: returns clairvoyant data directly
    #: callees whose return value this function returns (taint propagation)
    returns_call_of: list[str] = field(default_factory=list)
    nested: bool = False  #: defined inside another function
    free_vars: list[str] = field(default_factory=list)
    #: attribute-carried state writes (RL013/RL014): ``[field, value,
    #: lineno, col]`` for stores through ``<recv>.<field>`` /
    #: ``<recv>.<field>[...]`` and index-mutator calls
    #: (``<recv>.<field>.pop(...)``).  ``value`` is a ref leaf
    #: ("_RUNNING"), "now"/"now+" for clock-anchored values, "const",
    #: "aug" for augmented assignment, or ``None`` when unclassifiable.
    state_writes: list[list[Any]] = field(default_factory=list)
    #: ``raise Exc(...)`` sites: ``[exception name, lineno]``
    raises: list[list[Any]] = field(default_factory=list)
    #: ``self.<a>`` attributes read (Load context) anywhere in the body
    self_loads: list[str] = field(default_factory=list)
    #: event-queue pushes (RL016): ``[key desc, kind leaf, lineno, col]``
    #: from ``<q>.push(key, KIND, …)`` calls and raw ``(key, KIND, seq,
    #: payload)`` tuple literals whose kind slot names an event kind.
    push_keys: list[list[Any]] = field(default_factory=list)
    #: leaves proven ``>= now`` by a raise guard (``if x < now: raise``,
    #: vectorised ``late = xs < now; if late.any(): raise`` included)
    now_guards: list[str] = field(default_factory=list)
    #: clock writes ``<recv>._now = value``: ``[value desc, lineno]``
    now_writes: list[list[Any]] = field(default_factory=list)
    #: leaves assigned clock-anchored values (``x = now + dt``)
    now_anchored: list[str] = field(default_factory=list)
    #: locals bound to call results: ``[local, callee dotted name]``
    call_assigns: list[list[str]] = field(default_factory=list)
    is_async: bool = False  #: declared ``async def``
    #: ``create_task``/``ensure_future`` sites (RL018): ``[callee as
    #: written, spawned coroutine dotted name or None, handled, lineno,
    #: col]`` — ``handled`` is 0 when the returned task is discarded (a
    #: bare expression statement), 1 when it is stored, awaited, passed
    #: on, or chained into ``.add_done_callback``.
    spawns: list[list[Any]] = field(default_factory=list)
    #: ``await`` expressions inside ``finally`` blocks (RL020):
    #: ``[awaited desc, shielded, cancel_guarded, lineno, col]`` —
    #: ``shielded`` is 1 for ``await asyncio.shield(...)``;
    #: ``cancel_guarded`` is 1 when the owning ``try`` also has a
    #: ``CancelledError`` (or broader) handler, the hard-stop pattern.
    finally_awaits: list[list[Any]] = field(default_factory=list)


@dataclass
class ClassSummary:
    """Facts about one class definition."""

    name: str
    lineno: int
    bases: list[str]  #: base names as written (dotted allowed)
    #: literal class attributes (``name``, ``requires_clairvoyance``, …)
    class_attrs: dict[str, Any] = field(default_factory=dict)
    methods: dict[str, FunctionSummary] = field(default_factory=dict)
    #: ``self.<a>`` attributes assigned job-typed values anywhere in class
    job_attrs: list[str] = field(default_factory=list)


@dataclass
class FileSummary:
    """Everything the whole-program pass knows about one file."""

    path: str  #: path as reported in findings (scan-root relative)
    module: str  #: dotted module name ("repro.schedulers.cdb")
    imports: dict[str, str] = field(default_factory=dict)  #: alias -> fq name
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: module-level foldable constants: name -> const descriptor
    constants: dict[str, Any] = field(default_factory=dict)
    #: module-level dict literals mapping refs to refs (registries):
    #: name -> [[key descriptor, value descriptor], ...]
    registries: dict[str, list[list[Any]]] = field(default_factory=dict)
    #: line -> suppressed codes (mirrors FileContext.suppressions; "*" = all)
    suppressions: dict[str, list[str]] = field(default_factory=dict)
    #: module-level pure-literal dicts with string keys (decision
    #: vocabularies, parity field maps): name -> {"line": …, "items": {…}}
    dict_constants: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: ``# parity: object-only`` / ``# parity: columnar-only`` annotations
    #: (RL013): line number (as str) -> side tag
    parity_lines: dict[str, str] = field(default_factory=dict)

    # -- (de)serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FileSummary":
        def fn(d: dict[str, Any]) -> FunctionSummary:
            d = dict(d)
            d["calls"] = [CallSite(**c) for c in d.get("calls", [])]
            return FunctionSummary(**d)

        def klass(d: dict[str, Any]) -> ClassSummary:
            d = dict(d)
            d["methods"] = {k: fn(v) for k, v in d.get("methods", {}).items()}
            return ClassSummary(**d)

        d = dict(data)
        d["functions"] = {k: fn(v) for k, v in d.get("functions", {}).items()}
        d["classes"] = {k: klass(v) for k, v in d.get("classes", {}).items()}
        return cls(**d)

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(str(line))
        return codes is not None and ("*" in codes or code in codes)


# ---------------------------------------------------------------------------
# Module naming
# ---------------------------------------------------------------------------


def module_name_for(file: Path) -> str:
    """Dotted module name inferred from the filesystem package layout.

    Walks up from ``file`` while ``__init__.py`` markers are present, so
    ``src/repro/schedulers/cdb.py`` maps to ``repro.schedulers.cdb`` and a
    fixture package ``laundered_pkg/helpers.py`` to
    ``laundered_pkg.helpers``.
    """
    file = file.resolve()
    parts = [file.stem]
    parent = file.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:]
        if not parts:  # a bare __init__.py outside any package
            return file.parent.name
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def fold_const(node: ast.expr) -> dict[str, Any] | None:
    """Fold an expression to a constant descriptor, or ``None``.

    Descriptors: ``{"k": "num"|"str"|"none", "v": value}``,
    ``{"k": "ref", "v": dotted}`` for names resolvable only at program
    time, ``{"k": "tuple", "v": [elt descriptors (None allowed)]}``.
    Booleans fold to ``num`` (they order like integers).
    """
    if isinstance(node, ast.Constant):
        v = node.value
        if v is None:
            return {"k": "none", "v": None}
        if isinstance(v, bool):
            return {"k": "num", "v": int(v)}
        if isinstance(v, (int, float)):
            return {"k": "num", "v": v}
        if isinstance(v, str):
            return {"k": "str", "v": v}
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = fold_const(node.operand)
        if inner is not None and inner["k"] == "num":
            sign = -1 if isinstance(node.op, ast.USub) else 1
            return {"k": "num", "v": sign * inner["v"]}
        return None
    if isinstance(node, ast.BinOp):
        left, right = fold_const(node.left), fold_const(node.right)
        if (
            left is not None
            and right is not None
            and left["k"] == "num"
            and right["k"] == "num"
        ):
            a, b = left["v"], right["v"]
            try:
                if isinstance(node.op, ast.Add):
                    return {"k": "num", "v": a + b}
                if isinstance(node.op, ast.Sub):
                    return {"k": "num", "v": a - b}
                if isinstance(node.op, ast.Mult):
                    return {"k": "num", "v": a * b}
                if isinstance(node.op, ast.Div):
                    return {"k": "num", "v": a / b}
                if isinstance(node.op, ast.Pow):
                    return {"k": "num", "v": a**b}
            except (ZeroDivisionError, OverflowError, ValueError):
                return None
        return None
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in _FOLDABLE_MATH and len(node.args) == 1 and not node.keywords:
            arg = fold_const(node.args[0])
            if arg is not None and arg["k"] == "num":
                try:
                    return {"k": "num", "v": _FOLDABLE_MATH[name](arg["v"])}
                except (ValueError, OverflowError):
                    return None
        return None
    if isinstance(node, ast.Tuple):
        return {"k": "tuple", "v": [fold_const(e) for e in node.elts]}
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = _dotted(node)
        if dotted is not None:
            return {"k": "ref", "v": dotted}
    return None


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains; ``super.m`` for super() calls."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
        and parts
    ):
        parts.append("super")
        return ".".join(reversed(parts))
    return None


def _annotation_leaf(node: ast.expr | None) -> str | None:
    """Rightmost identifier of an annotation (Optional/union/str forms)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip().rsplit(".", 1)[-1].rstrip("]").strip('"')
    if isinstance(node, ast.Subscript):
        return _annotation_leaf(node.slice)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` — prefer the non-None side.
        left = _annotation_leaf(node.left)
        return left if left not in (None, "None") else _annotation_leaf(node.right)
    name = _dotted(node)
    if name is not None:
        return name.rsplit(".", 1)[-1]
    return None


def _is_now_ref(node: ast.expr) -> bool:
    """Is this expression the engine clock (``self._now`` / local ``now``)?"""
    if isinstance(node, ast.Attribute):
        return node.attr == "_now"
    return isinstance(node, ast.Name) and node.id == "now"


def _expr_leaf(node: ast.expr) -> str | None:
    """Rightmost identifying name: ``st.completion`` → "completion",
    ``arrival_l[i]`` → "arrival_l", ``when`` → "when"."""
    if isinstance(node, ast.Subscript):
        return _expr_leaf(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _value_desc(node: ast.expr) -> Any:
    """Classify an assigned/pushed value for the temporal rules.

    ``"now"`` (the clock itself), ``"now+"`` (an expression anchored on
    the clock), a ref leaf ("_RUNNING", "completion"), ``"const"`` for
    folded literals, or ``None``.
    """
    if _is_now_ref(node):
        return "now"
    if any(_is_now_ref(sub) for sub in ast.walk(node) if isinstance(sub, ast.expr)):
        return "now+"
    leaf = _expr_leaf(node)
    if leaf is not None:
        return leaf
    const = fold_const(node)
    if const is not None and const["k"] != "ref":
        return "const"
    return None


def _kind_leaf(node: ast.expr) -> str | None:
    """Normalised event-kind name of a ref (``_DEADLINE`` /
    ``EventKind.DEADLINE`` → "DEADLINE"), or ``None``."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    leaf = dotted.rsplit(".", 1)[-1].lstrip("_")
    return leaf if leaf in _EVENT_KIND_NAMES else None


# ---------------------------------------------------------------------------
# Per-function origin analysis
# ---------------------------------------------------------------------------

Origin = tuple  # ("param", n) | ("job",) | ("attr", n) | ("runner",) | ("sim",)

#: ``try`` statement node types (``except*`` groups included on 3.11+).
_TRY_NODES: tuple = (ast.Try, *((ast.TryStar,) if hasattr(ast, "TryStar") else ()))


class _FunctionAnalyzer:
    """Single-function dataflow: origin tags, reads, calls, effects."""

    def __init__(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        module_globals: set[str],
        nested: bool,
    ) -> None:
        self.fn = fn
        self.qualname = qualname
        self.module_globals = module_globals
        self.nested = nested
        self.origins: dict[str, set[Origin]] = {}
        self.locals: set[str] = set()
        self.globals_declared: set[str] = set()
        self._self_loads: set[str] = set()
        self._now_guards: set[str] = set()
        self._now_anchored: set[str] = set()
        self.out = FunctionSummary(
            name=qualname,
            lineno=fn.lineno,
            params=[],
            job_params=[],
            nested=nested,
            is_async=isinstance(fn, ast.AsyncFunctionDef),
        )
        #: ``Call`` node ids that are the direct operand of an ``await``.
        self._awaited_ids: set[int] = set()
        #: ``Call`` node ids whose result is discarded (bare ``Expr``).
        self._bare_expr_ids: set[int] = set()
        #: ``Call`` node ids lexically inside a ``finally`` block.
        self._finally_ids: set[int] = set()

    # -- origin helpers ------------------------------------------------------
    def _add_origin(self, name: str, origin: Origin) -> bool:
        bucket = self.origins.setdefault(name, set())
        if origin in bucket:
            return False
        bucket.add(origin)
        return True

    def origins_of(self, node: ast.expr) -> set[Origin]:
        if isinstance(node, ast.Name):
            return self.origins.get(node.id, set())
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return {("attr", node.attr)}
            return set()
        if isinstance(node, ast.Subscript):
            return self.origins_of(node.value)
        if isinstance(node, ast.Starred):
            return self.origins_of(node.value)
        if isinstance(node, ast.IfExp):
            return self.origins_of(node.body) | self.origins_of(node.orelse)
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is not None:
                leaf = name.rsplit(".", 1)[-1]
                if leaf in _JOB_LIST_CALLS:
                    return {("job",)}
                if leaf in _RUNNER_CTORS:
                    return {("runner",)}
                if leaf in _SIM_CTORS:
                    return {("sim",)}
                if leaf in ("list", "sorted", "tuple", "reversed", "iter", "next"):
                    if node.args:
                        return self.origins_of(node.args[0])
                if leaf in ("values", "keys", "items", "get", "copy"):
                    # self._pending.values() — origins of the receiver.
                    if isinstance(node.func, ast.Attribute):
                        return self.origins_of(node.func.value)
        return set()

    def _is_job_valued(self, node: ast.expr) -> bool:
        """Does ``node`` plausibly evaluate to a job object/container?"""
        for origin in self.origins_of(node):
            if origin[0] == "job":
                return True
            if origin[0] == "param" and origin[1] in self.out.job_params:
                return True
            if origin[0] == "attr":
                # Conservative: only attrs known to hold jobs count, which
                # is resolved at program time; record the store anyway.
                return False
        return False

    def _bind_target(self, target: ast.expr, origins: set[Origin]) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            for origin in origins:
                changed |= self._add_origin(target.id, origin)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                changed |= self._bind_target(elt, origins)
        elif isinstance(target, ast.Starred):
            changed |= self._bind_target(target.value, origins)
        return changed

    # -- main entry ----------------------------------------------------------
    def run(self) -> FunctionSummary:
        self._seed_params()
        self._collect_locals()
        self._origin_fixpoint()
        self._collect_async_contexts()
        self._scan_body()
        self._derive_guards()
        self.out.self_loads = sorted(self._self_loads)
        self.out.now_guards = sorted(self._now_guards)
        self.out.now_anchored = sorted(self._now_anchored)
        self.out.free_vars = sorted(self._free_vars()) if self.nested else []
        return self.out

    def _seed_params(self) -> None:
        args = self.fn.args
        ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        extras = [a for a in (args.vararg, args.kwarg) if a is not None]
        for a in ordered:
            self.out.params.append(a.arg)
        for a in [*ordered, *extras]:
            self.locals.add(a.arg)
            self._add_origin(a.arg, ("param", a.arg))
            leaf = _annotation_leaf(a.annotation)
            if a.arg not in ("self", "ctx") and (leaf in _JOB_TYPES or a.arg == "job"):
                self.out.job_params.append(a.arg)
                self._add_origin(a.arg, ("job",))
            if leaf == "ParallelRunner":
                self._add_origin(a.arg, ("runner",))
            if leaf in _SIM_CTORS:
                self._add_origin(a.arg, ("sim",))

    def _collect_locals(self) -> None:
        for node in self._walk_own():
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    for leaf_node in ast.walk(t):
                        if isinstance(leaf_node, ast.Name) and isinstance(
                            leaf_node.ctx, (ast.Store, ast.Del)
                        ):
                            self.locals.add(leaf_node.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for leaf_node in ast.walk(node.target):
                    if isinstance(leaf_node, ast.Name):
                        self.locals.add(leaf_node.id)
            elif isinstance(node, ast.comprehension):
                for leaf_node in ast.walk(node.target):
                    if isinstance(leaf_node, ast.Name):
                        self.locals.add(leaf_node.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for leaf_node in ast.walk(item.optional_vars):
                            if isinstance(leaf_node, ast.Name):
                                self.locals.add(leaf_node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.locals.add(node.name)

    def _walk_own(self) -> Iterator[ast.AST]:
        """Walk the function body, *excluding* nested function bodies."""
        stack: list[ast.AST] = list(self.fn.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # summarised separately
            if isinstance(node, ast.Lambda):
                # lambdas are analysed inline (sort keys read job attrs)
                stack.extend(ast.iter_child_nodes(node))
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _origin_fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in self._walk_own():
                if isinstance(node, ast.Assign):
                    origins = self.origins_of(node.value)
                    if origins:
                        for t in node.targets:
                            changed |= self._bind_target(t, origins)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    origins = set(self.origins_of(node.value))
                    if _annotation_leaf(node.annotation) in _JOB_TYPES:
                        origins.add(("job",))
                    if _annotation_leaf(node.annotation) == "ParallelRunner":
                        origins.add(("runner",))
                    if _annotation_leaf(node.annotation) in _SIM_CTORS:
                        origins.add(("sim",))
                    if origins:
                        changed |= self._bind_target(node.target, origins)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    origins = self.origins_of(node.iter)
                    if origins:
                        changed |= self._bind_target(node.target, origins)
                elif isinstance(node, ast.comprehension):
                    origins = self.origins_of(node.iter)
                    if origins:
                        changed |= self._bind_target(node.target, origins)
                elif isinstance(node, ast.Lambda):
                    for a in node.args.args:
                        if a.arg in ("job", "j", "jv"):
                            changed |= self._add_origin(a.arg, ("job",))

    # -- async contexts ------------------------------------------------------
    @staticmethod
    def _walk_shallow(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested ``def``s."""
        stack: list[ast.AST] = list(stmts)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _catches_cancel(handlers: list[ast.ExceptHandler]) -> bool:
        """Does any handler catch ``CancelledError`` (or broader)?

        A ``try`` whose cancellation path is intercepted before the
        ``finally`` runs implements the daemon's hard-stop pattern: on
        cancel, the handler flips the drain/abort flags so the guarded
        cleanup awaits in ``finally`` are skipped or bounded.
        """
        for h in handlers:
            if h.type is None:
                return True
            types = h.type.elts if isinstance(h.type, ast.Tuple) else [h.type]
            for t in types:
                leaf = _expr_leaf(t)
                # ``except Exception`` does *not* catch CancelledError
                # (it derives from BaseException), so it does not count.
                if leaf in ("CancelledError", "BaseException"):
                    return True
        return False

    def _collect_async_contexts(self) -> None:
        """Record await/discard/finally contexts for the body scan.

        :meth:`_walk_own` yields nodes without parent links, so the
        per-call facts the asyncsafety rules need (is this call awaited?
        discarded? inside a ``finally``?) are precomputed here as node-id
        sets, and ``finally``-block awaits are summarised directly.
        """
        for node in self._walk_own():
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                self._awaited_ids.add(id(node.value))
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                self._bare_expr_ids.add(id(node.value))
            elif isinstance(node, _TRY_NODES):
                guarded = self._catches_cancel(node.handlers)
                for sub in self._walk_shallow(node.finalbody):
                    if isinstance(sub, ast.Call):
                        self._finally_ids.add(id(sub))
                    elif isinstance(sub, ast.Await):
                        self._record_finally_await(sub, guarded)

    def _record_finally_await(self, node: ast.Await, guarded: bool) -> None:
        value = node.value
        shielded = False
        desc = "<expr>"
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee is not None:
                desc = callee
                if callee.rsplit(".", 1)[-1] == "shield":
                    shielded = True
        else:
            leaf = _dotted(value)
            if leaf is not None:
                desc = leaf
        self.out.finally_awaits.append(
            [desc, int(shielded), int(guarded), node.lineno, node.col_offset]
        )

    # -- body scan ----------------------------------------------------------
    def _scan_body(self) -> None:
        for node in self._walk_own():
            if isinstance(node, ast.Attribute):
                self._scan_attribute(node)
            elif isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._scan_return(node.value)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._scan_store(node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._scan_state_write(node.target, node.value, node, False)
            elif isinstance(node, ast.Raise):
                self._scan_raise(node)
            elif isinstance(node, ast.Tuple):
                self._scan_event_tuple(node)

    def _scan_attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            self._self_loads.add(node.attr)
        if node.attr not in _TAINT_ATTRS:
            return
        if node.attr == "length" and not isinstance(node.ctx, ast.Load):
            return
        value = node.value
        # ``Job._lengths`` / ``Instance._lengths``: adversary-committed
        # lengths — an unconditional clairvoyant source.
        if node.attr == "_lengths":
            self.out.intrinsic_length_reads.append(
                ["_lengths", node.lineno, node.col_offset]
            )
            return
        origins = self.origins_of(value)
        recorded = False
        for origin in origins:
            if origin[0] == "param":
                self.out.param_length_reads.append(
                    [origin[1], node.attr, node.lineno, node.col_offset]
                )
                recorded = True
            elif origin[0] == "attr":
                self.out.attr_length_reads.append(
                    [origin[1], node.attr, node.lineno, node.col_offset]
                )
                recorded = True
        if not recorded and ("job",) in origins:
            self.out.intrinsic_length_reads.append(
                [node.attr, node.lineno, node.col_offset]
            )

    def _describe_arg(self, arg: ast.expr) -> dict[str, Any]:
        const = fold_const(arg)
        if const is not None and const["k"] != "ref":
            return {"kind": "const", "const": const}
        if isinstance(arg, ast.Lambda):
            free = self._lambda_free_vars(arg)
            return {"kind": "lambda", "free": sorted(free), "lineno": arg.lineno}
        origins = self.origins_of(arg)
        for origin in origins:
            if origin[0] == "param":
                job = ("job",) in origins or origin[1] in self.out.job_params
                return {"kind": "param", "param": origin[1], "job": job}
        if ("job",) in origins:
            return {"kind": "job"}
        for origin in origins:
            if origin[0] == "attr":
                return {"kind": "attr", "attr": origin[1]}
        if const is not None:  # a ref
            return {"kind": "ref", "ref": const["v"]}
        return {"kind": "other"}

    def _scan_call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)
        if callee is None:
            return
        # RL008 receiver typing for <runner>.map/<runner>.starmap
        recv_runner = False
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "map",
            "starmap",
        ):
            recv_origins = self.origins_of(node.func.value)
            recv_runner = ("runner",) in recv_origins
        # RL017 receiver typing for <sim>.run(): a whole-instance
        # simulation on a Simulator-origin receiver.
        recv_sim = False
        if isinstance(node.func, ast.Attribute) and node.func.attr == "run":
            recv_sim = ("sim",) in self.origins_of(node.func.value)
        args = [self._describe_arg(a) for a in node.args if not isinstance(a, ast.Starred)]
        kwargs = {
            kw.arg: self._describe_arg(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        self.out.calls.append(
            CallSite(
                callee=callee,
                lineno=node.lineno,
                col=node.col_offset,
                args=args,
                kwargs=kwargs,
                recv_runner=recv_runner,
                recv_sim=recv_sim,
                awaited=id(node) in self._awaited_ids,
                in_finally=id(node) in self._finally_ids,
            )
        )
        # Task spawns (RL018): record whether the returned handle is kept.
        leaf = callee.rsplit(".", 1)[-1]
        if leaf in ("create_task", "ensure_future"):
            spawned: str | None = None
            if node.args and isinstance(node.args[0], ast.Call):
                spawned = _dotted(node.args[0].func)
            handled = 0 if id(node) in self._bare_expr_ids else 1
            self.out.spawns.append(
                [callee, spawned, handled, node.lineno, node.col_offset]
            )
        # Effects: unseeded RNG / wall clocks.
        if callee in _SEEDED_OK:
            return
        if (
            callee.startswith("random.")
            or callee.startswith("np.random.")
            or callee.startswith("numpy.random.")
        ):
            self.out.effects.append(["rng", callee, node.lineno])
        elif callee in _CLOCK_CALLS:
            self.out.effects.append(["clock", callee, node.lineno])
        # Global mutation through a method call (CACHE.append(...)).
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATOR_METHODS:
            recv = node.func.value
            if (
                isinstance(recv, ast.Name)
                and recv.id in self.module_globals
                and recv.id not in self.locals
            ):
                self.out.effects.append(
                    ["global_write", f"{recv.id}.{node.func.attr}()", node.lineno]
                )
        # heappush key shape (RL010).
        leaf = callee.rsplit(".", 1)[-1]
        if leaf == "heappush" and len(node.args) == 2:
            heap_ref = _dotted(node.args[0]) or "<expr>"
            key = node.args[1]
            if isinstance(key, ast.Tuple):
                cats = [self._key_category(e) for e in key.elts]
                self.out.heap_pushes.append(
                    [heap_ref, cats, node.lineno, node.col_offset]
                )
        # Event-queue pushes whose kind slot names an event kind
        # (``queue.push(time, EventKind.DEADLINE, payload)``) — the key
        # description feeds RL016, the kind feeds the RL013 parity model.
        if leaf == "push" and len(node.args) >= 2:
            kind = _kind_leaf(node.args[1])
            if kind is not None:
                self.out.push_keys.append(
                    [_value_desc(node.args[0]), kind, node.lineno, node.col_offset]
                )
        # Index-structure mutation through an attribute receiver
        # (``self._running.pop(jid, None)``, ``self._pending.update(...)``)
        # is a state write in the RL013 parity model.  Bare-Name receivers
        # (hoisted locals) are deliberately out of scope.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _INDEX_MUTATORS
            and isinstance(node.func.value, ast.Attribute)
        ):
            self.out.state_writes.append(
                [node.func.value.attr, None, node.lineno, node.col_offset]
            )

    @staticmethod
    def _key_category(node: ast.expr) -> str:
        const = fold_const(node)
        if const is None:
            if isinstance(node, (ast.Dict, ast.Set)):
                # dicts/sets define no ordering: `<` raises even between
                # two dicts, so any tie ahead of this slot is fatal.
                return "unorderable"
            return "unknown"
        if const["k"] == "num":
            return "num"
        if const["k"] == "str":
            return "str"
        if const["k"] == "none":
            return "none"
        return "unknown"

    def _scan_return(self, value: ast.expr) -> None:
        for node in ast.walk(value):
            if isinstance(node, ast.Attribute) and node.attr in _TAINT_ATTRS:
                origins = self.origins_of(node.value)
                if (
                    node.attr == "_lengths"
                    or ("job",) in origins
                    or any(o[0] in ("param", "attr") for o in origins)
                ):
                    self.out.returns_taint = True
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee is not None:
                self.out.returns_call_of.append(callee)

    def _scan_store(self, node: ast.Assign | ast.AugAssign) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        is_aug = isinstance(node, ast.AugAssign)
        job_valued = self._is_job_valued(value)
        for t in targets:
            self._scan_state_write(t, value, node, is_aug)
            # self.X = job / self.X[...] = job  → job-container attribute.
            attr_node: ast.Attribute | None = None
            if isinstance(t, ast.Attribute):
                attr_node = t
            elif isinstance(t, ast.Subscript) and isinstance(t.value, ast.Attribute):
                attr_node = t.value
            if (
                attr_node is not None
                and isinstance(attr_node.value, ast.Name)
                and attr_node.value.id == "self"
                and job_valued
            ):
                if attr_node.attr not in self.out.job_attr_stores:
                    self.out.job_attr_stores.append(attr_node.attr)
            # Global writes: ``global X; X = …`` or ``X[k] = …`` on a module
            # global that is never bound locally.
            if isinstance(t, ast.Name):
                if t.id in self.globals_declared and t.id in self.module_globals:
                    self.out.effects.append(
                        ["global_write", f"{t.id} = ...", node.lineno]
                    )
            elif isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                base = t.value.id
                if (
                    base in self.module_globals
                    and base not in self.locals
                    and base not in ("self",)
                ):
                    self.out.effects.append(
                        ["global_write", f"{base}[...] = ...", node.lineno]
                    )

    def _scan_state_write(
        self,
        target: ast.expr,
        value: ast.expr,
        node: ast.stmt,
        is_aug: bool,
    ) -> None:
        desc: Any = "aug" if is_aug else _value_desc(value)
        # Clock-anchored bindings: ``completion = self._now + length`` /
        # ``st.completion = self._now + st.length`` — the bound leaf is a
        # provably current-or-future time (RL016).
        if not is_aug and desc in ("now", "now+"):
            leaf = _expr_leaf(target)
            if leaf is not None:
                self._now_anchored.add(leaf)
        # Call-derived locals: ``when = self._decision_times(...)`` — the
        # callee's own guards can vouch for the local (RL016).
        if not is_aug and isinstance(target, ast.Name) and isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee is not None:
                self.out.call_assigns.append([target.id, callee])
        # Attribute-rooted state writes: ``st.completed = True``,
        # ``table.state[idx] = _RUNNING``, ``self._pending[jid] = st``.
        # Bare-Name receivers (hoisted column locals) are out of scope.
        attr_node: ast.Attribute | None = None
        if isinstance(target, ast.Attribute):
            attr_node = target
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            attr_node = target.value
        if attr_node is None:
            return
        if attr_node.attr == "_now" and isinstance(target, ast.Attribute):
            self.out.now_writes.append([desc, node.lineno])
            return
        self.out.state_writes.append(
            [attr_node.attr, desc, node.lineno, node.col_offset]
        )

    def _scan_raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if exc is None:
            return
        target: ast.expr = exc.func if isinstance(exc, ast.Call) else exc
        name = _expr_leaf(target)
        if name is not None:
            self.out.raises.append([name, node.lineno])

    def _scan_event_tuple(self, node: ast.Tuple) -> None:
        """Raw event tuples ``(time, KIND, …)`` built for ``EventQueue.extend``
        or bulk heapify carry the same key/kind shape as an explicit push."""
        if len(node.elts) < 3 or not isinstance(node.ctx, ast.Load):
            return
        kind = _kind_leaf(node.elts[1])
        if kind is None or _kind_leaf(node.elts[0]) is not None:
            # A kind in the key slot means this is a tuple *of* kinds
            # (e.g. a dispatch table), not an event with a time key.
            return
        self.out.push_keys.append(
            [_value_desc(node.elts[0]), kind, node.lineno, node.col_offset]
        )

    # -- guards --------------------------------------------------------------
    def _derive_guards(self) -> None:
        """``if <param> <op> <const>: raise …`` → parameter-domain guard;
        ``if <x> < now: raise`` (scalar, or vectorised through a boolean
        compare local like ``past = completions < now``) → clock guard."""
        params = set(self.out.params)
        # Map vectorised guard locals to the leaves they compare to the clock.
        compare_locals: dict[str, list[str]] = {}
        for node in self._walk_own():
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Compare):
                guarded = self._now_compare_leaves(node.value)
                if guarded:
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            compare_locals[t.id] = guarded
        for node in self._walk_own():
            if not isinstance(node, ast.If):
                continue
            if not any(isinstance(s, ast.Raise) for s in node.body):
                continue
            for test in self._guard_atoms(node.test):
                guard = self._guard_from_compare(test, params)
                if guard is not None:
                    self.out.guards.append([*guard, node.lineno])
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Compare):
                    self._now_guards.update(self._now_compare_leaves(sub))
                elif isinstance(sub, ast.Name) and sub.id in compare_locals:
                    self._now_guards.update(compare_locals[sub.id])

    @staticmethod
    def _now_compare_leaves(test: ast.Compare) -> list[str]:
        """Leaves compared directly against the clock (either side)."""
        if len(test.ops) != 1 or len(test.comparators) != 1:
            return []
        left, right = test.left, test.comparators[0]
        out: list[str] = []
        if _is_now_ref(right):
            leaf = _expr_leaf(left)
            if leaf is not None:
                out.append(leaf)
        if _is_now_ref(left):
            leaf = _expr_leaf(right)
            if leaf is not None:
                out.append(leaf)
        return out

    @staticmethod
    def _guard_atoms(test: ast.expr) -> list[ast.Compare]:
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            return [v for v in test.values if isinstance(v, ast.Compare)]
        if isinstance(test, ast.Compare):
            return [test]
        return []

    @staticmethod
    def _guard_from_compare(
        test: ast.Compare, params: set[str]
    ) -> tuple[str, str, float] | None:
        if len(test.ops) != 1 or len(test.comparators) != 1:
            return None
        op_names = {
            ast.Lt: "<",
            ast.LtE: "<=",
            ast.Gt: ">",
            ast.GtE: ">=",
            ast.Eq: "==",
            ast.NotEq: "!=",
        }
        op = op_names.get(type(test.ops[0]))
        if op is None:
            return None
        left, right = test.left, test.comparators[0]
        lc, rc = fold_const(left), fold_const(right)
        if (
            isinstance(left, ast.Name)
            and left.id in params
            and rc is not None
            and rc["k"] == "num"
        ):
            return (left.id, op, float(rc["v"]))
        if (
            isinstance(right, ast.Name)
            and right.id in params
            and lc is not None
            and lc["k"] == "num"
        ):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
            return (right.id, flipped[op], float(lc["v"]))
        return None

    # -- free variables ------------------------------------------------------
    def _free_vars(self) -> set[str]:
        import builtins

        loaded: set[str] = set()
        for node in self._walk_own():
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
        bound = self.locals | self.globals_declared | self.module_globals
        return {
            n
            for n in loaded
            if n not in bound and not hasattr(builtins, n)
        }

    def _lambda_free_vars(self, node: ast.Lambda) -> set[str]:
        import builtins

        params = {a.arg for a in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]}
        loaded = {
            n.id
            for n in ast.walk(node.body)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
        return {
            n
            for n in loaded - params
            if n not in self.module_globals and not hasattr(builtins, n)
        }


# ---------------------------------------------------------------------------
# File-level extraction
# ---------------------------------------------------------------------------


def _resolve_import_from(
    node: ast.ImportFrom, module: str, is_package: bool
) -> Iterator[tuple[str, str]]:
    if node.level == 0:
        base = node.module or ""
    else:
        # Relative import: resolve against the containing package.  For a
        # package ``__init__`` the module *is* the package; for a plain
        # module the package is its parent.
        pkg_parts = module.split(".") if is_package else module.split(".")[:-1]
        if node.level > 1:
            pkg_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
        base = ".".join(pkg_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
    for alias in node.names:
        if alias.name == "*":
            continue
        local = alias.asname or alias.name
        fq = f"{base}.{alias.name}" if base else alias.name
        yield local, fq


def _extract_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    prefix: str,
    module_globals: set[str],
    nested: bool,
    sink: dict[str, FunctionSummary],
) -> FunctionSummary:
    qualname = f"{prefix}{fn.name}" if prefix else fn.name
    summary = _FunctionAnalyzer(fn, qualname, module_globals, nested).run()
    # Nested defs become separate (module-level keyed) summaries.
    for node in ast.iter_child_nodes(fn):
        _extract_nested(node, f"{qualname}.<locals>.", module_globals, sink)
    return summary


def _extract_nested(
    node: ast.AST,
    prefix: str,
    module_globals: set[str],
    sink: dict[str, FunctionSummary],
) -> None:
    stack: list[ast.AST] = [node]
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = _extract_function(child, prefix, module_globals, True, sink)
            sink[inner.name] = inner
            continue  # _extract_function recurses for deeper nesting
        stack.extend(ast.iter_child_nodes(child))


def extract_summary(
    path: str,
    source: str,
    tree: ast.Module,
    module: str,
    suppressions: dict[int, set[str]] | None = None,
) -> FileSummary:
    """Extract the whole-program facts of one parsed file."""
    out = FileSummary(path=path, module=module)
    is_package = Path(path).name == "__init__.py"
    if suppressions:
        out.suppressions = {
            str(line): sorted(codes) for line, codes in suppressions.items()
        }

    # Parity annotations: ``# parity: object-only`` / ``columnar-only``
    # declare a deliberate one-core state write for RL013.
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _PARITY_RE.search(line)
        if m is not None:
            out.parity_lines[str(lineno)] = m.group(1)

    # Pass 0: module-level names (globals) for effect/closure analysis.
    module_globals: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    module_globals.add(t.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            module_globals.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            module_globals.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                module_globals.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    module_globals.add(alias.asname or alias.name)

    # Pass 1: imports, constants, registries, functions, classes.
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = (alias.asname or alias.name).split(".")[0]
                fq = alias.name if alias.asname is None else alias.name
                out.imports[local] = fq.split(".")[0] if alias.asname is None else fq
        elif isinstance(node, ast.ImportFrom):
            for local, fq in _resolve_import_from(node, module, is_package):
                out.imports[local] = fq
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                _record_module_binding(out, target.id, node.value, node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                _record_module_binding(out, node.target.id, node.value, node.lineno)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary = _extract_function(node, "", module_globals, False, out.functions)
            out.functions[summary.name] = summary
        elif isinstance(node, ast.ClassDef):
            out.classes[node.name] = _extract_class(node, module_globals, out.functions)
    return out


def _record_module_binding(
    out: FileSummary, name: str, value: ast.expr, lineno: int
) -> None:
    if isinstance(value, ast.Dict):
        entries: list[list[Any]] = []
        has_ref = False
        items: dict[str, Any] = {}
        all_const = bool(value.keys)
        for k, v in zip(value.keys, value.values):
            if k is None:
                all_const = False
                continue
            kd = fold_const(k)
            vd = fold_const(v)
            if vd is not None and vd["k"] == "ref":
                has_ref = True
            entries.append([kd, vd])
            if (
                kd is not None
                and kd["k"] == "str"
                and vd is not None
                and vd["k"] in ("num", "str", "none")
            ):
                items[kd["v"]] = vd["v"]
            else:
                all_const = False
        if has_ref:
            out.registries[name] = entries
        elif all_const:
            # Fully-literal str-keyed dicts (e.g. the decision-rule
            # vocabulary) feed RL015's closed-vocabulary check.
            out.dict_constants[name] = {"line": lineno, "items": items}
        return
    const = fold_const(value)
    if const is not None and const["k"] in ("num", "str", "none", "ref"):
        out.constants[name] = const


def _extract_class(
    cls: ast.ClassDef,
    module_globals: set[str],
    fn_sink: dict[str, FunctionSummary],
) -> ClassSummary:
    summary = ClassSummary(name=cls.name, lineno=cls.lineno, bases=[])
    for base in cls.bases:
        dotted = _dotted(base)
        if dotted is not None:
            summary.bases.append(dotted)
    job_attrs: set[str] = set()
    for node in cls.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name):
                const = fold_const(node.value)
                if const is not None and const["k"] in ("num", "str", "none"):
                    summary.class_attrs[t.id] = const["v"]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                const = fold_const(node.value)
                if const is not None and const["k"] in ("num", "str", "none"):
                    summary.class_attrs[node.target.id] = const["v"]
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _extract_function(
                node, f"{cls.name}.", module_globals, False, fn_sink
            )
            summary.methods[node.name] = method
            job_attrs.update(method.job_attr_stores)
    summary.job_attrs = sorted(job_attrs)
    return summary
