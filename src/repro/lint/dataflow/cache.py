"""Incremental analysis cache for ``python -m repro lint``.

The per-file phase (parse → per-file rules → :class:`FileSummary`
extraction) is the expensive part of a lint run; the whole-program pass
consumes *summaries only* and is cheap to re-run.  So the cache stores,
per scanned file, a content-hash-keyed record of

* the per-file findings (as dicts, replayable without re-parsing),
* the number of findings dropped by inline suppressions,
* the :class:`FileSummary` feeding the whole-program pass.

A second run over an unchanged tree therefore re-analyzes **zero**
files while still producing byte-identical reports — including the
whole-program RL007–RL010 findings, which are recomputed from cached
summaries every run (they are inherently cross-file, so per-file keying
cannot memoise them soundly, but they cost milliseconds).

The key is ``sha256(salt · ruleset digest · file bytes)``: the salt
embeds the cache schema version, so any format change invalidates
cleanly, and the ruleset digest hashes both the active rule *codes*
(``--select RL003`` runs never replay findings from a different rule
set) and the active rules' *source text* via :func:`ruleset_digest`, so
editing a rule's logic — not just adding or removing a rule — discards
stale per-file records.  Corrupt or version-skewed cache files are
discarded silently — the cache is an accelerator, never a source of
truth.

CI persists ``.repro_lint_cache/`` between runs keyed on the source
hashes (see ``.github/workflows/ci.yml``), which keeps the lint gate
comfortably inside its wall-time budget as the tree grows.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["AnalysisCache", "default_cache_path", "file_key", "ruleset_digest"]

#: Bump when the summary schema, finding replay format, or lint scope
#: constants change (scope fragments feed rule applicability, which a
#: stale cache would otherwise keep serving from the old scope).
CACHE_VERSION = 4

#: Directory name used by the CLI default (gitignored).
CACHE_DIR_NAME = ".repro_lint_cache"


def default_cache_path() -> Path:
    """Default on-disk cache location: ``./.repro_lint_cache/cache.json``."""
    return Path(CACHE_DIR_NAME) / "cache.json"


def ruleset_digest(rules: list[Any]) -> str:
    """Digest of the active rule set: codes *and* implementation source.

    Hashing each rule class's source text (via :func:`inspect.getsource`)
    means editing a rule's logic invalidates every cached per-file record
    keyed under the old behaviour — the failure mode where a cached
    "clean" verdict survives a rule rewrite.  Rules whose source cannot
    be recovered (REPL-defined test doubles) degrade to their code alone,
    which keeps the digest total rather than raising.
    """
    h = hashlib.sha256()
    for rule in sorted(rules, key=lambda r: r.code):
        h.update(rule.code.encode())
        h.update(b"\x00")
        try:
            h.update(inspect.getsource(type(rule)).encode())
        except (OSError, TypeError):  # pragma: no cover - synthetic rules
            pass
        h.update(b"\x00")
    return h.hexdigest()


def file_key(content: bytes, rule_codes: list[str], digest: str = "") -> str:
    """Content hash keying one file's analysis record.

    Embeds the schema version, the active rule-code set, and the
    ruleset source digest so stale records can never replay across
    analyzer, selection, or rule-implementation changes.
    """
    h = hashlib.sha256()
    h.update(f"repro-lint:{CACHE_VERSION}:".encode())
    h.update(",".join(sorted(rule_codes)).encode())
    h.update(b":")
    h.update(digest.encode())
    h.update(b":")
    h.update(content)
    return h.hexdigest()


class AnalysisCache:
    """Disk-backed map ``relative path -> {key, findings, …}``.

    The cache never invalidates the report: on a key mismatch the file
    is simply re-analyzed and the record replaced.  ``hits``/``misses``
    feed the ``files_reanalyzed`` statistic asserted by the incremental
    tests.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    # -- persistence --------------------------------------------------------
    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def save(self) -> None:
        """Atomically persist the cache (best effort; failures ignored)."""
        if not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "entries": self.entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=".cache-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, sort_keys=True)
                os.replace(tmp, self.path)
            finally:
                if os.path.exists(tmp):  # pragma: no cover - error path
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
            self._dirty = False
        except OSError:  # pragma: no cover - read-only CI scratch etc.
            pass

    # -- record access ------------------------------------------------------
    def get(self, rel_path: str, key: str) -> dict[str, Any] | None:
        """The cached record for ``rel_path`` iff its key matches."""
        entry = self.entries.get(rel_path)
        if entry is not None and entry.get("key") == key:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(
        self,
        rel_path: str,
        key: str,
        *,
        findings: list[dict[str, Any]],
        suppressed: int,
        summary: dict[str, Any] | None,
    ) -> None:
        self.entries[rel_path] = {
            "key": key,
            "findings": findings,
            "suppressed": suppressed,
            "summary": summary,
        }
        self._dirty = True

    def prune(self, live_paths: set[str]) -> None:
        """Drop records for files no longer in the scan set."""
        dead = [p for p in self.entries if p not in live_paths]
        for p in dead:
            del self.entries[p]
            self._dirty = True
