"""Whole-program rules RL007–RL010.

Each rule receives the assembled :class:`~repro.lint.dataflow.Program`
and reports findings through the ordinary
fingerprint/baseline/suppression machinery.  Rule docstrings double as
the ``python -m repro lint --explain RLxxx`` payload, so every rule
documents its rationale and a minimal offending/clean snippet pair.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..base import ProgramRule, register
from ..findings import LintFinding
from .program import Program, Witness
from .summary import FileSummary, FunctionSummary

__all__ = [
    "CrossModuleClairvoyanceTaint",
    "HeapKeyTypeMix",
    "ParameterDomainViolation",
    "PoolUnsafeWork",
]

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _leaf(fq: str) -> str:
    return fq.rsplit(".", 1)[-1]


@register
class CrossModuleClairvoyanceTaint(ProgramRule):
    """RL007 — the whole-program upgrade of RL001.

    Why
    ---
    The paper's non-clairvoyant model (§3, Theorems 3.3–3.5) forbids a
    scheduler with ``requires_clairvoyance = False`` from observing
    ``job.length`` before the job completes.  RL001 proves this per
    file, but a helper in *another module* that reads or returns the
    length launders the leak invisibly.  RL007 tracks clairvoyant taint
    through the cross-module call graph: function returns, job-valued
    arguments, ``self`` attributes holding jobs, and registry-resolved
    methods.

    Offending
    ---------
    ::

        # helpers.py
        def peek(job):
            return job.length          # taints any caller

        # sched.py
        from . import helpers

        class Sneaky(OnlineScheduler):
            requires_clairvoyance = False

            def on_arrival(self, ctx, job):
                if helpers.peek(job) > 2:   # RL007: cross-module leak
                    ctx.start(job)

    Clean
    -----
    ::

        class Honest(OnlineScheduler):
            requires_clairvoyance = False

            def on_completion(self, ctx, job):
                self.observed[job.id] = job.length  # post-completion OK
    """

    code = "RL007"
    name = "cross-module-clairvoyance-taint"
    severity = "error"
    description = (
        "non-clairvoyant scheduler reaches a pre-completion job.length "
        "read through the whole-program call graph"
    )

    def check_program(self, program: Program) -> Iterator[LintFinding]:
        seen: set[tuple[str, int, int, str]] = set()
        for cls_fq in program.scheduler_classes():
            if program.requires_clairvoyance(cls_fq):
                continue
            job_attrs = program.job_attrs(cls_fq)
            for (owner, mname), (fn, jctx) in sorted(
                program.pre_completion_reach(cls_fq).items()
            ):
                fqid = f"{owner}.{mname}"
                fs, _cls = program.fn_context[fqid]
                symbol = f"{_leaf(owner)}.{mname}"
                for finding in self._method_findings(
                    program, cls_fq, fs, fn, jctx, job_attrs, symbol
                ):
                    key = (finding.path, finding.line, finding.col, finding.message)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield finding

    def _method_findings(
        self,
        program: Program,
        cls_fq: str,
        fs: FileSummary,
        fn: FunctionSummary,
        jctx: set[str],
        job_attrs: set[str],
        symbol: str,
    ) -> Iterator[LintFinding]:
        cname = _leaf(cls_fq)
        # (1) direct reads of job-context parameters.
        for p, attr, line, col in fn.param_length_reads:
            if p in jctx:
                yield self.program_finding(
                    fs.path,
                    line,
                    col,
                    f"non-clairvoyant scheduler '{cname}' reads {p}.{attr} "
                    "before completion",
                    symbol,
                )
        # (2) reads on intrinsically job-typed values (ctx.pending() etc.).
        for attr, line, col in fn.intrinsic_length_reads:
            yield self.program_finding(
                fs.path,
                line,
                col,
                f"non-clairvoyant scheduler '{cname}' reads .{attr} of a "
                "live job before completion",
                symbol,
            )
        # (3) reads through self.<attr> job containers.
        for self_attr, attr, line, col in fn.attr_length_reads:
            if self_attr in job_attrs:
                yield self.program_finding(
                    fs.path,
                    line,
                    col,
                    f"non-clairvoyant scheduler '{cname}' reads .{attr} of "
                    f"jobs stored in self.{self_attr} before completion",
                    symbol,
                )
        # (4) boundary calls: leaks laundered through other functions,
        # possibly in other modules.
        cls_chain = set(program.mro(cls_fq))
        for call in fn.calls:
            if call.callee.startswith(("self.", "super.")):
                continue  # already covered by pre_completion_reach
            resolved = program.resolve_call(call, fs.module, cname)
            if resolved is None:
                continue
            kind, target_sym = resolved
            owner_cls = target_sym.rpartition(".")[0] if kind == "method" else None
            if owner_cls is not None and owner_cls in cls_chain:
                continue
            target, skip_self = program.callable_summary(kind, target_sym)
            key = program._symbol_key(resolved)
            w = program.leaks_always.get(key)
            if w is not None:
                yield self.program_finding(
                    fs.path,
                    call.lineno,
                    call.col,
                    f"non-clairvoyant scheduler '{cname}' calls "
                    f"{call.callee}(), which {w.render()}",
                    symbol,
                )
                continue
            w = program.returns_taint.get(key)
            if w is not None:
                yield self.program_finding(
                    fs.path,
                    call.lineno,
                    call.col,
                    f"non-clairvoyant scheduler '{cname}' calls "
                    f"{call.callee}(), which {w.render()}",
                    symbol,
                )
                continue
            if target is None:
                continue
            tleaks = program.leaks_params.get(
                program._target_key(kind, target_sym, target), {}
            )
            if not tleaks:
                continue
            for tparam, arg in program.bind_args(call, target, skip_self):
                wp = tleaks.get(tparam)
                if wp is None:
                    continue
                jobbish = (
                    arg.get("kind") == "job"
                    or (arg.get("kind") == "param" and arg.get("param") in jctx)
                    or (arg.get("kind") == "attr" and arg.get("attr") in job_attrs)
                )
                if jobbish:
                    yield self.program_finding(
                        fs.path,
                        call.lineno,
                        call.col,
                        f"non-clairvoyant scheduler '{cname}' passes a live "
                        f"job to {call.callee}(), which {wp.render()}",
                        symbol,
                    )


@register
class PoolUnsafeWork(ProgramRule):
    """RL008 — impure or unpicklable work submitted to ``ParallelRunner``.

    Why
    ---
    ``repro.perf.parallel.ParallelRunner`` guarantees bit-identical
    serial/parallel results only when the submitted callable is pure and
    picklable: a closure over mutable state, a lambda, or a function
    whose transitive call graph writes module globals, draws from an
    unseeded RNG, or reads a wall clock silently diverges across worker
    processes (or silently degrades to serial on the pickling
    pre-flight).  RL008 closes the purity of every submitted callable
    over the whole-program call graph.

    Offending
    ---------
    ::

        _CACHE = {}

        def run_cell(cell):
            _CACHE[cell.key] = simulate(cell)   # global write
            return _CACHE[cell.key]

        def sweep(cells):
            runner = ParallelRunner(workers=4)
            return runner.map(run_cell, cells)  # RL008: pool-unsafe work

    Clean
    -----
    ::

        def run_cell(cell):
            return simulate(cell)               # pure, top-level

        def sweep(cells):
            return ParallelRunner(workers=4).map(run_cell, cells)
    """

    code = "RL008"
    name = "pool-unsafe-work"
    severity = "error"
    description = (
        "lambda/closure or transitively impure callable submitted to a "
        "ParallelRunner map"
    )

    def check_program(self, program: Program) -> Iterator[LintFinding]:
        for fqid, fn, fs, cls_name in program.all_functions():
            for call in fn.calls:
                if not call.recv_runner:
                    continue
                if _leaf(call.callee) not in ("map", "starmap"):
                    continue
                if not call.args:
                    continue
                work = call.args[0]
                symbol = fn.name
                yield from self._check_work(
                    program, fs, fn, call.lineno, call.col, work, symbol
                )

    def _check_work(
        self,
        program: Program,
        fs: FileSummary,
        fn: FunctionSummary,
        line: int,
        col: int,
        work: dict[str, Any],
        symbol: str,
    ) -> Iterator[LintFinding]:
        kind = work.get("kind")
        if kind == "lambda":
            free = work.get("free", [])
            detail = (
                f" capturing {', '.join(free)}" if free else ""
            )
            yield self.program_finding(
                fs.path,
                line,
                col,
                "lambda submitted to ParallelRunner.map is unpicklable"
                f"{detail}; use a top-level function",
                symbol,
            )
            return
        if kind != "ref":
            return  # params/attrs/other: resolved dynamically, skip
        ref = work["ref"]
        # A nested def referenced by bare name inside the enclosing
        # function shadows any module-level symbol of the same name.
        nested_q = f"{fn.name}.<locals>.{ref}"
        target_id: str | None = None
        target_fn = fs.functions.get(nested_q)
        if target_fn is not None:
            target_id = f"{fs.module}.{nested_q}"
            if target_fn.free_vars:
                yield self.program_finding(
                    fs.path,
                    line,
                    col,
                    f"nested function '{ref}' submitted to ParallelRunner "
                    f"closes over {', '.join(target_fn.free_vars)} and is "
                    "unpicklable under spawn; hoist it to module level",
                    symbol,
                )
        else:
            target_id = program.resolve_name(fs.module, ref)
        if target_id is None:
            return
        effects = program.effects.get(target_id, {})
        for ekind in sorted(effects):
            w: Witness = effects[ekind]
            label = {
                "global_write": "writes module-global state",
                "rng": "draws from an unseeded RNG",
                "clock": "reads a wall clock",
            }.get(ekind, ekind)
            yield self.program_finding(
                fs.path,
                line,
                col,
                f"pool-submitted '{ref}' {label}: {w.render()} — results "
                "diverge across worker processes",
                symbol,
            )


@register
class ParameterDomainViolation(ProgramRule):
    """RL009 — constructor/call arguments outside a raise-guarded domain.

    Why
    ---
    The paper's competitive ratios only exist on open parameter domains:
    CDB is (3α+4+2/(α−1))-competitive for ``α > 1`` (Theorem 4.4) and
    Profit is (2k+2+1/(k−1))-competitive for ``k > 1`` (Theorem 4.11) —
    at the boundary the bounds are vacuous and the implementations raise.
    RL009 derives each callable's domain from its own ``if p <= c:
    raise`` guards and constant-folds call sites (literals, module
    constants across modules, ``make_scheduler("name", …)`` registry
    lookups) so an out-of-domain literal fails review, not the
    experiment night.

    Offending
    ---------
    ::

        from repro.schedulers import ClassifyByDurationBatchPlus

        sched = ClassifyByDurationBatchPlus(alpha=1.0)
        # RL009: the constructor raises when alpha <= 1

    Clean
    -----
    ::

        sched = ClassifyByDurationBatchPlus(alpha=2.0)
        # inside the Theorem 4.4 domain (alpha > 1)
    """

    code = "RL009"
    name = "parameter-domain-violation"
    severity = "error"
    description = (
        "constant argument violates the callee's raise-guarded parameter "
        "domain (e.g. CDB alpha <= 1, Profit k <= 1)"
    )

    def check_program(self, program: Program) -> Iterator[LintFinding]:
        for fqid, fn, fs, cls_name in program.all_functions():
            for call in fn.calls:
                yield from self._check_call(program, fs, fn, cls_name, call)

    def _check_call(
        self,
        program: Program,
        fs: FileSummary,
        fn: FunctionSummary,
        cls_name: str | None,
        call: Any,
    ) -> Iterator[LintFinding]:
        # Registry indirection: make_scheduler("cdb", alpha=1.0).
        if _leaf(call.callee) == "make_scheduler" and call.args:
            first = call.args[0]
            if (
                first.get("kind") == "const"
                and first["const"]["k"] == "str"
            ):
                cls_fq = program.scheduler_by_registry_name(first["const"]["v"])
                if cls_fq is not None:
                    target, _ = program.callable_summary("class", cls_fq)
                    if target is not None:
                        shifted = type(call)(
                            callee=call.callee,
                            lineno=call.lineno,
                            col=call.col,
                            args=call.args[1:],
                            kwargs=call.kwargs,
                        )
                        yield from self._check_bound(
                            program,
                            fs,
                            fn,
                            shifted,
                            target,
                            True,
                            f"{call.callee}({first['const']['v']!r}, …)",
                        )
            return
        resolved = program.resolve_call(call, fs.module, cls_name)
        if resolved is None:
            return
        kind, symbol = resolved
        target, skip_self = program.callable_summary(kind, symbol)
        if target is None or not target.guards:
            return
        yield from self._check_bound(
            program, fs, fn, call, target, skip_self, f"{call.callee}(…)"
        )

    def _check_bound(
        self,
        program: Program,
        fs: FileSummary,
        fn: FunctionSummary,
        call: Any,
        target: FunctionSummary,
        skip_self: bool,
        label: str,
    ) -> Iterator[LintFinding]:
        if not target.guards:
            return
        for tparam, arg in program.bind_args(call, target, skip_self):
            value = self._numeric_value(program, fs.module, arg)
            if value is None:
                continue
            for gparam, gop, gconst, _gline in target.guards:
                if gparam != tparam:
                    continue
                op = _OPS.get(gop)
                if op is not None and op(value, gconst):
                    yield self.program_finding(
                        fs.path,
                        call.lineno,
                        call.col,
                        f"{label} passes {tparam}={value!r}, but the callee "
                        f"raises when {tparam} {gop} {gconst:g}",
                        fn.name,
                    )

    @staticmethod
    def _numeric_value(
        program: Program, module: str, arg: dict[str, Any]
    ) -> float | None:
        if arg.get("kind") == "const" and arg["const"]["k"] == "num":
            return float(arg["const"]["v"])
        if arg.get("kind") == "ref":
            resolved = program.resolve_const(module, arg["ref"])
            if isinstance(resolved, bool):
                return float(int(resolved))
            if isinstance(resolved, (int, float)):
                return float(resolved)
        return None


@register
class HeapKeyTypeMix(ProgramRule):
    """RL010 — event-heap tuples mixing un-orderable key types.

    Why
    ---
    PR 1's hot-path engine pushes *raw tuples* onto ``heapq`` event
    heaps for speed — which is only safe when every pushed tuple is
    orderable against every other.  Two pushes whose tuples can tie on
    the leading slots and then compare a number against a string (or
    reach a dict/``None``) raise ``TypeError`` at runtime, but only on
    the adversarial instance that produces the tie.  RL010 classifies
    the element types of every ``heappush`` tuple and flags heaps whose
    pushes can collide on an un-orderable slot.

    Offending
    ---------
    ::

        heapq.heappush(self._events, (t, "deadline", job))
        heapq.heappush(self._events, (t, 0, job))   # RL010: str vs int
                                                    # at slot 1 on a tie

    Clean
    -----
    ::

        heapq.heappush(self._events, (t, 0, seq, job))
        heapq.heappush(self._events, (t, 1, seq, job))  # ints everywhere
    """

    code = "RL010"
    name = "heap-key-type-mix"
    severity = "error"
    description = (
        "heappush tuples on one heap mix un-orderable element types "
        "(TypeError on a tie)"
    )

    def check_program(self, program: Program) -> Iterator[LintFinding]:
        groups: dict[tuple[str, str], list[tuple[FileSummary, str, list[Any]]]] = {}
        for fqid, fn, fs, cls_name in program.all_functions():
            for push in fn.heap_pushes:
                heap_ref = push[0]
                if heap_ref.startswith("self.") and cls_name is not None:
                    scope = f"{fs.module}.{cls_name}"
                else:
                    scope = fqid
                groups.setdefault((scope, heap_ref), []).append(
                    (fs, fn.name, push)
                )
        for (scope, heap_ref), pushes in sorted(groups.items()):
            if len(pushes) < 2:
                continue
            flagged = False
            for i in range(len(pushes)):
                if flagged:
                    break
                for j in range(i + 1, len(pushes)):
                    conflict = self._conflict(pushes[i][2][1], pushes[j][2][1])
                    if conflict is None:
                        continue
                    slot, ca, cb = conflict
                    fs, fname, push = pushes[j]
                    a_fs, _a_fname, a_push = pushes[i]
                    yield self.program_finding(
                        fs.path,
                        push[2],
                        push[3],
                        f"heappush onto {heap_ref} mixes {cb} with {ca} at "
                        f"tuple slot {slot} (other push at "
                        f"{a_fs.path}:{a_push[2]}): TypeError on a tie",
                        fname,
                    )
                    flagged = True
                    break

    @staticmethod
    def _conflict(
        cats_a: list[str], cats_b: list[str]
    ) -> tuple[int, str, str] | None:
        for slot, (a, b) in enumerate(zip(cats_a, cats_b)):
            if a == "unknown" and b == "unknown":
                continue  # e.g. the same time variable: a tie is plausible
            if a == "unknown" or b == "unknown":
                return None  # unknown vs concrete: cannot conclude
            if a == "unorderable" or b == "unorderable":
                return (slot, a, b)
            if a == b:
                continue  # same orderable category: a tie proceeds
            # num/str/none cross-category mix: TypeError when reached.
            return (slot, a, b)
        return None
