"""Whole-program symbol table, call graph, and fixpoint analyses.

A :class:`Program` is assembled from the :class:`FileSummary` of every
scanned file.  It provides:

* a **symbol table** — module-qualified functions, classes and
  module-level constants, with import-alias resolution that chases
  package re-exports (``from repro.schedulers import Profit`` resolves
  to ``repro.schedulers.profit.Profit``);
* **method resolution** — a C3-ish linearisation over the class
  hierarchy (``OnlineScheduler`` subclasses spanning modules), used both
  to resolve ``self.<m>()`` / ``super().<m>()`` call edges and to
  inherit ``requires_clairvoyance`` declarations and job-container
  attributes;
* a **clairvoyance-taint fixpoint** — for every function, which
  parameters' lengths it (transitively) reads, whether merely *calling*
  it performs a pre-completion length read, and whether its return value
  carries clairvoyant data (RL007);
* a **purity fixpoint** — the transitive effect closure (global writes,
  unseeded RNG, wall clocks) of every function (RL008);
* **constant resolution** — cross-module lookup of foldable module
  constants for the parameter-domain checks (RL009).

Everything operates on summaries only: no source re-reads, no ASTs —
which is what lets the runner cache and parallelise the per-file stage
without affecting whole-program verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from .summary import CallSite, ClassSummary, FileSummary, FunctionSummary

__all__ = ["Program", "Witness"]

#: Entry hooks the engine may invoke before any completion.
_ENTRY_HOOKS = ("setup", "on_arrival", "on_deadline", "on_timer")

#: Hooks whose third parameter is a job by engine contract.
_JOB_ARG_HOOKS = {"on_arrival", "on_deadline", "on_completion"}

_MAX_REF_DEPTH = 8


@dataclass(frozen=True)
class Witness:
    """Where a dataflow fact was established (for finding messages)."""

    path: str
    line: int
    note: str

    def render(self) -> str:
        return f"{self.note} at {self.path}:{self.line}"


class Program:
    """The whole-program view over all file summaries."""

    def __init__(self, summaries: list[FileSummary]) -> None:
        self.files: dict[str, FileSummary] = {s.path: s for s in summaries}
        self.modules: dict[str, FileSummary] = {}
        for s in summaries:
            # First writer wins so a shadowing duplicate never hides the
            # canonical package module.
            self.modules.setdefault(s.module, s)

        #: fq function id ("module.Class.meth" / "module.fn") -> summary
        self.functions: dict[str, FunctionSummary] = {}
        #: fq function id -> (file summary, enclosing class name or None)
        self.fn_context: dict[str, tuple[FileSummary, str | None]] = {}
        #: fq class id ("module.Class") -> summary
        self.classes: dict[str, ClassSummary] = {}
        self.class_file: dict[str, FileSummary] = {}

        for s in self.modules.values():
            for fn in s.functions.values():
                fqid = f"{s.module}.{fn.name}"
                self.functions[fqid] = fn
                self.fn_context[fqid] = (s, None)
            for cls in s.classes.values():
                cls_fq = f"{s.module}.{cls.name}"
                self.classes[cls_fq] = cls
                self.class_file[cls_fq] = s
                for mname, m in cls.methods.items():
                    fqid = f"{cls_fq}.{mname}"
                    self.functions[fqid] = m
                    self.fn_context[fqid] = (s, cls.name)

        self._mro_cache: dict[str, list[str]] = {}
        self._leaks_params: dict[str, dict[str, Witness]] | None = None
        self._leaks_always: dict[str, Witness] | None = None
        self._returns_taint: dict[str, Witness] | None = None
        self._effects: dict[str, dict[str, Witness]] | None = None

    # ------------------------------------------------------------------ names
    def canonical(self, fq: str, _depth: int = 0) -> str | None:
        """Resolve a fully-qualified dotted name to a program symbol id.

        Chases package re-exports: if ``repro.schedulers.Profit`` is not
        a definition, but ``repro.schedulers`` (the package
        ``__init__``) imports ``Profit`` from ``repro.schedulers.profit``,
        the canonical id is ``repro.schedulers.profit.Profit``.
        """
        if _depth > _MAX_REF_DEPTH:
            return None
        if fq in self.functions or fq in self.classes:
            return fq
        base, _, leaf = fq.rpartition(".")
        if base in self.classes and leaf in self.classes[base].methods:
            return fq
        # Longest module prefix + re-export / alias chase.
        parts = fq.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            fs = self.modules.get(mod)
            if fs is None:
                continue
            head = parts[cut]
            rest = parts[cut + 1 :]
            suffix = "." + ".".join(rest) if rest else ""
            if head in fs.imports:
                return self.canonical(fs.imports[head] + suffix, _depth + 1)
            # Module-level alias: ``CDB = ClassifyByDurationBatchPlus``
            # is recorded as a ``ref`` constant binding.
            const = fs.constants.get(head)
            if const is not None and const.get("k") == "ref":
                return self.resolve_name(mod, const["v"] + suffix, _depth + 1)
            return None
        return None

    def resolve_name(
        self, module: str, dotted: str, _depth: int = 0
    ) -> str | None:
        """Resolve a name as written inside ``module`` to a symbol id."""
        if _depth > _MAX_REF_DEPTH:
            return None
        fs = self.modules.get(module)
        if fs is None:
            return None
        parts = dotted.split(".")
        head = parts[0]
        if head in fs.imports:
            rest = parts[1:]
            fq = fs.imports[head] + ("." + ".".join(rest) if rest else "")
            return self.canonical(fq, _depth)
        return self.canonical(f"{module}.{dotted}", _depth)

    def resolve_const(self, module: str, dotted: str, _depth: int = 0) -> Any | None:
        """Resolve a constant reference to its folded value (cross-module)."""
        if _depth > _MAX_REF_DEPTH:
            return None
        fs = self.modules.get(module)
        if fs is None:
            return None
        parts = dotted.split(".")
        head = parts[0]
        if len(parts) == 1:
            const = fs.constants.get(head)
            if const is not None:
                if const["k"] == "ref":
                    return self.resolve_const(module, const["v"], _depth + 1)
                return const["v"]
            fq = fs.imports.get(head)
            if fq is not None:
                return self._const_by_fq(fq, _depth + 1)
            return None
        # Class attribute constant (Cls.ATTR) or imported module member.
        if head in fs.classes:
            cls = fs.classes[head]
            if len(parts) == 2 and parts[1] in cls.class_attrs:
                return cls.class_attrs[parts[1]]
            return None
        if head in fs.imports:
            fq = fs.imports[head] + "." + ".".join(parts[1:])
            return self._const_by_fq(fq, _depth + 1)
        return None

    def _const_by_fq(self, fq: str, _depth: int) -> Any | None:
        parts = fq.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod in self.modules:
                rest = ".".join(parts[cut:])
                if rest:
                    return self.resolve_const(mod, rest, _depth)
                return None
        return None

    # ------------------------------------------------------------------- MRO
    def mro(self, class_fq: str) -> list[str]:
        """Linearised ancestry (self first).  Unresolvable bases appear
        as ``"?<LeafName>"`` markers so hierarchy *membership* tests keep
        working when a base module is outside the scan set."""
        cached = self._mro_cache.get(class_fq)
        if cached is not None:
            return cached
        self._mro_cache[class_fq] = [class_fq]  # cycle guard
        out = [class_fq]
        cls = self.classes.get(class_fq)
        if cls is not None:
            fs = self.class_file[class_fq]
            for base in cls.bases:
                resolved = self.resolve_name(fs.module, base)
                if resolved is not None and resolved in self.classes:
                    for ancestor in self.mro(resolved):
                        if ancestor not in out:
                            out.append(ancestor)
                else:
                    marker = "?" + base.rsplit(".", 1)[-1]
                    if marker not in out:
                        out.append(marker)
        self._mro_cache[class_fq] = out
        return out

    def lookup_method(
        self, class_fq: str, name: str, *, skip_self: bool = False
    ) -> tuple[str, FunctionSummary] | None:
        """MRO method lookup; returns ``(owner_class_fq, summary)``."""
        chain = self.mro(class_fq)
        if skip_self:
            chain = chain[1:]
        for ancestor in chain:
            cls = self.classes.get(ancestor)
            if cls is not None and name in cls.methods:
                return ancestor, cls.methods[name]
        return None

    def is_scheduler(self, class_fq: str) -> bool:
        for ancestor in self.mro(class_fq)[1:]:
            leaf = ancestor.rsplit(".", 1)[-1].lstrip("?")
            if leaf == "OnlineScheduler":
                return True
        return False

    def scheduler_classes(self) -> list[str]:
        return sorted(c for c in self.classes if self.is_scheduler(c))

    def requires_clairvoyance(self, class_fq: str) -> bool:
        for ancestor in self.mro(class_fq):
            cls = self.classes.get(ancestor)
            if cls is not None and "requires_clairvoyance" in cls.class_attrs:
                return bool(cls.class_attrs["requires_clairvoyance"])
        return False

    def job_attrs(self, class_fq: str) -> set[str]:
        """Job-container ``self`` attributes, inherited over the MRO."""
        out: set[str] = set()
        for ancestor in self.mro(class_fq):
            cls = self.classes.get(ancestor)
            if cls is not None:
                out.update(cls.job_attrs)
        return out

    # ------------------------------------------------------------ call edges
    def resolve_call(
        self, call: CallSite, module: str, cls_name: str | None
    ) -> tuple[str, str] | None:
        """Resolve a call site to ``(kind, symbol id)``.

        Kinds: ``"method"`` (id is ``module.Class.meth``), ``"function"``
        or ``"class"``.
        """
        callee = call.callee
        if callee.startswith("self.") and cls_name is not None:
            rest = callee[5:]
            if "." in rest:
                return None
            hit = self.lookup_method(f"{module}.{cls_name}", rest)
            if hit is None:
                return None
            owner, _ = hit
            return ("method", f"{owner}.{rest}")
        if callee.startswith("super.") and cls_name is not None:
            rest = callee[6:]
            if "." in rest:
                return None
            hit = self.lookup_method(f"{module}.{cls_name}", rest, skip_self=True)
            if hit is None:
                return None
            owner, _ = hit
            return ("method", f"{owner}.{rest}")
        resolved = self.resolve_name(module, callee)
        if resolved is None:
            return None
        if resolved in self.classes:
            return ("class", resolved)
        if resolved in self.functions:
            base, _, leaf = resolved.rpartition(".")
            if base in self.classes:
                return ("method", resolved)
            return ("function", resolved)
        return None

    def callable_summary(
        self, kind: str, symbol: str
    ) -> tuple[FunctionSummary | None, bool]:
        """The function summary executed by calling ``symbol``.

        Returns ``(summary, skip_self)`` — ``skip_self`` is True when the
        first parameter is bound implicitly (methods, constructors).
        """
        if kind == "class":
            cls = self.classes.get(symbol)
            if cls is None:
                return None, True
            init = cls.methods.get("__init__")
            if init is None:
                # Inherited __init__ (e.g. BatchPlus() with base init).
                hit = self.lookup_method(symbol, "__init__")
                init = hit[1] if hit is not None else None
            return init, True
        fn = self.functions.get(symbol)
        if fn is None:
            return None, False
        base = symbol.rpartition(".")[0]
        return fn, base in self.classes

    @staticmethod
    def bind_args(
        call: CallSite, target: FunctionSummary, skip_self: bool
    ) -> list[tuple[str, dict[str, Any]]]:
        """Map call arguments onto the target's parameter names."""
        params = target.params[1:] if skip_self and target.params else target.params
        out: list[tuple[str, dict[str, Any]]] = []
        for i, arg in enumerate(call.args):
            if i < len(params):
                out.append((params[i], arg))
        for name, arg in call.kwargs.items():
            if name in target.params:
                out.append((name, arg))
        return out

    def all_functions(
        self,
    ) -> Iterator[tuple[str, FunctionSummary, FileSummary, str | None]]:
        for fqid, fn in self.functions.items():
            fs, cls_name = self.fn_context[fqid]
            yield fqid, fn, fs, cls_name

    # --------------------------------------------------- clairvoyance taint
    @property
    def leaks_params(self) -> dict[str, dict[str, Witness]]:
        """fn id -> {param: witness}: params whose length is read."""
        if self._leaks_params is None:
            self._taint_fixpoint()
        assert self._leaks_params is not None
        return self._leaks_params

    @property
    def leaks_always(self) -> dict[str, Witness]:
        """fn ids whose mere invocation reads some job's hidden length."""
        if self._leaks_always is None:
            self._taint_fixpoint()
        assert self._leaks_always is not None
        return self._leaks_always

    @property
    def returns_taint(self) -> dict[str, Witness]:
        """fn ids whose return value carries clairvoyant length data."""
        if self._returns_taint is None:
            self._taint_fixpoint()
        assert self._returns_taint is not None
        return self._returns_taint

    def _taint_fixpoint(self) -> None:
        leaks: dict[str, dict[str, Witness]] = {}
        always: dict[str, Witness] = {}
        taints: dict[str, Witness] = {}

        # Seeds.
        for fqid, fn, fs, cls_name in self.all_functions():
            for p, attr, line, _col in fn.param_length_reads:
                leaks.setdefault(fqid, {}).setdefault(
                    p, Witness(fs.path, line, f"reads {p}.{attr}")
                )
            for attr, line, _col in fn.intrinsic_length_reads:
                always.setdefault(
                    fqid, Witness(fs.path, line, f"reads job .{attr}")
                )
            if cls_name is not None:
                # Job-container attribute reads resolved against the class.
                ja = self.job_attrs(f"{fs.module}.{cls_name}")
                for self_attr, attr, line, _col in fn.attr_length_reads:
                    if self_attr in ja:
                        always.setdefault(
                            fqid,
                            Witness(
                                fs.path,
                                line,
                                f"reads .{attr} of jobs stored in self.{self_attr}",
                            ),
                        )
            if fn.returns_taint:
                taints.setdefault(
                    fqid, Witness(fs.path, fn.lineno, "returns clairvoyant data")
                )

        # Propagation.
        changed = True
        while changed:
            changed = False
            for fqid, fn, fs, cls_name in self.all_functions():
                for call in fn.calls:
                    resolved = self.resolve_call(call, fs.module, cls_name)
                    if resolved is None:
                        continue
                    kind, symbol = resolved
                    target, skip_self = self.callable_summary(kind, symbol)
                    key = symbol if kind != "class" else symbol + ".__init__"
                    if key in always and fqid not in always:
                        always[fqid] = always[key]
                        changed = True
                    if target is None:
                        continue
                    tleaks = leaks.get(self._target_key(kind, symbol, target), {})
                    for tparam, arg in self.bind_args(call, target, skip_self):
                        w = tleaks.get(tparam)
                        if w is None:
                            continue
                        if arg.get("kind") == "param":
                            bucket = leaks.setdefault(fqid, {})
                            if arg["param"] not in bucket:
                                bucket[arg["param"]] = w
                                changed = True
                        elif arg.get("kind") == "job" and fqid not in always:
                            always[fqid] = w
                            changed = True
                        elif (
                            arg.get("kind") == "attr"
                            and cls_name is not None
                            and arg["attr"]
                            in self.job_attrs(f"{fs.module}.{cls_name}")
                            and fqid not in always
                        ):
                            always[fqid] = w
                            changed = True
                # Return-taint propagation through returned calls.
                if fqid not in taints:
                    for callee in fn.returns_call_of:
                        fake = CallSite(callee=callee, lineno=fn.lineno, col=0, args=[], kwargs={})
                        resolved = self.resolve_call(fake, fs.module, cls_name)
                        if resolved is None:
                            continue
                        key = self._symbol_key(resolved)
                        if key in taints:
                            taints[fqid] = taints[key]
                            changed = True
                            break

        self._leaks_params = leaks
        self._leaks_always = always
        self._returns_taint = taints

    @staticmethod
    def _symbol_key(resolved: tuple[str, str]) -> str:
        kind, symbol = resolved
        return symbol + ".__init__" if kind == "class" else symbol

    def _target_key(
        self, kind: str, symbol: str, target: FunctionSummary
    ) -> str:
        if kind == "class":
            # The summary is the (possibly inherited) __init__.
            for cls_fq in self.mro(symbol):
                cls = self.classes.get(cls_fq)
                if cls is not None and cls.methods.get("__init__") is target:
                    return f"{cls_fq}.__init__"
            return symbol + ".__init__"
        return symbol

    # ------------------------------------------------------------ pre-completion
    def pre_completion_reach(
        self, class_fq: str
    ) -> dict[tuple[str, str], tuple[FunctionSummary, set[str]]]:
        """Methods reachable before any completion, with job-parameter
        context: ``{(owner_class_fq, method): (summary, job_params)}``."""
        reach: dict[tuple[str, str], tuple[FunctionSummary, set[str]]] = {}
        work: list[tuple[str, set[str]]] = []
        for hook in _ENTRY_HOOKS:
            hit = self.lookup_method(class_fq, hook)
            if hit is None:
                continue
            owner, fn = hit
            jctx = set(fn.job_params)
            if hook in _JOB_ARG_HOOKS and len(fn.params) >= 3:
                jctx.add(fn.params[2])
            work.append((hook, jctx))
        while work:
            mname, jctx = work.pop()
            if mname == "on_completion":
                continue
            hit = self.lookup_method(class_fq, mname)
            if hit is None:
                continue
            owner, fn = hit
            key = (owner, mname)
            seen = reach.get(key)
            if seen is not None and jctx <= seen[1]:
                continue
            merged = (jctx | seen[1]) if seen is not None else set(jctx)
            reach[key] = (fn, merged)
            for call in fn.calls:
                target_name: str | None = None
                if call.callee.startswith("self."):
                    target_name = call.callee[5:]
                elif call.callee.startswith("super."):
                    target_name = call.callee[6:]
                if target_name is None or "." in target_name:
                    continue
                hit2 = self.lookup_method(class_fq, target_name)
                if hit2 is None:
                    continue
                _owner2, fn2 = hit2
                bound = self.bind_args(call, fn2, skip_self=True)
                jnext = set(fn2.job_params)
                for tparam, arg in bound:
                    if (
                        arg.get("kind") == "job"
                        or (arg.get("kind") == "param" and arg.get("param") in merged)
                        or (
                            arg.get("kind") == "attr"
                            and arg.get("attr") in self.job_attrs(class_fq)
                        )
                    ):
                        jnext.add(tparam)
                work.append((target_name, jnext))
        return reach

    # ----------------------------------------------------------------- purity
    @property
    def effects(self) -> dict[str, dict[str, Witness]]:
        """fn id -> {effect kind: witness}, transitively closed."""
        if self._effects is None:
            self._effects_fixpoint()
        assert self._effects is not None
        return self._effects

    def _effects_fixpoint(self) -> None:
        effects: dict[str, dict[str, Witness]] = {}
        for fqid, fn, fs, _cls in self.all_functions():
            for kind, detail, line in fn.effects:
                effects.setdefault(fqid, {}).setdefault(
                    kind, Witness(fs.path, line, detail)
                )
        changed = True
        while changed:
            changed = False
            for fqid, fn, fs, cls_name in self.all_functions():
                mine = effects.setdefault(fqid, {})
                for call in fn.calls:
                    resolved = self.resolve_call(call, fs.module, cls_name)
                    if resolved is None:
                        continue
                    theirs = effects.get(self._symbol_key(resolved))
                    if not theirs:
                        continue
                    for kind, w in theirs.items():
                        if kind not in mine:
                            mine[kind] = Witness(
                                w.path, w.line, f"{w.note} (via {call.callee}())"
                            )
                            changed = True
        self._effects = {k: v for k, v in effects.items() if v}

    # ------------------------------------------------------------- registries
    def scheduler_by_registry_name(self, name: str) -> str | None:
        """Map a registry string (``"cdb"``) to its scheduler class id."""
        for cls_fq in self.scheduler_classes():
            cls = self.classes[cls_fq]
            if cls.class_attrs.get("name") == name:
                return cls_fq
        return None
