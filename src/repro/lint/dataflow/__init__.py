"""Whole-program dataflow analysis for :mod:`repro.lint`.

PR 2's rules are *per-file*: RL001 tracks ``job.length`` reads through a
scheduler class's own call graph, but a helper function in another
module that returns ``job.length`` launders the leak invisibly.  This
package closes that gap with an interprocedural, cross-module layer:

* :mod:`~repro.lint.dataflow.summary` — per-file fact extraction into a
  picklable, JSON-serialisable :class:`FileSummary` (symbols, imports,
  class hierarchy, call sites, taint/effect/constant facts).  Summaries
  are the *only* interface between files and the whole-program pass,
  which makes both the parallel front-end (``lint --jobs N``) and the
  incremental cache (:mod:`~repro.lint.dataflow.cache`) sound by
  construction.
* :mod:`~repro.lint.dataflow.program` — the whole-program symbol table
  and call graph over all summaries: module-qualified function index,
  import-alias resolution, method resolution (MRO) over the
  ``OnlineScheduler``/``Adversary`` hierarchies, and three fixpoint
  analyses (clairvoyance taint, purity/effects, constant resolution).
* :mod:`~repro.lint.dataflow.rules_program` — the rules built on top:

  ========  =========================================================
  RL007     cross-module-clairvoyance-taint (whole-program RL001)
  RL008     pool-unsafe-work submitted to ``ParallelRunner``
  RL009     parameter-domain-violation (``CDB(alpha<=1)``, …)
  RL010     heap-key-type-mix (un-orderable raw-tuple heap keys)
  ========  =========================================================

Program rules subclass :class:`repro.lint.base.ProgramRule` and receive
the assembled :class:`Program`; findings reuse the existing
fingerprint/baseline/suppression machinery unchanged.
"""

from __future__ import annotations

from .cache import AnalysisCache, default_cache_path
from .program import Program
from .summary import FileSummary, extract_summary, module_name_for

# Importing the rule module registers RL007-RL010 with the registry.
from . import rules_program  # noqa: F401  (registration side effect)

__all__ = [
    "AnalysisCache",
    "FileSummary",
    "Program",
    "default_cache_path",
    "extract_summary",
    "module_name_for",
]
