"""SARIF 2.1.0 export for lint reports (``repro lint --format sarif``).

SARIF (Static Analysis Results Interchange Format) is the one output
format code-scanning UIs agree on: GitHub code scanning, VS Code's SARIF
viewer, and most CI annotation layers ingest it natively.  The exporter
emits one ``run`` with:

* ``tool.driver.rules`` — every registered rule (not just the ones that
  fired), so viewers can render the full rule index with the ``--explain``
  docstrings as full descriptions;
* one ``result`` per finding, with ``ruleId``, SARIF ``level``
  (``error``/``warning``), message, and a ``physicalLocation`` whose
  region carries the 1-based line and column.

Only the stdlib :mod:`json` module is used; the schema subset here is
deliberately minimal and validated shape-wise by
``tests/test_lint_sarif.py``.
"""

from __future__ import annotations

import inspect
import json
from typing import Any, Iterable

from .base import ALL_RULES, Rule
from .findings import LintFinding, LintReport

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    doc = inspect.getdoc(type(rule)) or rule.description
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "fullDescription": {"text": doc},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def _result(finding: LintFinding, rule_index: dict[str, int]) -> dict[str, Any]:
    message = finding.message
    if finding.symbol:
        message = f"[{finding.symbol}] {message}"
    out: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }
    if finding.rule in rule_index:
        out["ruleIndex"] = rule_index[finding.rule]
    return out


def to_sarif(
    report: LintReport, *, rules: Iterable[Rule] | None = None
) -> dict[str, Any]:
    """The SARIF 2.1.0 payload for one lint report, as a plain dict."""
    ruleset = list(rules) if rules is not None else list(ALL_RULES)
    rule_index = {rule.code: i for i, rule in enumerate(ruleset)}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [_rule_descriptor(r) for r in ruleset],
                    }
                },
                "results": [
                    _result(f, rule_index) for f in report.findings
                ],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(
    report: LintReport, *, rules: Iterable[Rule] | None = None
) -> str:
    """Serialised SARIF log (stable key order for diff-able CI artifacts)."""
    return json.dumps(to_sarif(report, rules=rules), indent=2, sort_keys=True)
