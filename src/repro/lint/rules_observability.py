"""RL011 — hot-path print/logging (observability discipline).

The engine event loop and the scheduler hooks are the per-event hot
path: a single ``print`` there runs hundreds of thousands of times on
the §3.1 macro constructions, serialises the process pool on one file
descriptor, and produces output that ``repro obs`` can neither merge,
filter, nor diff.  Anything worth saying in
``src/repro/core/`` or ``src/repro/schedulers/`` belongs in the
structured recorder (``self.obs`` on a scheduler,
``repro.obs.runtime.get_recorder()`` elsewhere), which is free when
disarmed and mergeable when armed.

Offending::

    class MyScheduler(OnlineScheduler):
        def on_deadline(self, ctx, job):
            print(f"starting {job.id} at {ctx.now}")      # RL011
            logging.getLogger(__name__).info("batch %s", job.id)  # RL011
            ctx.start(job.id)

Clean::

    class MyScheduler(OnlineScheduler):
        def on_deadline(self, ctx, job):
            if self.obs.enabled:
                self.obs.decision(
                    "deadline-flag", job=job.id, t=ctx.now,
                    scheduler=self._obs_scheduler,
                )
            ctx.start(job.id)

The rule flags ``print(...)`` calls, any call rooted at the ``logging``
module (``logging.info``, ``logging.getLogger(...).debug``), calls on
names bound from ``logging.getLogger(...)``, and direct
``sys.stdout`` / ``sys.stderr`` writes.  CLI-style rendering does not
live in these packages, so there is no carve-out; a deliberate
exception takes an explicit ``# lint: ignore[RL011]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, register
from .findings import LintFinding
from .scopes import HOT_PATH_FRAGMENTS

__all__ = ["HOT_PATH_FRAGMENTS", "HotPathOutputRule"]


def _attr_chain_root(node: ast.expr) -> str | None:
    """The leftmost name of an attribute chain (``a.b.c`` -> ``"a"``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):  # logging.getLogger(...).info
        return _attr_chain_root(node.func)
    return None


def _logger_bindings(tree: ast.Module) -> set[str]:
    """Names bound (module- or class-level) from ``logging.getLogger``."""
    bound: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and _attr_chain_root(value.func) == "logging"
        ):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


@register
class HotPathOutputRule(Rule):
    """RL011 — print/logging/raw stdio in the per-event hot path.

    The engine event loop and the scheduler hooks run once per simulated
    event: a single ``print`` there fires hundreds of thousands of times
    on the §3.1 macro constructions, serialises the process pool on one
    file descriptor, and produces output that ``repro obs`` can neither
    merge, filter, nor diff.  Anything worth saying in
    ``src/repro/core/`` or ``src/repro/schedulers/`` belongs in the
    structured recorder — ``self.obs`` on a scheduler,
    ``repro.obs.runtime.get_recorder()`` elsewhere — which is free when
    disarmed and mergeable when armed.

    Offending::

        class MyScheduler(OnlineScheduler):
            def on_deadline(self, ctx, job):
                print(f"starting {job.id} at {ctx.now}")          # RL011
                logging.getLogger(__name__).info("j %s", job.id)  # RL011
                ctx.start(job.id)

    Clean::

        class MyScheduler(OnlineScheduler):
            def on_deadline(self, ctx, job):
                if self.obs.enabled:
                    self.obs.decision(
                        "deadline-flag", job=job.id, t=ctx.now,
                        scheduler=self._obs_scheduler,
                    )
                ctx.start(job.id)

    Flags ``print(...)``, any call rooted at the ``logging`` module
    (``logging.info``, ``logging.getLogger(...).debug``), calls on names
    bound from ``logging.getLogger(...)``, and direct ``sys.stdout`` /
    ``sys.stderr`` writes.  CLI-style rendering does not live in these
    packages, so there is no carve-out; a deliberate exception takes an
    explicit ``# lint: ignore[RL011]``.
    """

    code = "RL011"
    name = "hot-path-print"
    severity = "error"
    description = (
        "print/logging in the engine or scheduler hot path — route "
        "structured output through the repro.obs recorder instead"
    )

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(frag in normalized for frag in HOT_PATH_FRAGMENTS)

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        loggers = _logger_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # print(...)
            if isinstance(func, ast.Name) and func.id == "print":
                yield self.finding(
                    ctx,
                    node,
                    "print() in the per-event hot path: use the structured "
                    "recorder (self.obs / get_recorder()) — it is free when "
                    "disarmed and mergeable when armed",
                    symbol="print",
                )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            root = _attr_chain_root(func)
            # logging.info(...) / logging.getLogger(...).debug(...)
            if root == "logging" or root in loggers:
                yield self.finding(
                    ctx,
                    node,
                    f"logging call ({ast.unparse(func)}) in the per-event "
                    "hot path: emit recorder instants/counters instead of "
                    "log lines",
                    symbol=root or "",
                )
                continue
            # sys.stdout.write(...) / sys.stderr.write(...)
            if (
                root == "sys"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in ("stdout", "stderr")
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"direct sys.{func.value.attr} write in the per-event "
                    "hot path: route output through the repro.obs recorder",
                    symbol=f"sys.{func.value.attr}",
                )
