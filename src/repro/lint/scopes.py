"""Shared lint scope constants: which paths count as the hot path.

Three rule families police the per-event hot path and previously each
carried its own copy of the scope list; this module is the single
source of truth they all import:

* RL011 (:mod:`repro.lint.rules_observability`) — no print/logging in
  hot packages;
* RL012 (:mod:`repro.lint.rules_perf`) — no per-job object allocation
  in hot sections of the engine cores;
* RL017–RL021 (:mod:`repro.lint.asyncsafety`) — the serving layer's
  event loop must stay non-blocking, bounded, and drain-safe.

All matching is done on ``/``-normalised repo-relative paths via
substring containment, mirroring ``Rule.applies_to`` conventions.
"""

from __future__ import annotations

__all__ = [
    "HOT_CORE_FRAGMENTS",
    "HOT_PATH_FRAGMENTS",
    "HOT_SECTION_PREFIXES",
    "SERVE_FRAGMENT",
]

#: Package prefixes (path fragments) treated as the per-event hot path.
#: ``repro/serve/`` is included because the daemon runs per protocol
#: line: its only legitimate output channels are the asyncio stream
#: writers (protocol records) and the structured recorder — a stray
#: print would interleave with the JSONL protocol stream itself.
#: ``repro/obs/live.py`` rides along: the live telemetry plane is fed
#: once per record from the serve sessions' collect loop.
HOT_PATH_FRAGMENTS = (
    "repro/core/",
    "repro/schedulers/",
    "repro/serve/",
    "repro/obs/live.py",
)

#: The engine-core files whose hot sections RL012 polices.  The serve
#: package rides along: its per-op paths run once per protocol line,
#: and per-job object materialisation belongs at its protocol boundary
#: (``job_from_op``), not inside worker/dispatch sections.  So does the
#: live telemetry plane (``repro/obs/live.py``): its ``_handle_*``
#: record handlers run once per engine record on armed serve sessions.
HOT_CORE_FRAGMENTS = (
    "repro/core/engine.py",
    "repro/core/columnar.py",
    "repro/serve/",
    "repro/obs/live.py",
)

#: Function-name prefixes marking per-event / per-cohort code.
HOT_SECTION_PREFIXES = (
    "_run_",
    "_handle_",
    "_cohort_",
    "_complete_",
    "_assign_",
    "_gather",
    "_start_",
    "_push_",
)

#: The serving layer proper — the event-loop code whose channels RL019
#: requires to be explicitly bounded.  Fixture packages outside this
#: path opt in by declaring a truthy module constant ``_SERVE_SCOPE``.
SERVE_FRAGMENT = "repro/serve/"
