"""RL015: scheduler decision reasons form a closed, fully-used vocabulary.

``repro obs explain --strict`` reconciles every job start against the
paper's seven decision rules (``DECISION_RULES`` in
:mod:`repro.obs.records`).  That reconciliation is only sound if the
vocabulary is closed in *both* directions:

* every reason a scheduler can emit is a ``DECISION_RULES`` key
  (otherwise ``explain`` renders a shrug and ``--strict`` would have to
  guess), and
* every ``DECISION_RULES`` key is emitted by some scheduler (a dead key
  is documentation for behaviour that no longer exists).

This is the static half of the same contract the runtime reconciler
enforces — mirroring how RL001 and the ``ClairvoyanceGuard``
cross-validate.  The runtime half lives in
:func:`repro.obs.explain.explain_trace`, which rejects
out-of-vocabulary reasons under ``--strict``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..base import ProgramRule, register
from ..findings import LintFinding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataflow.program import Program
    from ..dataflow.summary import FunctionSummary

__all__ = ["DecisionVocabularyRule"]

#: The module-level dict constant holding the closed vocabulary.
_VOCAB_NAME = "DECISION_RULES"


def _emission_sites(
    fn: "FunctionSummary",
) -> Iterator[tuple[str | None, int, int]]:
    """``obs.decision(<reason>, ...)`` sites: (const reason | None, line, col)."""
    for cs in fn.calls:
        parts = cs.callee.split(".")
        if parts[-1] != "decision" or "obs" not in parts[:-1]:
            continue
        if not cs.args:
            continue
        desc = cs.args[0]
        if desc.get("kind") == "const" and desc["const"].get("k") == "str":
            yield desc["const"]["v"], cs.lineno, cs.col
        else:
            yield None, cs.lineno, cs.col


@register
class DecisionVocabularyRule(ProgramRule):
    """RL015: a scheduler emits a decision reason outside the closed
    ``DECISION_RULES`` vocabulary, or a vocabulary key is never emitted.

    Why: decision provenance is the contract that lets
    ``repro obs explain --strict`` attribute every start to a paper
    rule.  An out-of-vocabulary reason silently degrades the narrative
    to "(rule not in the paper vocabulary)" and, under the strict
    reconciler, fails the run; a never-emitted key means the vocabulary
    over-promises.  Both directions are checked statically here and at
    runtime by the reconciler, so the two oracles cross-validate.

    Non-literal reasons (``obs.decision(reason_var, ...)``) are flagged
    too: a computed reason defeats the closed-vocabulary guarantee even
    when today's values happen to be valid.

    Offending::

        obs.decision("panic-start", job=j.id, t=now)   # not a paper rule

    Clean::

        obs.decision("deadline-flag", job=j.id, t=now)
    """

    code = "RL015"
    name = "decision-vocabulary-exhaustiveness"
    severity = "error"
    description = "decision reasons must match DECISION_RULES exactly"

    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        vocab: dict[str, tuple[str, int]] = {}  # key -> (path, line)
        for module in sorted(program.modules):
            fs = program.modules[module]
            entry = fs.dict_constants.get(_VOCAB_NAME)
            if entry is None:
                continue
            for key in entry.get("items", {}):
                vocab.setdefault(key, (fs.path, int(entry.get("line", 1))))
        if not vocab:
            return  # no vocabulary in the scan set: nothing to certify

        emitted: set[str] = set()
        sites = 0
        for _fqid, fn, fs, cls_name in program.all_functions():
            if cls_name is None:
                continue
            if not program.is_scheduler(f"{fs.module}.{cls_name}"):
                continue
            for reason, line, col in _emission_sites(fn):
                sites += 1
                if reason is None:
                    if not fs.is_suppressed(line, self.code):
                        yield self.program_finding(
                            fs.path,
                            line,
                            col,
                            "decision reason is not a string literal — a "
                            "computed reason cannot be certified against "
                            "the closed DECISION_RULES vocabulary",
                            symbol=f"{cls_name}.{fn.name.rsplit('.', 1)[-1]}",
                        )
                    continue
                emitted.add(reason)
                if reason not in vocab:
                    if not fs.is_suppressed(line, self.code):
                        yield self.program_finding(
                            fs.path,
                            line,
                            col,
                            f"decision reason {reason!r} is not in the "
                            "DECISION_RULES vocabulary — repro obs explain "
                            "--strict cannot attribute it",
                            symbol=reason,
                        )
        if sites == 0:
            return  # vocabulary present but nothing instrumented yet
        for key in sorted(set(vocab) - emitted):
            path, line = vocab[key]
            fs = next(
                (s for s in program.modules.values() if s.path == path), None
            )
            if fs is not None and fs.is_suppressed(line, self.code):
                continue
            yield self.program_finding(
                path,
                line,
                0,
                f"DECISION_RULES key {key!r} is never emitted by any "
                "scheduler — dead vocabulary entry",
                symbol=key,
            )
