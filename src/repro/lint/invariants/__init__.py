"""Core-parity and temporal-invariant certification (RL013-RL016).

This package builds on the :mod:`repro.lint.dataflow` fixpoint engine to
certify the contracts that keep the dual-core engine honest:

=======  ==============================  =======================================
Code     Name                            Certifies
=======  ==============================  =======================================
RL013    core-parity-drift               object/columnar state machines mirror
                                         each other (fields, kinds, guards,
                                         cohort soundness) up to declared
                                         ``# parity:`` annotations
RL014    lifecycle-typestate             PENDING -> RUNNING -> DONE transitions
                                         happen in legal event phases; deadline
                                         starts carry the backstop decision
RL015    decision-vocabulary-            scheduler decisions and the
         exhaustiveness                  ``DECISION_RULES`` vocabulary match in
                                         both directions
RL016    time-monotonicity               heap-push keys and clock writes are
                                         provably monotone non-decreasing
=======  ==============================  =======================================

RL013 has a runtime twin: ``REPRO_PARITY=1`` (see
:mod:`repro.core.parity`) shadow-runs both cores in lockstep and diffs
their state snapshots, cross-validating the static model the same way
the ``ClairvoyanceGuard`` cross-validates RL001.
"""

from __future__ import annotations

from . import monotone, parity, typestate, vocabulary  # noqa: F401  (registration)

__all__ = ["monotone", "parity", "typestate", "vocabulary"]
