"""RL016: heap-push keys and engine clock writes are monotone.

The event loop's core soundness argument is that the heap only ever
contains events at or after the current clock, and the clock only moves
forward.  Both cores enforce this dynamically with raise-guards
(``if when < self._now: raise``); this rule proves it statically for
every push site whose kind slot names an event kind, by checking the
pushed key against a small proof system:

* ``now`` / ``now + <expr>`` expressions are trivially current-or-future;
* leaves raise-guarded against the clock in the pushing function (or in
  a directly-called same-class helper), including the vectorised form
  ``past = completions < now; if past.any(): raise``;
* leaves bound from a clock-anchored expression (``completion = now +
  length``);
* locals returned by a same-class helper that itself clock-guards its
  result (``whens = self._decision_times(...)``);
* the admission axioms ``arrival`` and ``deadline``: admission rejects
  ``job.arrival < now`` and the ``Job`` constructor enforces
  ``deadline >= arrival``, so both are current-or-future whenever an
  admitted job is in scope.

List-mirror aliases (``completions_l``, ``deadline_list``) normalise to
their column name before lookup.  Push sites whose kind slot is not an
event-kind name (generic queue plumbing, test doubles) are out of scope
by construction — extraction never records them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..base import ProgramRule, register
from ..findings import LintFinding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataflow.program import Program
    from ..dataflow.summary import ClassSummary, FunctionSummary

__all__ = ["TimeMonotonicityRule"]

#: Leaves that are current-or-future by admission/constructor invariant.
_AXIOM_LEAVES = {"arrival", "deadline"}

_LIST_SUFFIXES = ("_list", "_l")


def _normalize(leaf: str) -> str:
    for suffix in _LIST_SUFFIXES:
        if leaf.endswith(suffix) and len(leaf) > len(suffix):
            return leaf[: -len(suffix)]
    return leaf


def _same_class_method(
    cls: "ClassSummary | None", callee: str
) -> "FunctionSummary | None":
    if cls is None or not callee.startswith("self."):
        return None
    leaf = callee[5:]
    if "." in leaf:
        return None
    return cls.methods.get(leaf)


@register
class TimeMonotonicityRule(ProgramRule):
    """RL016: an event is pushed with a key not provably >= the current
    clock, or the clock itself is written from an unguarded value.

    Why: a single past-dated event silently reorders the replay — the
    heap pops it "next", handlers observe a clock that jumped backwards,
    and every span/trace downstream is wrong without any exception
    firing on the fast path.  Both cores guard dynamically; this rule
    makes the guard placement itself a checked invariant, so deleting a
    guard (or adding an unguarded push) fails lint instead of corrupting
    traces at runtime.

    A push key is accepted when it is a ``now``-anchored expression, a
    leaf that is raise-guarded against the clock (scalar or vectorised
    compare-local form, in the pusher or a directly-called same-class
    helper), a local bound from a clock-guarding helper call, or one of
    the admission axioms (``arrival``, ``deadline``).  Clock writes
    (``self._now = x``) must be constants or guarded/anchored leaves.

    Offending::

        queue.push(job.arrival - 1.0, EventKind.ARRIVAL, job.id)

    Clean::

        if when < self._now:
            raise SimulationError(...)
        queue.push(when, EventKind.ASSIGN, job.id)
    """

    code = "RL016"
    name = "time-monotonicity"
    severity = "error"
    description = "heap keys and clock updates must be monotone"

    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        for fqid, fn, fs, cls_name in program.all_functions():
            cls = None
            if cls_name is not None:
                cls = fs.classes.get(cls_name)
            if fn.push_keys:
                provable = self._provable_leaves(fn, cls)
                for desc, kind, line, col in fn.push_keys:
                    if self._key_ok(desc, provable):
                        continue
                    if fs.is_suppressed(line, self.code):
                        continue
                    shown = desc if isinstance(desc, str) else "<expr>"
                    yield self.program_finding(
                        fs.path,
                        line,
                        col,
                        f"push key {shown!r} for event kind {kind} is not "
                        "provably >= the current clock (no guard, anchor, "
                        "or admission axiom applies)",
                        symbol=fqid,
                    )
            for desc, line in fn.now_writes:
                if self._clock_ok(desc, fn):
                    continue
                if fs.is_suppressed(line, self.code):
                    continue
                shown = desc if isinstance(desc, str) else "<expr>"
                yield self.program_finding(
                    fs.path,
                    line,
                    0,
                    f"clock write from {shown!r} is not provably monotone "
                    "(not a constant, clock expression, or guarded leaf)",
                    symbol=fqid,
                )

    # -- proof system --------------------------------------------------------
    def _provable_leaves(
        self, fn: "FunctionSummary", cls: "ClassSummary | None"
    ) -> set[str]:
        out = set(_AXIOM_LEAVES)
        out.update(fn.now_guards)
        out.update(fn.now_anchored)
        # Guards established by directly-called same-class helpers apply
        # to the values they vet (one level, mirroring RL013's closure).
        for cs in fn.calls:
            callee = _same_class_method(cls, cs.callee)
            if callee is not None:
                out.update(callee.now_guards)
        # Locals bound from a helper whose result is clock-guarded.
        for local, callee_name in fn.call_assigns:
            callee = _same_class_method(cls, callee_name)
            if callee is not None and callee.now_guards:
                out.add(local)
        return out

    @staticmethod
    def _key_ok(desc: object, provable: set[str]) -> bool:
        if desc in ("now", "now+"):
            return True
        if not isinstance(desc, str):
            return False
        return desc in provable or _normalize(desc) in provable

    @staticmethod
    def _clock_ok(desc: object, fn: "FunctionSummary") -> bool:
        if desc in ("const", "now", "now+"):
            return True
        if not isinstance(desc, str):
            return False
        if desc == "_now":
            return True  # restoring from another clock field
        ok = set(fn.now_guards) | set(fn.now_anchored)
        return desc in ok or _normalize(desc) in ok
