"""RL014: job-lifecycle typestate over the engine cores and schedulers.

The job lifecycle is a one-way street::

    ADMITTED --arrival--> PENDING --start--> RUNNING --completion--> DONE

Both engine cores encode it — the object core as booleans
(``arrived``/``completed``) on ``_JobState``, the columnar core as the
``state`` int8 column over the ``_ADMITTED``/``_PENDING``/``_RUNNING``/
``_DONE`` constants.  This rule checks each lifecycle write site sits in
a method whose event phase may legally perform that transition, and that
no instrumented scheduler can start jobs from a deadline event without
emitting the paper's deadline decision (``deadline-flag`` or
``deadline-backstop``) somewhere on that path — the "no silent start
past the deadline" half of the backstop contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..base import ProgramRule, register
from ..findings import LintFinding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataflow.program import Program
    from ..dataflow.summary import FileSummary, FunctionSummary

__all__ = ["LifecycleTypestateRule"]

#: Module opts into lifecycle checking when it declares a parity side or
#: at least this many of the state constants below.
_STATE_CONSTS = ("_ADMITTED", "_PENDING", "_RUNNING", "_DONE")
_MIN_STATE_CONSTS = 3

#: Lifecycle value written -> method phases allowed to write it.
_LEGAL_PHASES = {
    "_ADMITTED": {"init"},
    "ADMITTED": {"init"},
    "_PENDING": {"arrival", "init"},
    "PENDING": {"arrival", "init"},
    "_RUNNING": {"start"},
    "RUNNING": {"start"},
    "_DONE": {"completion"},
    "DONE": {"completion"},
}

#: Boolean lifecycle fields (object core) -> phases allowed to set them.
_BOOL_FIELDS = {
    "arrived": {"arrival", "init"},
    "completed": {"completion", "init"},
}

#: Method-name substring -> event phase, first match wins.  Order
#: matters: ``_handle_completion`` must hit "complet" before anything
#: else, ``_validate_admission`` hits "admi".
_PHASE_BY_NAME = (
    ("arrival", "arrival"),
    ("complet", "completion"),
    ("deadline", "deadline"),
    ("start", "start"),
    ("admi", "init"),
    ("append", "init"),
    ("reset", "init"),
    ("init", "init"),
)

_DEADLINE_REASONS = {"deadline-flag", "deadline-backstop"}


def _phase_of(method_name: str) -> str | None:
    leaf = method_name.rsplit(".", 1)[-1].lower()
    for needle, phase in _PHASE_BY_NAME:
        if needle in leaf:
            return phase
    return None


def _decision_reasons(fn: "FunctionSummary") -> list[tuple[str | None, int]]:
    """Const reasons of ``obs.decision(...)`` call sites in ``fn``."""
    out: list[tuple[str | None, int]] = []
    for cs in fn.calls:
        parts = cs.callee.split(".")
        if parts[-1] != "decision" or "obs" not in parts[:-1]:
            continue
        reason: str | None = None
        if cs.args:
            desc = cs.args[0]
            if desc.get("kind") == "const" and desc["const"].get("k") == "str":
                reason = desc["const"]["v"]
        out.append((reason, cs.lineno))
    return out


def _starts_jobs(fn: "FunctionSummary") -> bool:
    """Does ``fn`` call ``ctx.start``/``ctx.start_batch`` on its context
    parameter (the second positional parameter by engine convention)?"""
    if len(fn.params) < 2:
        return False
    ctx = fn.params[1]
    for cs in fn.calls:
        parts = cs.callee.split(".")
        if parts[0] == ctx and parts[-1] in ("start", "start_batch"):
            return True
    return False


@register
class LifecycleTypestateRule(ProgramRule):
    """RL014: a write site violates the job-lifecycle typestate, or a
    scheduler starts jobs from a deadline without the deadline decision.

    Why: PENDING→RUNNING→DONE is the invariant both engine cores and
    the paper's correctness arguments lean on — a completion handler
    that re-pends a job, or an admission path that marks jobs RUNNING,
    silently corrupts the span accounting that every theorem bound is
    measured against.  The deadline half guards the paper's backstop
    contract: any path that starts jobs in response to a deadline event
    must attribute those starts to ``deadline-flag`` or
    ``deadline-backstop``, or ``repro obs explain --strict`` can no
    longer reconcile the trace.

    Scope: modules that declare ``_PARITY_CORE`` or define most of the
    ``_ADMITTED``/``_PENDING``/``_RUNNING``/``_DONE`` constants (the
    lifecycle half), and scheduler classes that emit at least one
    decision record (the deadline half — uninstrumented schedulers are
    out of the provenance contract).

    Offending::

        def _handle_completion(self, idx):
            table.state[idx] = _PENDING     # completion may not re-pend

    Clean::

        def _handle_completion(self, idx):
            table.state[idx] = _DONE
    """

    code = "RL014"
    name = "lifecycle-typestate"
    severity = "error"
    description = "job lifecycle transition written in an illegal phase"

    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        for module in sorted(program.modules):
            fs = program.modules[module]
            if self._in_scope(fs):
                yield from self._check_lifecycle(fs)
        for cls_fq in program.scheduler_classes():
            yield from self._check_deadline_starts(program, cls_fq)

    # -- lifecycle half ------------------------------------------------------
    @staticmethod
    def _in_scope(fs: "FileSummary") -> bool:
        side = fs.constants.get("_PARITY_CORE")
        if side is not None and side.get("k") == "str":
            return True
        n = sum(1 for c in _STATE_CONSTS if c in fs.constants)
        return n >= _MIN_STATE_CONSTS

    def _check_lifecycle(self, fs: "FileSummary") -> Iterator[LintFinding]:
        for cls in fs.classes.values():
            for mname, fn in sorted(cls.methods.items()):
                phase = _phase_of(mname)
                for field, value, line, col in fn.state_writes:
                    legal = None
                    if field in _BOOL_FIELDS and value == "const":
                        legal = _BOOL_FIELDS[field]
                        written = field
                    elif isinstance(value, str) and value in _LEGAL_PHASES:
                        legal = _LEGAL_PHASES[value]
                        written = value
                    if legal is None:
                        continue
                    if phase is None:
                        continue  # no event phase claim for this method
                    if phase not in legal:
                        if fs.is_suppressed(line, self.code):
                            continue
                        yield self.program_finding(
                            fs.path,
                            line,
                            col,
                            f"lifecycle write {written!r} in {mname} "
                            f"(phase {phase!r}) — legal phases are "
                            f"{sorted(legal)}",
                            symbol=f"{cls.name}.{mname}",
                        )

    # -- deadline half -------------------------------------------------------
    def _check_deadline_starts(
        self, program: "Program", cls_fq: str
    ) -> Iterator[LintFinding]:
        cls = program.classes[cls_fq]
        emits_any = any(
            _decision_reasons(fn) for fn in cls.methods.values()
        )
        if not emits_any:
            return
        resolved = program.lookup_method(cls_fq, "on_deadline")
        if resolved is None:
            return
        # Same-class (MRO-resolved) call closure from on_deadline.
        closure: list["FunctionSummary"] = []
        seen: set[str] = set()
        stack = ["on_deadline"]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            hit = program.lookup_method(cls_fq, name)
            if hit is None:
                continue
            _owner, fn = hit
            closure.append(fn)
            for cs in fn.calls:
                if cs.callee.startswith("self.") and "." not in cs.callee[5:]:
                    stack.append(cs.callee[5:])
        if not any(_starts_jobs(fn) for fn in closure):
            return
        reasons = {
            r for fn in closure for r, _line in _decision_reasons(fn)
        }
        if reasons & _DEADLINE_REASONS:
            return
        owner, entry = resolved
        fs = program.class_file[cls_fq]
        # Anchor at the subclass itself when on_deadline is inherited.
        line = entry.lineno if owner == cls_fq else cls.lineno
        if fs.is_suppressed(line, self.code):
            return
        yield self.program_finding(
            fs.path,
            line,
            0,
            f"{cls.name} starts jobs from on_deadline without emitting a "
            f"{sorted(_DEADLINE_REASONS)} decision on any path — the "
            "deadline backstop is unattributable",
            symbol=f"{cls.name}.on_deadline",
        )
