"""RL013: the dual-core state machines must not drift apart.

PR 6 left the engine with two implementations of the same event loop —
the object core (``repro.core.engine.Simulator``) and the columnar core
(``repro.core.columnar.ColumnarCore``).  This module extracts a
*parity model* from each core's :class:`FileSummary` facts and diffs
them: the per-event-kind state-field write sets (one call level deep),
the transitively pushed event kinds, and the transitively raised
exception types must agree under the declared field correspondence, and
the columnar core's cohort table must stay sound.

A core module opts in by declaring three module constants::

    _PARITY_CORE = "object"            # or "columnar"
    _PARITY_PEER = "repro.core.columnar"
    _PARITY_FIELDS = {"arrived": "lifecycle", "start": "start-time", ...}

``_PARITY_FIELDS`` maps each core's own physical field names onto
shared logical tokens; the diff happens in token space, so ``arrived``
(object) and ``state`` (columnar) can both mean "lifecycle".  A write
that is *deliberately* one-sided carries an end-of-line annotation::

    st.completion = completion  # parity: object-only

Soundness limits (documented, deliberate): writes through bare-``Name``
receivers (hoisted column locals like ``start_l[idx] = now``) are
invisible to the model — the columnar hot loop may cache columns
locally without polluting the diff — and queue bookkeeping fields in
:data:`INFRA_FIELDS` are excluded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..base import ProgramRule, register
from ..findings import LintFinding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataflow.program import Program
    from ..dataflow.summary import ClassSummary, FileSummary, FunctionSummary

__all__ = [
    "COMPARED_METHODS",
    "CoreModel",
    "CoreParityDriftRule",
    "INFRA_FIELDS",
    "SOUND_COHORTS",
    "extract_core_model",
]

#: The event-loop methods whose behaviour must correspond across cores.
COMPARED_METHODS = (
    "_handle_arrival",
    "_handle_deadline",
    "_handle_completion",
    "_handle_assign",
    "_handle_timer",
    "_handle_adversary",
    "_start_job",
    "_start_batch",
)

#: Queue/statistics bookkeeping outside the job-state parity model.
INFRA_FIELDS = {"_seq", "_events_processed", "_heap_peak"}

#: Event kinds whose events commute within a same-timestamp cohort, so a
#: vectorised ``_cohort_<kind>`` handler is sound.  DEADLINE (raises on
#: the first pending job), TIMER and ADVERSARY (arbitrary user hooks)
#: must stay scalar.
SOUND_COHORTS = {"arrival", "completion", "assign"}

_SIDES = {"object", "columnar"}


class CoreModel:
    """The extracted parity model of one core module."""

    def __init__(self, fs: "FileSummary", side: str, peer: str) -> None:
        self.fs = fs
        self.side = side
        self.peer = peer
        self.fields: dict[str, str] = {}
        raw = fs.dict_constants.get("_PARITY_FIELDS")
        if raw is not None:
            self.fields = {
                k: str(v) for k, v in raw.get("items", {}).items()
            }
        self.cls: "ClassSummary | None" = None
        best = -1
        for cls in fs.classes.values():
            n = sum(1 for m in COMPARED_METHODS if m in cls.methods)
            if n > best:
                best, self.cls = n, cls
        if best <= 0:
            self.cls = None
        #: method -> list of (field, token|None, annotation|None, line, col)
        self.writes: dict[str, list[tuple[str, str | None, str | None, int, int]]] = {}
        #: method -> transitively pushed event kinds
        self.kinds: dict[str, set[str]] = {}
        #: method -> transitively raised exception type names
        self.raises: dict[str, set[str]] = {}
        if self.cls is not None:
            for name in COMPARED_METHODS:
                if name in self.cls.methods:
                    self.writes[name] = self._one_level_writes(name)
                    self.kinds[name], self.raises[name] = self._closure(name)

    # -- model extraction ---------------------------------------------------
    def _method(self, name: str) -> "FunctionSummary | None":
        assert self.cls is not None
        return self.cls.methods.get(name)

    def _self_callees(self, fn: "FunctionSummary") -> list[str]:
        assert self.cls is not None
        out = []
        for cs in fn.calls:
            if cs.callee.startswith("self.") and "." not in cs.callee[5:]:
                leaf = cs.callee[5:]
                if leaf in self.cls.methods:
                    out.append(leaf)
        return out

    def _own_writes(
        self, fn: "FunctionSummary"
    ) -> list[tuple[str, str | None, str | None, int, int]]:
        out = []
        for field, _value, line, col in fn.state_writes:
            if field in INFRA_FIELDS:
                continue
            annot = self.fs.parity_lines.get(str(line))
            out.append((field, self.fields.get(field), annot, line, col))
        return out

    def _one_level_writes(
        self, name: str
    ) -> list[tuple[str, str | None, str | None, int, int]]:
        fn = self._method(name)
        assert fn is not None
        out = self._own_writes(fn)
        for callee in self._self_callees(fn):
            m = self._method(callee)
            if m is not None:
                out.extend(self._own_writes(m))
        return out

    def _closure(self, name: str) -> tuple[set[str], set[str]]:
        kinds: set[str] = set()
        raises: set[str] = set()
        seen: set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            fn = self._method(cur)
            if fn is None:
                continue
            kinds.update(k[1] for k in fn.push_keys)
            raises.update(r[0] for r in fn.raises)
            stack.extend(self._self_callees(fn))
        return kinds, raises

    def tokens(self, name: str) -> set[str]:
        """The comparable token write-set of one method (annotated and
        unmapped writes excluded — those are reported separately)."""
        return {
            tok
            for _f, tok, annot, _l, _c in self.writes.get(name, [])
            if tok is not None and annot is None
        }


def extract_core_model(program: "Program", module: str) -> CoreModel | None:
    """The parity model of ``module``, or ``None`` if it does not opt in.

    Exposed for the ``REPRO_PARITY=1`` runtime twin's cross-validation
    tests (static model vs. lockstep diff on shared fixtures).
    """
    fs = program.modules.get(module)
    if fs is None:
        return None
    side = fs.constants.get("_PARITY_CORE")
    peer = fs.constants.get("_PARITY_PEER")
    if side is None or side.get("k") != "str" or side["v"] not in _SIDES:
        return None
    peer_name = peer["v"] if peer is not None and peer.get("k") == "str" else ""
    return CoreModel(fs, side["v"], peer_name)


@register
class CoreParityDriftRule(ProgramRule):
    """RL013: a state field, event kind, or guard exists in one engine
    core with no mirror (and no annotation) in the other.

    Why: the columnar core re-implements the object core's event loop
    for speed; only their *observable equivalence* makes that safe.  A
    field mirrored in one core but not the other, or a handler that
    pushes an event kind its twin never pushes, is exactly the drift
    that passes unit tests on one core and corrupts traces on the
    other.  The runtime twin (``REPRO_PARITY=1`` lockstep shadow runs)
    catches drift that *executes*; this rule catches drift on paths no
    fixture exercises.

    The rule compares, per event-loop method (``_handle_*``,
    ``_start_job``, ``_start_batch``): state-field writes one call level
    deep (mapped to shared tokens via ``_PARITY_FIELDS``), pushed event
    kinds and raised exception types under the full same-class call
    closure, plus columnar-internal soundness — every ``_cohort_<k>``
    needs a scalar ``_handle_<k>`` twin, only commuting kinds
    (:data:`SOUND_COHORTS`) may be vectorised, and the recorder-armed
    scalar mirror loop (``_run_armed``) must never take a cohort path.

    Offending::

        # object core
        st.retries = 0            # no _PARITY_FIELDS entry, no annotation

    Clean::

        st.retries = 0            # parity: object-only
        # ... or map it:  _PARITY_FIELDS = {..., "retries": "retry-count"}
    """

    code = "RL013"
    name = "core-parity-drift"
    severity = "error"
    description = "dual-core engine state machines drifted apart"

    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        models: dict[str, CoreModel] = {}
        for module in sorted(program.modules):
            model = extract_core_model(program, module)
            if model is not None:
                models[module] = model
        done: set[frozenset[str]] = set()
        for module, model in sorted(models.items()):
            yield from self._check_solo(model)
            peer = models.get(model.peer)
            pair = frozenset((module, model.peer))
            if peer is None:
                if model.peer not in program.modules:
                    line = self._const_line(model.fs, "_PARITY_CORE")
                    yield self.program_finding(
                        model.fs.path,
                        line,
                        0,
                        f"parity peer module {model.peer!r} is not in the "
                        "scan set — the core pair cannot be certified",
                        symbol=module,
                    )
                continue
            if pair in done or peer.peer != module:
                continue
            done.add(pair)
            yield from self._check_pair(model, peer)

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _const_line(fs: "FileSummary", name: str) -> int:
        entry = fs.dict_constants.get(name)
        if entry is not None:
            return int(entry.get("line", 1))
        return 1

    def _anchor(self, model: CoreModel, method: str) -> tuple[int, int]:
        if model.cls is None:
            return 1, 0
        fn = model.cls.methods.get(method)
        if fn is not None:
            return fn.lineno, 0
        return model.cls.lineno, 0

    def _emit(
        self, model: CoreModel, line: int, col: int, msg: str, symbol: str
    ) -> Iterator[LintFinding]:
        if not model.fs.is_suppressed(line, self.code):
            yield self.program_finding(
                model.fs.path, line, col, msg, symbol=symbol
            )

    def _check_solo(self, model: CoreModel) -> Iterator[LintFinding]:
        """Per-core checks: annotations and columnar-internal soundness."""
        if model.cls is None:
            yield from self._emit(
                model,
                1,
                0,
                "_PARITY_CORE is declared but no class defines any of the "
                "compared event-loop methods",
                model.fs.module,
            )
            return
        other = ({"object", "columnar"} - {model.side}).pop()
        for method, writes in sorted(model.writes.items()):
            for field, token, annot, line, col in writes:
                if annot == f"{other}-only":
                    yield from self._emit(
                        model,
                        line,
                        col,
                        f"write to {field!r} in the {model.side} core is "
                        f"annotated '# parity: {annot}' — the annotation "
                        "contradicts the core it lives in",
                        f"{model.cls.name}.{method}",
                    )
                elif annot is None and token is None:
                    yield from self._emit(
                        model,
                        line,
                        col,
                        f"state field {field!r} written in {method} has no "
                        "_PARITY_FIELDS mapping and no '# parity: "
                        f"{model.side}-only' annotation — the peer core "
                        "cannot be checked against it",
                        f"{model.cls.name}.{method}",
                    )
        if model.side == "columnar":
            yield from self._check_cohorts(model)

    def _check_cohorts(self, model: CoreModel) -> Iterator[LintFinding]:
        assert model.cls is not None
        cls = model.cls
        handlers = {
            m[len("_handle_") :] for m in cls.methods if m.startswith("_handle_")
        }
        for mname in sorted(cls.methods):
            if not mname.startswith("_cohort_"):
                continue
            kind = mname[len("_cohort_") :]
            fn = cls.methods[mname]
            if kind not in handlers:
                yield from self._emit(
                    model,
                    fn.lineno,
                    0,
                    f"vectorised handler {mname} has no scalar _handle_{kind} "
                    "twin — the armed mirror loop cannot reproduce it",
                    f"{cls.name}.{mname}",
                )
            if kind not in SOUND_COHORTS:
                yield from self._emit(
                    model,
                    fn.lineno,
                    0,
                    f"event kind {kind!r} is vectorised but not in the cohort "
                    f"soundness table {sorted(SOUND_COHORTS)} — same-timestamp "
                    f"{kind} events do not commute",
                    f"{cls.name}.{mname}",
                )
        armed = cls.methods.get("_run_armed")
        fast = cls.methods.get("_run_fast")
        if armed is not None:
            bad = sorted(a for a in armed.self_loads if a.startswith("_cohort_"))
            for attr in bad:
                yield from self._emit(
                    model,
                    armed.lineno,
                    0,
                    f"_run_armed references {attr} — the recorder-armed "
                    "scalar mirror must never take a vectorised cohort path",
                    f"{cls.name}._run_armed",
                )
        if armed is not None and fast is not None:
            armed_handlers = {
                a for a in armed.self_loads if a.startswith("_handle_")
            }
            fast_handlers = {
                a for a in fast.self_loads if a.startswith("_handle_")
            }
            for attr in sorted(armed_handlers ^ fast_handlers):
                owner = armed if attr in armed_handlers else fast
                yield from self._emit(
                    model,
                    owner.lineno,
                    0,
                    f"scalar handler {attr} is dispatched by only one of "
                    "_run_fast/_run_armed — the two loop variants drifted",
                    f"{cls.name}.{owner.name}",
                )

    def _check_pair(
        self, a: CoreModel, b: CoreModel
    ) -> Iterator[LintFinding]:
        if a.cls is None or b.cls is None:
            return
        for method in COMPARED_METHODS:
            in_a = method in a.cls.methods
            in_b = method in b.cls.methods
            if in_a != in_b:
                present = a if in_a else b
                absent = b if in_a else a
                line, col = self._anchor(present, method)
                yield from self._emit(
                    present,
                    line,
                    col,
                    f"event-loop method {method} exists only in the "
                    f"{present.side} core — no {absent.side} mirror",
                    f"{present.cls.name}.{method}",
                )
                continue
            if not in_a:
                continue
            yield from self._diff_tokens(a, b, method)
            yield from self._diff_sets(
                a, b, method, a.kinds[method], b.kinds[method], "event kind"
            )
            yield from self._diff_sets(
                a, b, method, a.raises[method], b.raises[method], "exception"
            )

    def _diff_tokens(
        self, a: CoreModel, b: CoreModel, method: str
    ) -> Iterator[LintFinding]:
        ta, tb = a.tokens(method), b.tokens(method)
        for model, peer_model, extra in ((a, b, ta - tb), (b, a, tb - ta)):
            for token in sorted(extra):
                site = next(
                    (
                        (line, col)
                        for _f, tok, annot, line, col in model.writes[method]
                        if tok == token and annot is None
                    ),
                    self._anchor(model, method),
                )
                yield from self._emit(
                    model,
                    site[0],
                    site[1],
                    f"{method} writes {token!r} state in the {model.side} "
                    f"core but the {peer_model.side} core's {method} does "
                    "not — undeclared parity drift",
                    f"{model.cls.name}.{method}" if model.cls else method,
                )

    def _diff_sets(
        self,
        a: CoreModel,
        b: CoreModel,
        method: str,
        sa: set[str],
        sb: set[str],
        what: str,
    ) -> Iterator[LintFinding]:
        for model, peer_model, extra in ((a, b, sa - sb), (b, a, sb - sa)):
            for item in sorted(extra):
                line, col = self._anchor(model, method)
                yield from self._emit(
                    model,
                    line,
                    col,
                    f"{method} can produce {what} {item!r} in the "
                    f"{model.side} core but never in the {peer_model.side} "
                    "core (same-class call closure)",
                    f"{model.cls.name}.{method}" if model.cls else method,
                )
