"""Shared AST analysis helpers for the domain rules.

The helpers encode the *domain knowledge* that makes the rules precise
without a full type checker:

* which classes are online schedulers (transitive subclasses of
  :class:`~repro.schedulers.base.OnlineScheduler` within a module);
* which methods are reachable *before* ``on_completion`` (the
  pre-completion call graph rooted at ``setup`` / ``on_arrival`` /
  ``on_deadline`` / ``on_timer``);
* which local expressions denote *jobs* (parameters annotated
  ``JobView`` / ``Job``, loop variables over ``ctx.pending()`` /
  ``ctx.running()``, simple aliases thereof);
* which expressions are *float-typed* (float literals, true division,
  ``math.*`` calls, locally-annotated names, and the model's known
  float attributes such as ``.span`` / ``.laxity`` / ``.measure``).
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "JOB_TYPE_NAMES",
    "KNOWN_FLOAT_ATTRS",
    "SCHEDULER_ENTRY_METHODS",
    "dotted_name",
    "truthy_constant",
    "scheduler_classes",
    "class_methods",
    "pre_completion_methods",
    "job_name_visitor",
    "FloatTyper",
    "walk_functions",
]

#: Annotations that mark a parameter as a job object.
JOB_TYPE_NAMES = {"JobView", "Job"}

#: Model attributes statically known to be floats (paper quantities).
KNOWN_FLOAT_ATTRS = {
    "arrival",
    "deadline",
    "laxity",
    "length",
    "size",
    "span",
    "measure",
    "left",
    "right",
    "mu",
    "total_work",
    "max_length",
    "min_length",
    "horizon",
    "start_time",
    "lower",
    "upper",
    "width",
}

#: Hooks the engine may invoke before any job has completed.
SCHEDULER_ENTRY_METHODS = ("setup", "on_arrival", "on_deadline", "on_timer")

#: ``ctx`` accessor calls whose elements are job views.
_JOB_LIST_CALLS = {"pending", "running"}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def truthy_constant(node: ast.expr) -> bool | None:
    """The truthiness of a constant expression, or ``None`` if dynamic."""
    if isinstance(node, ast.Constant):
        return bool(node.value)
    return None


def scheduler_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Transitive ``OnlineScheduler`` subclasses defined in the module.

    Resolution is name-based and intra-module: a class is a scheduler if
    any base is ``OnlineScheduler`` (possibly dotted, e.g.
    ``base.OnlineScheduler``) or another scheduler class defined in the
    same module.  A fixpoint loop handles forward references.
    """
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    sched_names = {"OnlineScheduler"}
    result: dict[str, ast.ClassDef] = {}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in result:
                continue
            for base in cls.bases:
                name = dotted_name(base)
                if name is None:
                    continue
                leaf = name.rsplit(".", 1)[-1]
                if leaf in sched_names:
                    result[cls.name] = cls
                    sched_names.add(cls.name)
                    changed = True
                    break
    return [cls for cls in classes if cls.name in result]


def class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Directly-defined methods by name (async defs included)."""
    out: dict[str, ast.FunctionDef] = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node  # type: ignore[assignment]
    return out


def pre_completion_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Methods reachable before any job completes.

    BFS over ``self.<m>(...)`` call edges starting from the
    pre-completion entry hooks.  ``on_completion`` itself (and helpers
    reachable *only* from it) are excluded; a helper reachable from both
    sides is included — it can run pre-completion, so it must honour the
    non-clairvoyant contract.
    """
    methods = class_methods(cls)
    queue = [m for m in SCHEDULER_ENTRY_METHODS if m in methods]
    reachable: dict[str, ast.FunctionDef] = {}
    while queue:
        name = queue.pop()
        if name in reachable or name == "on_completion":
            continue
        fn = methods.get(name)
        if fn is None:
            continue
        reachable[name] = fn
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in methods
            ):
                queue.append(node.func.attr)
    return reachable


def _annotation_leaf(node: ast.expr | None) -> str | None:
    """The rightmost identifier of an annotation (handles strings/Optional)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip().rsplit(".", 1)[-1].rstrip("]").strip('"')
    if isinstance(node, ast.Subscript):  # Optional[JobView] etc.
        return _annotation_leaf(node.slice)
    name = dotted_name(node)
    if name is not None:
        return name.rsplit(".", 1)[-1]
    return None


def job_name_visitor(fn: ast.FunctionDef) -> set[str]:
    """Local names that denote job objects inside ``fn``.

    Seeds: parameters annotated ``JobView``/``Job`` or literally named
    ``job``.  Propagated through simple aliases (``j = job``), loop /
    comprehension targets over ``*.pending()`` / ``*.running()`` calls,
    and subscripts of those calls (``ctx.pending()[0]``).  Lambda
    parameters named ``job``/``j``/``jv`` are included (sort keys).
    """
    names: set[str] = set()
    args = fn.args
    all_params = [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ]
    for a in all_params:
        if a.arg in ("self", "ctx"):
            continue
        leaf = _annotation_leaf(a.annotation)
        if (leaf in JOB_TYPE_NAMES) or a.arg == "job":
            names.add(a.arg)

    def is_job_list_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            return node.func.attr in _JOB_LIST_CALLS
        return False

    def is_job_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Subscript):
            return is_job_list_expr(node.value)
        return False

    def bind_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind_target(elt)

    # Fixpoint over simple aliases / loop targets (two passes suffice for
    # straight-line code; loop until stable for robustness).
    changed = True
    while changed:
        before = len(names)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                if is_job_expr(node.value):
                    for t in node.targets:
                        bind_target(t)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                leaf = _annotation_leaf(node.annotation)
                if leaf in JOB_TYPE_NAMES or is_job_expr(node.value):
                    bind_target(node.target)
            elif isinstance(node, ast.For):
                if is_job_list_expr(node.iter) or is_job_expr(node.iter):
                    bind_target(node.target)
            elif isinstance(node, ast.comprehension):
                if is_job_list_expr(node.iter) or is_job_expr(node.iter):
                    bind_target(node.target)
            elif isinstance(node, ast.Lambda):
                for a in node.args.args:
                    if a.arg in ("job", "j", "jv"):
                        names.add(a.arg)
        changed = len(names) != before
    return names


class FloatTyper:
    """Heuristic float-typedness for RL003.

    A conservative, annotation-driven local inference:

    * float literals with any value, and true division ``/``;
    * ``math.*`` calls (the module is all-float), ``float(...)``;
    * names of parameters / locals annotated ``float``;
    * locals assigned from calls to module functions whose *return
      annotation* is ``float``;
    * attributes in :data:`KNOWN_FLOAT_ATTRS` (the model's quantities).

    ``is_float(node)`` answers for one expression; the typer is built per
    module (for the return-annotation map) and then primed per function.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._float_returning: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _annotation_leaf(node.returns) == "float":
                    self._float_returning.add(node.name)
        self._float_names: set[str] = set()

    def reset(self) -> None:
        """Clear per-function state (module-level expressions)."""
        self._float_names = set()

    def prime(self, fn: ast.FunctionDef) -> None:
        """Collect float-annotated / float-assigned local names of ``fn``."""
        names: set[str] = set()
        args = fn.args
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_leaf(a.annotation) == "float":
                names.add(a.arg)
        changed = True
        while changed:
            before = len(names)
            self._float_names = names
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and self.is_float(node.value):
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            names.add(t.id)
                elif isinstance(node, ast.AnnAssign):
                    if _annotation_leaf(node.annotation) == "float" and isinstance(
                        node.target, ast.Name
                    ):
                        names.add(node.target.id)
            changed = len(names) != before
        self._float_names = names

    def is_float(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in self._float_names
        if isinstance(node, ast.Attribute):
            return node.attr in KNOWN_FLOAT_ATTRS
        if isinstance(node, ast.UnaryOp):
            return self.is_float(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self.is_float(node.left) or self.is_float(node.right)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                return False
            if name.startswith("math.") and name != "math.isqrt":
                return True
            if name in ("float", "abs") and node.args:
                return name == "float" or self.is_float(node.args[0])
            leaf = name.rsplit(".", 1)[-1]
            return leaf in self._float_returning
        if isinstance(node, ast.IfExp):
            return self.is_float(node.body) or self.is_float(node.orelse)
        return False

    def is_intlike(self, node: ast.expr) -> bool:
        """Obviously-integer expressions (``len(...)``, int literals)."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, int) and not isinstance(node.value, bool)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in ("len", "int", "round", "math.isqrt", "ord", "id")
        return False


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef]:
    """Every (sync or async) function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]
