"""File discovery and rule execution.

``lint_paths`` is the programmatic entry (the CLI and tests call it);
``lint_source`` lints one in-memory source string, which is what the
rule unit tests use.  Paths in findings are reported relative to the
common scan root so baselines are machine-independent.

Since PR 4 a lint run has two phases:

1. **Per-file** — parse, run the per-file rules (RL001–RL006), and
   extract a :class:`~repro.lint.dataflow.FileSummary`.  This phase is
   embarrassingly parallel (``jobs > 1`` fans out over
   :class:`repro.perf.parallel.ParallelRunner`) and incremental (an
   :class:`~repro.lint.dataflow.AnalysisCache` replays unchanged files
   from their content hash — ``LintReport.files_reanalyzed`` counts the
   misses).
2. **Whole-program** — assemble the summaries into a
   :class:`~repro.lint.dataflow.Program` and run the
   :class:`~repro.lint.base.ProgramRule` set (RL007–RL010).  This phase
   consumes summaries only, so its verdicts are identical whether the
   per-file facts came from a fresh parse, a cache hit, or a worker
   process.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Iterable, Sequence

from .base import ALL_RULES, FileContext, ProgramRule, Rule, rule_by_code, run_rules
from .baseline import Baseline
from .findings import LintFinding, LintReport

__all__ = ["default_target", "discover_files", "lint_paths", "lint_source"]

_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", "build", "dist"}


def default_target() -> Path:
    """The installed ``repro`` package source tree (``…/src/repro``)."""
    return Path(__file__).resolve().parents[1]


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        path = Path(p)
        if path.is_dir():
            for f in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    out.add(f)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _relative_to_root(file: Path, roots: Sequence[Path]) -> str:
    resolved = file.resolve()
    for root in roots:
        try:
            rel = resolved.relative_to(root.resolve())
        except ValueError:
            continue
        if root.is_dir():
            return str(Path(root.name) / rel)
        # ``root`` is the file itself (rel == "."): anchor on its parent so
        # single-file targets render as "pkg/mod.py", not ".".
        return str(Path(root.parent.name) / root.name)
    return str(file)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
) -> list[LintFinding]:
    """Lint one source string (unit-test entry point).

    ``path`` participates in rule scoping (e.g. RL002 only fires for
    paths under ``schedulers/`` or ``adversaries/``), so tests pass a
    representative fake path.  Program rules (RL007+) are inert here:
    a lone source string has no whole-program context.
    """
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, source, tree)
    return run_rules(ctx, list(rules) if rules is not None else ALL_RULES)


def _analyze_one(task: tuple[str, str, list[str]]) -> dict[str, Any]:
    """Per-file phase for one file (top-level: picklable for ``--jobs``).

    Returns a pure-data record — finding dicts, the suppression count,
    and the :class:`FileSummary` dict — identical in shape to what the
    incremental cache stores, so serial, parallel, and cached paths all
    merge through the same code.
    """
    from .dataflow import extract_summary, module_name_for

    rel, abspath, codes = task
    source = Path(abspath).read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=abspath)
    except SyntaxError as exc:
        finding = LintFinding(
            rule="RL000",
            severity="error",
            path=rel,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"syntax error: {exc.msg}",
        )
        return {"findings": [finding.to_dict()], "suppressed": 0, "summary": None}
    ctx = FileContext(rel, source, tree)
    rules = [rule_by_code(c) for c in codes]

    suppressed = 0

    def count_suppressed(_f: LintFinding) -> None:
        nonlocal suppressed
        suppressed += 1

    findings = run_rules(ctx, rules, on_suppressed=count_suppressed)
    summary = extract_summary(
        rel, source, tree, module_name_for(Path(abspath)), ctx.suppressions
    )
    return {
        "findings": [f.to_dict() for f in findings],
        "suppressed": suppressed,
        "summary": summary.to_dict(),
    }


def lint_paths(
    paths: Sequence[str | Path] | None = None,
    *,
    rules: Iterable[Rule] | None = None,
    baseline: Baseline | None = None,
    jobs: int | None = None,
    cache: "Any | None" = None,
) -> LintReport:
    """Lint files/directories and return an aggregate report.

    Parameters
    ----------
    paths:
        Files or directories; defaults to the installed package tree.
    rules:
        Subset of rules to run (default: all registered rules).
    baseline:
        Grandfathered findings to absorb (see :mod:`repro.lint.baseline`).
    jobs:
        Worker processes for the per-file phase (``None``/``1`` =
        serial).  Parallel output is bit-identical to serial output.
    cache:
        An :class:`~repro.lint.dataflow.AnalysisCache`; unchanged files
        replay from it and ``report.files_reanalyzed`` counts the rest.
    """
    from .dataflow import FileSummary, Program

    targets = [Path(p) for p in (paths if paths else [default_target()])]
    files = discover_files(targets)
    active = list(rules) if rules is not None else list(ALL_RULES)
    per_file_codes = [r.code for r in active if not isinstance(r, ProgramRule)]
    program_rules = [r for r in active if isinstance(r, ProgramRule)]
    all_codes = [r.code for r in active]
    report = LintReport()

    # -- per-file phase (cached + parallel) ---------------------------------
    records: dict[str, dict[str, Any]] = {}
    order: list[str] = []
    misses: list[tuple[str, str, str]] = []  # (rel, abspath, key)
    digest = ""
    if cache is not None:
        from .dataflow.cache import ruleset_digest

        digest = ruleset_digest(active)
    for file in files:
        rel = _relative_to_root(file, targets)
        order.append(rel)
        key = ""
        if cache is not None:
            from .dataflow.cache import file_key

            key = file_key(file.read_bytes(), all_codes, digest)
            entry = cache.get(rel, key)
            if entry is not None:
                records[rel] = entry
                continue
        misses.append((rel, str(file), key))

    tasks = [(rel, abspath, per_file_codes) for rel, abspath, _key in misses]
    if jobs is not None and jobs > 1 and len(tasks) > 1:
        from repro.perf.parallel import ParallelRunner

        results = ParallelRunner(workers=jobs).map(_analyze_one, tasks)
    else:
        results = [_analyze_one(t) for t in tasks]
    for (rel, _abspath, key), record in zip(misses, results):
        records[rel] = record
        if cache is not None:
            cache.put(
                rel,
                key,
                findings=record["findings"],
                suppressed=record["suppressed"],
                summary=record["summary"],
            )

    report.files_scanned = len(files)
    report.files_reanalyzed = len(misses)
    suppressed = 0
    summaries: list[FileSummary] = []
    for rel in order:
        record = records[rel]
        report.findings.extend(
            LintFinding.from_dict(f) for f in record["findings"]
        )
        suppressed += int(record["suppressed"])
        raw_summary = record.get("summary")
        if raw_summary is not None:
            summaries.append(FileSummary.from_dict(raw_summary))

    # -- whole-program phase ------------------------------------------------
    if program_rules and summaries:
        program = Program(summaries)
        by_path = {s.path: s for s in summaries}
        for rule in program_rules:
            for finding in rule.check_program(program):
                fs = by_path.get(finding.path)
                if fs is not None and fs.is_suppressed(finding.line, finding.rule):
                    suppressed += 1
                    continue
                report.findings.append(finding)

    if cache is not None:
        cache.prune(set(order))
        cache.save()

    report.suppressed = suppressed
    if baseline is not None:
        fresh, absorbed = baseline.filter(report.findings)
        report.findings = fresh
        report.baselined = absorbed
    report.sort()
    return report
