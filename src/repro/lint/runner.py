"""File discovery and rule execution.

``lint_paths`` is the programmatic entry (the CLI and tests call it);
``lint_source`` lints one in-memory source string, which is what the
rule unit tests use.  Paths in findings are reported relative to the
common scan root so baselines are machine-independent.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from .base import ALL_RULES, FileContext, Rule, run_rules
from .baseline import Baseline
from .findings import LintFinding, LintReport

__all__ = ["default_target", "discover_files", "lint_paths", "lint_source"]

_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", "build", "dist"}


def default_target() -> Path:
    """The installed ``repro`` package source tree (``…/src/repro``)."""
    return Path(__file__).resolve().parents[1]


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        path = Path(p)
        if path.is_dir():
            for f in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    out.add(f)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _relative_to_root(file: Path, roots: Sequence[Path]) -> str:
    resolved = file.resolve()
    for root in roots:
        try:
            rel = resolved.relative_to(root.resolve())
        except ValueError:
            continue
        if root.is_dir():
            return str(Path(root.name) / rel)
        # ``root`` is the file itself (rel == "."): anchor on its parent so
        # single-file targets render as "pkg/mod.py", not ".".
        return str(Path(root.parent.name) / root.name)
    return str(file)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
) -> list[LintFinding]:
    """Lint one source string (unit-test entry point).

    ``path`` participates in rule scoping (e.g. RL002 only fires for
    paths under ``schedulers/`` or ``adversaries/``), so tests pass a
    representative fake path.
    """
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, source, tree)
    return run_rules(ctx, list(rules) if rules is not None else ALL_RULES)


def lint_paths(
    paths: Sequence[str | Path] | None = None,
    *,
    rules: Iterable[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint files/directories and return an aggregate report.

    Parameters
    ----------
    paths:
        Files or directories; defaults to the installed package tree.
    rules:
        Subset of rules to run (default: all registered rules).
    baseline:
        Grandfathered findings to absorb (see :mod:`repro.lint.baseline`).
    """
    targets = [Path(p) for p in (paths if paths else [default_target()])]
    files = discover_files(targets)
    active = list(rules) if rules is not None else ALL_RULES
    report = LintReport()

    suppressed = 0

    def count_suppressed(_f: LintFinding) -> None:
        nonlocal suppressed
        suppressed += 1

    for file in files:
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            report.findings.append(
                LintFinding(
                    rule="RL000",
                    severity="error",
                    path=_relative_to_root(file, targets),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            report.files_scanned += 1
            continue
        ctx = FileContext(_relative_to_root(file, targets), source, tree)
        report.extend(run_rules(ctx, active, on_suppressed=count_suppressed))
        report.files_scanned += 1

    report.suppressed = suppressed
    if baseline is not None:
        fresh, absorbed = baseline.filter(report.findings)
        report.findings = fresh
        report.baselined = absorbed
    report.sort()
    return report
