"""RL002 — nondeterminism in decision paths.

Competitive-ratio measurements must be reproducible run to run: the
§3.1/§4.1 adversary games and every golden-trace test pin exact event
orders.  Three classes of accidental nondeterminism are flagged inside
scheduler and adversary modules:

* **unseeded randomness** — calls through the global ``random`` module
  state (``random.random()``, ``random.choice`` …) or legacy global
  NumPy randomness (``np.random.rand`` …).  Constructing an explicitly
  seeded generator (``random.Random(seed)``,
  ``np.random.default_rng(seed)``) is the sanctioned pattern.
* **wall-clock reads** — ``time.time`` / ``perf_counter`` /
  ``monotonic`` / ``datetime.now`` inside decision code makes behaviour
  depend on host speed.
* **set-order iteration** — ``for x in {…}`` / ``for x in set(…)``:
  Python set iteration order is insertion-and-hash dependent, so any
  scheduling decision fed from it varies across processes (hash
  randomization).  Sort first (the codebase convention is
  ``sorted(..., key=lambda j: (j.deadline, j.arrival, j.id))``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .astutils import dotted_name, walk_functions
from .base import FileContext, Rule, register
from .findings import LintFinding

__all__ = ["NondeterminismRule"]

#: Sanctioned constructors on otherwise-global RNG namespaces.
_SEEDED_OK = {
    "random.Random",
    "random.SystemRandom",
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.Generator",
    "numpy.random.Generator",
    "np.random.SeedSequence",
    "numpy.random.SeedSequence",
}

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}


def _module_scope(path: str) -> bool:
    norm = path.replace("\\", "/")
    return "/schedulers/" in norm or "/adversaries/" in norm


class _FunctionSetTracker:
    """Names bound to bare-set expressions within one function."""

    def __init__(self, fn: ast.AST) -> None:
        self.set_names: set[str] = set()
        self.discharged: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.set_names.add(t.id)
            elif isinstance(node, ast.Call):
                # sorted(s) / list(s) / min/max(s) discharge order concerns.
                name = dotted_name(node.func)
                if name in ("sorted", "min", "max", "sum", "len", "frozenset"):
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            self.discharged.add(arg.id)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) == "set"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class NondeterminismRule(Rule):
    code = "RL002"
    name = "nondeterminism"
    severity = "error"
    description = (
        "unseeded randomness, wall-clock reads, or set-order iteration "
        "in scheduler/adversary decision paths"
    )

    def applies_to(self, path: str) -> bool:
        return _module_scope(path)

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        yield from self._check_calls(ctx)
        yield from self._check_set_iteration(ctx)

    # -- unseeded RNG and clocks ----------------------------------------
    def _check_calls(self, ctx: FileContext) -> Iterator[LintFinding]:
        imported_random_funcs = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in ("Random", "SystemRandom"):
                        imported_random_funcs.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _SEEDED_OK:
                continue
            if name.startswith("random.") or name.startswith("np.random.") or name.startswith("numpy.random."):
                yield self.finding(
                    ctx,
                    node,
                    f"call to global-state RNG {name}(); construct a seeded "
                    "generator instead (np.random.default_rng(seed) or "
                    "random.Random(seed))",
                    symbol=_enclosing_symbol(ctx.tree, node),
                )
            elif name in imported_random_funcs:
                yield self.finding(
                    ctx,
                    node,
                    f"call to {name}() imported from the random module uses "
                    "the unseeded global RNG",
                    symbol=_enclosing_symbol(ctx.tree, node),
                )
            elif name in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {name}() in a decision path; simulation "
                    "code must use ctx.now (host speed must not change "
                    "schedules)",
                    symbol=_enclosing_symbol(ctx.tree, node),
                )

    # -- set iteration ---------------------------------------------------
    def _check_set_iteration(self, ctx: FileContext) -> Iterator[LintFinding]:
        for fn in walk_functions(ctx.tree):
            tracker = _FunctionSetTracker(fn)
            for node in ast.walk(fn):
                iter_node: ast.expr | None = None
                if isinstance(node, ast.For):
                    iter_node = node.iter
                elif isinstance(node, ast.comprehension):
                    iter_node = node.iter
                if iter_node is None:
                    continue
                flagged = _is_set_expr(iter_node) or (
                    isinstance(iter_node, ast.Name)
                    and iter_node.id in tracker.set_names
                    and iter_node.id not in tracker.discharged
                )
                if flagged:
                    yield self.finding(
                        ctx,
                        iter_node,
                        "iteration over a bare set: order is hash-dependent "
                        "and varies across processes; sort first "
                        "(e.g. sorted(s))",
                        symbol=_enclosing_symbol(ctx.tree, node),
                    )


def _enclosing_symbol(tree: ast.Module, target: ast.AST) -> str:
    """Best-effort ``Class.method`` label for a node (for fingerprints)."""
    target_line = getattr(target, "lineno", None)
    if target_line is None:
        return ""
    best: list[str] = []

    def visit(node: ast.AST, stack: list[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                start = child.lineno
                end = getattr(child, "end_lineno", start)
                if start <= target_line <= (end or start):
                    stack.append(child.name)
                    visit(child, stack)
                    if len(stack) > len(best):
                        best[:] = stack
                    stack.pop()
                    continue
            visit(child, stack)

    visit(tree, [])
    return ".".join(best)
