"""``python -m repro lint`` — the CLI face of the analyzer.

Exit codes: 0 clean, 1 findings, 2 usage error.  ``--format json``
emits the machine-readable report (consumed by CI annotations and the
lint tests); ``--update-baseline`` rewrites the baseline from current
findings (the ratchet).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path

from .base import ALL_RULES, rule_by_code
from .baseline import Baseline, load_baseline, write_baseline
from .dataflow.cache import AnalysisCache, default_cache_path
from .runner import default_target, lint_paths

__all__ = ["add_lint_parser", "cmd_lint"]

#: Default baseline filename, looked up in the current directory.
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_parser(sub: argparse._SubParsersAction) -> None:  # type: ignore[type-arg]
    p = sub.add_parser(
        "lint",
        help="run the domain-aware static analyzer (RL001-RL016)",
        description=(
            "AST-based static analysis of reproduction invariants: "
            "clairvoyance contract (RL001), determinism (RL002), "
            "float hygiene (RL003), job immutability (RL004), "
            "reset contract (RL005), unused imports (RL006), plus the "
            "whole-program dataflow rules: cross-module clairvoyance "
            "taint (RL007), pool-unsafe work (RL008), parameter domains "
            "(RL009), heap key types (RL010); hot-path output "
            "discipline (RL011: no print/logging in engine or scheduler "
            "code — use the repro.obs recorder); hot-path allocation "
            "discipline (RL012: no per-job object construction or "
            "attribute-gather loops in the engine cores' hot sections); "
            "and the invariant certifier: dual-core parity drift "
            "(RL013, cross-validated at runtime by REPRO_PARITY=1 "
            "lockstep runs), job-lifecycle typestate (RL014), decision-"
            "vocabulary exhaustiveness (RL015, cross-validated by "
            "'repro obs explain --strict'), and time monotonicity "
            "(RL016)."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text; 'sarif' emits SARIF 2.1.0 "
        "for code-scanning UIs)",
    )
    p.add_argument(
        "--fix",
        action="store_true",
        help="mechanically repair fixable findings (RL006 unused imports) "
        "and re-lint",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the unified diff without writing files",
    )
    p.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE} when it exists)"
        ),
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings and exit 0",
    )
    p.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (e.g. RL001,RL003)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    p.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print a rule's rationale and a minimal offending snippet, "
        "then exit (e.g. --explain RL007)",
    )
    p.add_argument(
        "--jobs",
        metavar="N",
        default=None,
        help="worker processes for the per-file phase "
        "('auto' = all cores; default: serial)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="directory for the incremental analysis cache "
        "(default: ./.repro_lint_cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental analysis cache",
    )


def _explain(code: str) -> int:
    """Print a rule's documentation (``--explain RLxxx``)."""
    try:
        rule = rule_by_code(code)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    doc = inspect.getdoc(type(rule)) or "(no documentation)"
    print(f"{rule.code} {rule.name} ({rule.severity})")
    print(f"  {rule.description}")
    print()
    print(doc)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:<34} {rule.description}")
        return 0
    if args.explain:
        return _explain(args.explain.strip())

    rules = ALL_RULES
    if args.select:
        try:
            rules = [rule_by_code(c.strip()) for c in args.select.split(",") if c.strip()]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif Path(DEFAULT_BASELINE).exists():
            baseline_path = Path(DEFAULT_BASELINE)

    baseline: Baseline | None = None
    if baseline_path is not None and not args.update_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    jobs: int | None = None
    if args.jobs is not None:
        from repro.perf.parallel import resolve_workers

        try:
            jobs = resolve_workers(args.jobs)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    cache: AnalysisCache | None = None
    if not args.no_cache:
        cache_path = (
            Path(args.cache_dir) / "cache.json"
            if args.cache_dir is not None
            else default_cache_path()
        )
        cache = AnalysisCache(cache_path)

    if args.dry_run and not args.fix:
        print("error: --dry-run requires --fix", file=sys.stderr)
        return 2

    paths = args.paths if args.paths else [default_target()]

    if args.fix:
        from .autofix import apply_fixes

        result = apply_fixes(paths, dry_run=args.dry_run)
        print(result.render())
        if args.dry_run:
            return 0
        # fall through: re-lint the repaired tree so the exit code and
        # report reflect what is on disk now.

    report = lint_paths(
        paths, rules=rules, baseline=baseline, jobs=jobs, cache=cache
    )

    if args.update_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        write_baseline(Baseline.from_findings(report.findings), target)
        print(
            f"wrote {len(report.findings)} finding(s) to baseline {target}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        from .sarif import render_sarif

        print(render_sarif(report, rules=rules))
    else:
        print(report.render())
    return 0 if report.clean else 1
