"""RL012 — hot-path object allocation (columnar-core discipline).

The engine's dispatch loop went columnar precisely to stop allocating a
``Job``/``JobView`` per event: on the §3.1 macro constructions (k = 2:
65 808 jobs, >260 000 events) per-event object construction is the
dominant cost, and the ``JobTable`` struct-of-arrays layout removes it.
That win is easy to erode one convenience at a time — a ``Job(...)``
here for an error message, a ``[job.arrival for job in ...]`` there for
a heap push — so this rule polices the hot sections of the two engine
cores (``repro/core/engine.py`` and ``repro/core/columnar.py``).

A **hot section** is a function whose name marks it as per-event or
per-cohort code: the dispatch loops (``_run_*``), the event handlers
(``_handle_*``), the cohort paths (``_cohort_*``, ``_complete_*``,
``_assign_*``, ``_gather*``), the start paths (``_start_*``) and the
heap feeders (``_push_*``).  Inside those, the rule flags:

* construction of a per-job object — ``Job(...)``, ``JobView(...)``,
  ``TableJobView(...)``, ``_JobState(...)``.  Hot code must address
  jobs by row index and materialise objects only at API boundaries
  (the lazily-cached ``JobTable.job`` / ``ColumnarCore._view`` are the
  sanctioned paths);
* a per-job *attribute-gather loop* — a comprehension whose element is
  an attribute read off the loop variable, or a ``for`` loop whose
  body ``.append()``s such a read.  Scalar field reads in a loop mean
  the code is walking objects where it should be slicing a column (or
  reading the table's prebuilt list mirrors).

Offending::

    def _handle_completion(self, idx):
        job = Job(id=idx, arrival=0.0, deadline=1.0)     # RL012
        deadlines = [j.deadline for j in self._pending]  # RL012

Clean::

    def _handle_completion(self, idx):
        jid = self._table.ids_list[idx]          # list-mirror scalar read
        deadlines = self._table.deadline[rows]   # column slice

Error paths that deliberately rebuild the offending ``Job`` to re-raise
the object core's exact exception run *outside* loops and are not
flagged; a deliberate in-loop materialisation takes an explicit
``# lint: ignore[RL012]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, register
from .findings import LintFinding
from .scopes import HOT_CORE_FRAGMENTS, HOT_SECTION_PREFIXES

__all__ = ["HOT_CORE_FRAGMENTS", "HOT_SECTION_PREFIXES", "HotPathAllocRule"]

#: Per-job object constructors that must not run per event.
_PER_JOB_TYPES = frozenset({"Job", "JobView", "TableJobView", "_JobState"})

_LOOPS = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.GeneratorExp)


def _is_hot_section(name: str) -> bool:
    return name.startswith(HOT_SECTION_PREFIXES)


def _attr_on(node: ast.expr, names: set[str]) -> bool:
    """Whether ``node`` is an attribute read rooted at one of ``names``."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in names
    )


def _comp_targets(node: ast.ListComp | ast.SetComp | ast.GeneratorExp) -> set[str]:
    out: set[str] = set()
    for gen in node.generators:
        for sub in ast.walk(gen.target):
            if isinstance(sub, ast.Name):
                out.add(sub.id)
    return out


@register
class HotPathAllocRule(Rule):
    """RL012 — per-job object allocation in an engine-core hot section.

    The columnar core's throughput rests on the hot loop never touching
    per-job Python objects: events carry row indexes, scalar reads go
    through the ``JobTable`` list mirrors, vector math through the NumPy
    columns, and ``Job``/``JobView`` objects exist only at API
    boundaries (lazily cached by ``JobTable.job`` and
    ``ColumnarCore._view``).  This rule keeps it that way: inside hot
    sections of ``repro/core/engine.py`` and ``repro/core/columnar.py``
    — functions named ``_run_*``, ``_handle_*``, ``_cohort_*``,
    ``_complete_*``, ``_assign_*``, ``_gather*``, ``_start_*``,
    ``_push_*`` — it flags

    * ``Job(...)`` / ``JobView(...)`` / ``TableJobView(...)`` /
      ``_JobState(...)`` constructor calls, and
    * per-job attribute-gather loops: a comprehension whose element is
      an attribute read off the loop variable, or a ``for`` loop whose
      body appends such a read — both signs of walking objects where a
      column slice or list mirror belongs.

    Offending::

        def _handle_completion(self, idx):
            job = Job(id=idx, arrival=0.0, deadline=1.0)     # RL012
            deadlines = [j.deadline for j in self._pending]  # RL012

    Clean::

        def _handle_completion(self, idx):
            jid = self._table.ids_list[idx]          # list-mirror read
            deadlines = self._table.deadline[rows]   # column slice

    One-off materialisations on error paths (outside loops) pass; a
    deliberate in-loop materialisation takes an explicit
    ``# lint: ignore[RL012]``.
    """

    code = "RL012"
    name = "hot-path-object-alloc"
    severity = "error"
    description = (
        "per-job object construction or attribute-gather loop in an "
        "engine-core hot section — use JobTable row indexes, column "
        "slices, and list mirrors instead"
    )

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(frag in normalized for frag in HOT_CORE_FRAGMENTS)

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_hot_section(node.name):
                    yield from self._check_hot_section(ctx, node)

    def _check_hot_section(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[LintFinding]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in _PER_JOB_TYPES:
                    yield self.finding(
                        ctx,
                        node,
                        f"{func.id}(...) constructed in hot section "
                        f"{fn.name}(): hot code addresses jobs by row "
                        "index; materialise objects only at API "
                        "boundaries (JobTable.job / ColumnarCore._view)",
                        symbol=func.id,
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                if _attr_on(node.elt, _comp_targets(node)):
                    yield self.finding(
                        ctx,
                        node,
                        "per-job attribute gather in hot section "
                        f"{fn.name}(): slice the JobTable column (or "
                        "read its list mirror) instead of walking views",
                        symbol=fn.name,
                    )
            elif isinstance(node, ast.For):
                yield from self._check_for_gather(ctx, fn, node)

    def _check_for_gather(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        loop: ast.For,
    ) -> Iterator[LintFinding]:
        targets = {
            sub.id for sub in ast.walk(loop.target) if isinstance(sub, ast.Name)
        }
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and len(node.args) == 1
                and _attr_on(node.args[0], targets)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "per-job attribute gather in hot section "
                    f"{fn.name}(): slice the JobTable column (or read "
                    "its list mirror) instead of walking views",
                    symbol=fn.name,
                )
