"""Finding and report model for the static analyzer.

Mirrors the shape of :mod:`repro.core.audit` (``Finding`` /
``AuditReport``): an immutable record per problem, a report object that
aggregates, and ``render()`` methods so the CLI prints the same style of
output for schedule audits and source audits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["LintFinding", "LintReport"]


@dataclass(frozen=True)
class LintFinding:
    """One static-analysis finding.

    Attributes
    ----------
    rule:
        Rule code (``"RL001"`` … ``"RL006"``).
    severity:
        ``"error"`` (gates CI) or ``"warning"`` (informational).
    path:
        Path of the offending file as scanned (usually repo-relative).
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable explanation.
    symbol:
        The enclosing class/function (``"Batch.on_arrival"``) when known;
        used for stable baseline fingerprints that survive line shifts.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    @property
    def fingerprint(self) -> str:
        """A line-number-free identity used by the baseline file.

        ``rule:path:symbol:message`` is stable under unrelated edits
        above the finding; two identical violations in one symbol share a
        fingerprint and are counted (see :mod:`repro.lint.baseline`).
        """
        return f"{self.rule}:{self.path}:{self.symbol}:{self.message}"

    def render(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} ({self.severity}){sym}: {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LintFinding":
        """Inverse of :meth:`to_dict` (cache replay, JSON round-trips)."""
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            symbol=str(data.get("symbol", "")),
        )


@dataclass
class LintReport:
    """All findings over one lint run, plus scan statistics."""

    findings: list[LintFinding] = field(default_factory=list)
    files_scanned: int = 0
    #: files whose per-file phase actually ran this invocation (cache
    #: misses); equals ``files_scanned`` when no incremental cache is used.
    files_reanalyzed: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def clean(self) -> bool:
        """True when nothing gates: no (non-baselined) errors."""
        return not self.errors

    def extend(self, findings: list[LintFinding]) -> None:
        self.findings.extend(findings)

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    def render(self) -> str:
        """Human-readable report in the ``audit`` house style."""
        lines = [f.render() for f in self.findings]
        summary = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"in {self.files_scanned} file(s)"
        )
        extras = []
        if self.files_reanalyzed != self.files_scanned:
            extras.append(f"{self.files_reanalyzed} reanalyzed")
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if extras:
            summary += f"  ({', '.join(extras)})"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report (stable key order)."""
        payload = {
            "findings": [f.to_dict() for f in self.findings],
            "files_scanned": self.files_scanned,
            "files_reanalyzed": self.files_reanalyzed,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "clean": self.clean,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
