"""Mechanical fixes for lint findings (``repro lint --fix``).

Only RL006 (unused-import) is fixable today: it is the one rule whose
remedy is a pure deletion with no judgement call.  The fixer does not
trust finding line numbers from a possibly-stale report — it re-runs the
RL006 check on the file's *current* content (honouring suppressions via
the ordinary :func:`~repro.lint.base.run_rules` path) and edits from the
fresh findings, so ``--fix`` composes safely with cached runs and with
files edited since the report was produced.

Edits per import statement:

* every bound alias unused → delete the statement's lines outright;
* some aliases unused → rewrite the statement keeping the survivors,
  on the statement's original first line (multi-line parenthesised
  imports collapse to one line);
* a statement sharing a physical line with other code (semicolons) is
  left untouched — deletion would clobber its neighbours.

``fix_source`` is a pure function (text in, text out) and a fixpoint:
running it on its own output changes nothing, which
``tests/test_lint_autofix.py`` asserts (idempotency).
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .base import FileContext, run_rules, rule_by_code

__all__ = ["FIXABLE_RULES", "FixResult", "apply_fixes", "fix_source"]

#: Rule codes ``--fix`` knows how to repair.
FIXABLE_RULES = ("RL006",)


@dataclass
class FixResult:
    """What one ``--fix`` pass did (or, under ``--dry-run``, would do)."""

    #: path -> unified diff of the proposed edit (empty when no change).
    diffs: dict[str, str] = field(default_factory=dict)
    #: number of import bindings removed across all files.
    removed: int = 0
    #: files actually rewritten (empty under ``--dry-run``).
    written: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.diffs)

    def render(self) -> str:
        if not self.diffs:
            return "nothing to fix"
        lines = [diff for diff in self.diffs.values() if diff]
        lines.append(
            f"{self.removed} unused import(s) in {len(self.diffs)} file(s)"
            + (" (dry run — nothing written)" if not self.written else " fixed")
        )
        return "\n".join(lines)


def fix_source(source: str, path: str = "<memory>") -> tuple[str, int]:
    """Remove unused imports from ``source``; return (new text, removed).

    Returns the input unchanged (and 0) when the file does not parse,
    when RL006 does not apply to ``path`` (``__init__.py`` re-export
    hubs), or when there is nothing to remove.
    """
    rule = rule_by_code("RL006")
    if not rule.applies_to(path):
        return source, 0
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    ctx = FileContext(path, source, tree)
    unused = {
        f.symbol for f in run_rules(ctx, [rule]) if f.rule == "RL006" and f.symbol
    }
    if not unused:
        return source, 0

    # Occupancy map: statements per physical line.  A line shared by two
    # statements (semicolons) is never edited.
    occupancy: dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            for ln in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                occupancy[ln] = occupancy.get(ln, 0) + 1

    lines = source.splitlines(keepends=True)
    drop: set[int] = set()  # 1-based lines to delete
    replace: dict[int, str] = {}  # 1-based first line -> rewritten text
    removed = 0

    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        span = range(node.lineno, (node.end_lineno or node.lineno) + 1)
        if any(occupancy.get(ln, 0) > 1 for ln in span):
            continue
        keep = [a for a in node.names if _bound_name(node, a) not in unused]
        if len(keep) == len(node.names):
            continue
        removed += len(node.names) - len(keep)
        drop.update(span)
        if keep:
            indent = lines[node.lineno - 1][: node.col_offset]
            replace[node.lineno] = indent + _render_import(node, keep) + "\n"

    if not removed:
        return source, 0
    out: list[str] = []
    for i, text in enumerate(lines, start=1):
        if i in replace:
            out.append(replace[i])
        elif i not in drop:
            out.append(text)
    return "".join(out), removed


def apply_fixes(paths: Iterable[str], *, dry_run: bool = False) -> FixResult:
    """Fix every fixable finding under ``paths`` (files or directories)."""
    result = FixResult()
    for file in sorted(_python_files(paths)):
        rel = str(file)
        before = file.read_text(encoding="utf-8")
        after, removed = fix_source(before, rel)
        if removed == 0:
            continue
        diff = "".join(
            difflib.unified_diff(
                before.splitlines(keepends=True),
                after.splitlines(keepends=True),
                fromfile=f"a/{rel}",
                tofile=f"b/{rel}",
            )
        )
        result.diffs[rel] = diff
        result.removed += removed
        if not dry_run:
            file.write_text(after, encoding="utf-8")
            result.written.append(rel)
    return result


def _bound_name(node: ast.Import | ast.ImportFrom, alias: ast.alias) -> str:
    if alias.asname is not None:
        return alias.asname
    if isinstance(node, ast.Import):
        return alias.name.split(".", 1)[0]
    return alias.name


def _render_import(
    node: ast.Import | ast.ImportFrom, keep: list[ast.alias]
) -> str:
    names = ", ".join(
        a.name + (f" as {a.asname}" if a.asname else "") for a in keep
    )
    if isinstance(node, ast.Import):
        return f"import {names}"
    dots = "." * node.level
    return f"from {dots}{node.module or ''} import {names}"


def _python_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from p.rglob("*.py")
        elif p.suffix == ".py":
            yield p
