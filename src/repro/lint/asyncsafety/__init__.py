"""Async-safety certifier for the serving layer (RL017–RL021).

Built on the PR 3 interprocedural fixpoint engine: the per-file phase
extracts async facts (``is_async``, awaited/finally call contexts,
``create_task`` spawn handling, ``Simulator``/``ParallelRunner``
receiver typing) into :class:`~repro.lint.dataflow.FileSummary`; the
whole-program phase assembles the coroutine-reachability graph and
blocking fixpoint (:mod:`repro.lint.asyncsafety.model`) and runs the
five rules (:mod:`repro.lint.asyncsafety.rules`):

========  ===========================================================
RL017     blocking-call-in-coroutine — sync blocking work reachable
          from a loop-reachable coroutine's sync call closure.
RL018     orphaned-task — a discarded ``create_task`` handle.
RL019     unbounded-channel — ``asyncio.Queue()``/``StreamReader()``
          without an explicit bound inside ``repro/serve``.
RL020     unshielded-cleanup-await — a ``finally`` await with neither
          ``asyncio.shield`` nor a CancelledError hard-stop handler.
RL021     queue-join-protocol — ``Queue.join()`` without balanced
          ``task_done()`` / poison-pill ordering.
========  ===========================================================

The runtime twin is :mod:`repro.serve.loopwatch`: ``REPRO_LOOPWATCH=1``
instruments the event loop to measure per-callback stalls (RL017's
runtime signature) and never-retrieved task exceptions (RL018's), and
the two are cross-validated both directions on the shared
``tests/data/lint_fixtures/async_*_pkg`` fixture packages.
"""

from __future__ import annotations

from .model import AsyncModel, external_name
from . import rules  # noqa: F401  (registration side effect)

__all__ = ["AsyncModel", "external_name"]
