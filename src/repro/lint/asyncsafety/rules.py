"""RL017–RL021 — async-safety rules for the serving layer.

The ``repro.serve`` daemon multiplexes every tenant over one event
loop, so its correctness properties are *temporal*: the loop must never
block (RL017), every spawned task must have an owner (RL018), every
channel must be bounded (RL019), cleanup awaits must survive
cancellation (RL020), and the ``Queue.join()`` drain protocol must be
balanced (RL021).  All five are whole-program rules over the
:class:`~repro.lint.asyncsafety.model.AsyncModel` built from file
summaries — no source re-reads — and each is cross-validated against
the ``REPRO_LOOPWATCH`` runtime twin
(:mod:`repro.serve.loopwatch`) on shared fixture packages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..base import ProgramRule, register
from ..findings import LintFinding
from ..scopes import SERVE_FRAGMENT
from .model import AsyncModel, external_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataflow.program import Program
    from ..dataflow.summary import FileSummary

__all__ = [
    "BlockingCallInCoroutineRule",
    "OrphanedTaskRule",
    "QueueJoinProtocolRule",
    "UnboundedChannelRule",
    "UnshieldedCleanupAwaitRule",
]

#: asyncio channel constructors that take an explicit bound.
_QUEUE_CTORS = frozenset(
    {
        "asyncio.Queue",
        "asyncio.LifoQueue",
        "asyncio.PriorityQueue",
        "asyncio.queues.Queue",
    }
)
_READER_CTORS = frozenset({"asyncio.StreamReader", "asyncio.streams.StreamReader"})


def _serve_scoped(fs: "FileSummary") -> bool:
    """Inside ``repro/serve/`` or opted in via ``_SERVE_SCOPE = True``."""
    if SERVE_FRAGMENT in fs.path.replace("\\", "/"):
        return True
    const = fs.constants.get("_SERVE_SCOPE")
    return bool(const is not None and const.get("v"))


@register
class BlockingCallInCoroutineRule(ProgramRule):
    """RL017 — a loop-reachable coroutine blocks the event loop thread.

    The daemon is one thread: every tenant, every connection, every
    drain shares the same event loop.  A single synchronous call inside
    any coroutine the loop runs — ``time.sleep``, ``open``/``fsync``
    file I/O, a ``subprocess`` round trip, a whole-instance
    ``Simulator.run()``, a ``ParallelRunner.map()`` — freezes *all* of
    them for its full duration: heartbeats stall, backpressure windows
    close, and the ``REPRO_LOOPWATCH`` twin measures the stall as one
    oversized callback.  The rule computes the coroutine-reachability
    graph (public coroutine API, ``create_task`` spawn targets,
    callback references, sync entries) and a blocking fixpoint over the
    *sync* call closure of each reachable coroutine, so blocking
    laundered through sync helpers is still charged to the coroutine
    that runs it.

    Offending::

        async def _tenant_loop(self, state):
            op = await state.queue.get()
            self._mutate(state, op)          # RL017: _mutate() →
                                             #   save_checkpoint() → os.fsync()

    Clean::

        async def _tenant_loop(self, state):
            op = await state.queue.get()
            await asyncio.to_thread(self._mutate, state, op)

    ``await asyncio.to_thread(fn, ...)`` and
    ``loop.run_in_executor(None, fn, ...)`` pass the blocking callable
    *by reference* — no call edge, so the sanctioned escape hatches are
    exempt by construction.  A deliberate inline block takes an
    explicit ``# lint: ignore[RL017]``.
    """

    code = "RL017"
    name = "blocking-call-in-coroutine"
    severity = "error"
    description = (
        "synchronous blocking call reachable from an event-loop "
        "coroutine — move it behind asyncio.to_thread/run_in_executor"
    )

    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        model = AsyncModel(program)
        for fqid in sorted(model.reachable):
            hit = model.blocking.get(fqid)
            if hit is None:
                continue
            chain, path, line, col = hit
            fs, _cls = program.fn_context[fqid]
            if fs.is_suppressed(line, self.code):
                continue
            yield self.program_finding(
                path,
                line,
                col,
                f"coroutine {fqid} ({model.reachable[fqid]}) blocks the "
                f"event loop: {chain} — run it via asyncio.to_thread / "
                "run_in_executor instead",
                symbol=fqid,
            )


@register
class OrphanedTaskRule(ProgramRule):
    """RL018 — a ``create_task`` handle is discarded.

    ``asyncio.create_task(...)`` as a bare expression statement orphans
    the task twice over: the only strong reference dies immediately (the
    event loop keeps weak references, so the task can be garbage
    collected *mid-flight*), and any exception it raises is silently
    parked until the interpreter logs "Task exception was never
    retrieved" at teardown — the runtime signature the
    ``REPRO_LOOPWATCH`` twin detects via the loop exception handler.
    Every spawned task needs an owner: store the handle and await or
    cancel it on shutdown, gather it, or chain
    ``.add_done_callback(...)`` for fire-and-forget work.

    Offending::

        async def _on_connection(self, reader, writer):
            asyncio.create_task(self._write_loop())      # RL018

    Clean::

        async def _on_connection(self, reader, writer):
            self.task = asyncio.create_task(self._write_loop())
            ...
            await self.task

    Receiver-typed spawns (``loop.create_task``, ``TaskGroup``) manage
    their own lifetimes and are out of scope.  A deliberate
    fire-and-forget takes an explicit ``# lint: ignore[RL018]``.
    """

    code = "RL018"
    name = "orphaned-task"
    severity = "error"
    description = (
        "create_task() result discarded — the task can be collected "
        "mid-flight and its exceptions are never retrieved"
    )

    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        for fqid, fn, fs, _cls in program.all_functions():
            for callee, spawned, handled, line, col in fn.spawns:
                if handled or not AsyncModel.is_asyncio_spawn(fs, callee):
                    continue
                if fs.is_suppressed(line, self.code):
                    continue
                what = f"{spawned}()" if spawned else "the spawned coroutine"
                yield self.program_finding(
                    fs.path,
                    line,
                    col,
                    f"{callee}(...) in {fqid} discards the task handle — "
                    f"{what} can be garbage-collected mid-flight and its "
                    "exceptions are never retrieved; store/await the task, "
                    "gather it, or add_done_callback",
                    symbol=fqid,
                )


@register
class UnboundedChannelRule(ProgramRule):
    """RL019 — an unbounded channel inside the serving layer.

    The daemon's backpressure invariant is that *every* hop of
    ``socket → line reader → tenant queue → worker → output queue →
    writer`` is bounded: a stalled consumer must push back to the
    sender's TCP window instead of growing daemon memory.  One default
    ``asyncio.Queue()`` (infinite) or ``StreamReader()`` (default
    limit, decoupled from ``--max-line``) silently breaks the chain —
    memory grows until the OOM killer, not the backpressure, ends the
    connection.  Inside ``repro/serve/`` (or any module declaring
    ``_SERVE_SCOPE = True``), channel constructors must pass an
    explicit bound.

    Offending::

        self.out = asyncio.Queue()                       # RL019
        reader = asyncio.StreamReader()                  # RL019

    Clean::

        self.out = asyncio.Queue(daemon.queue_size)
        reader = asyncio.StreamReader(limit=daemon._reader_limit())

    The rule checks bound *presence*, not value — the bound should come
    from the one configured knob (``--queue-size`` / ``--max-line``),
    which is not a foldable constant.  A deliberately unbounded channel
    takes an explicit ``# lint: ignore[RL019]``.
    """

    code = "RL019"
    name = "unbounded-channel"
    severity = "error"
    description = (
        "asyncio.Queue()/StreamReader() without an explicit bound in "
        "the serving layer — every backpressure hop must be bounded"
    )

    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        for fqid, fn, fs, _cls in program.all_functions():
            if not _serve_scoped(fs):
                continue
            for call in fn.calls:
                ext = external_name(fs, call.callee)
                if ext in _QUEUE_CTORS:
                    bound = call.kwargs.get("maxsize")
                    bounded = bool(call.args) or (
                        bound is not None and not self._is_zero(bound)
                    )
                    kind = "queue"
                elif ext in _READER_CTORS:
                    bounded = bool(call.args) or "limit" in call.kwargs
                    kind = "stream reader"
                else:
                    continue
                if bounded or fs.is_suppressed(call.lineno, self.code):
                    continue
                yield self.program_finding(
                    fs.path,
                    call.lineno,
                    call.col,
                    f"{call.callee}() in {fqid} constructs an unbounded "
                    f"{kind} — pass an explicit bound so a stalled "
                    "consumer stalls intake instead of growing memory",
                    symbol=fqid,
                )

    @staticmethod
    def _is_zero(arg: dict[str, Any]) -> bool:
        const = arg.get("const")
        return (
            arg.get("kind") == "const"
            and const is not None
            and const.get("k") == "num"
            and not const.get("v")
        )


@register
class UnshieldedCleanupAwaitRule(ProgramRule):
    """RL020 — an await inside ``finally`` with no cancellation story.

    A ``finally`` block runs on the cancellation path too — and the
    *first* ``await`` inside it re-raises the pending
    ``CancelledError``, abandoning the rest of the cleanup mid-flight
    (half-flushed output queues, unwritten checkpoints).  Worse, an
    await that *suspends* there can hang a second cancellation forever.
    A cleanup await needs one of the two established patterns: wrap the
    awaitable in ``asyncio.shield(...)`` so cancellation of the outer
    task cannot tear it, or use the daemon's hard-stop pattern — an
    ``except asyncio.CancelledError`` handler on the same ``try`` that
    flips the drain/abort flags first, so the ``finally`` awaits are
    guarded and bounded when they run.

    Offending::

        try:
            await self._pump(reader)
        finally:
            await state.queue.join()                 # RL020

    Clean::

        try:
            await self._pump(reader)
        except asyncio.CancelledError:
            self._abort(state)                       # hard stop: flags off
            raise
        finally:
            if not self.draining:
                await state.queue.join()             # guarded
        # ... or: await asyncio.shield(self._flush())

    A deliberate unshielded cleanup await takes an explicit
    ``# lint: ignore[RL020]``.
    """

    code = "RL020"
    name = "unshielded-cleanup-await"
    severity = "error"
    description = (
        "await in a finally block without asyncio.shield or a "
        "CancelledError hard-stop handler — cancellation abandons "
        "cleanup mid-flight"
    )

    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        for fqid, fn, fs, _cls in program.all_functions():
            for desc, shielded, guarded, line, col in fn.finally_awaits:
                if shielded or guarded or fs.is_suppressed(line, self.code):
                    continue
                yield self.program_finding(
                    fs.path,
                    line,
                    col,
                    f"await {desc} in a finally block of {fqid} is neither "
                    "shielded (asyncio.shield) nor guarded by a "
                    "CancelledError hard-stop handler — cancellation "
                    "abandons the cleanup mid-flight",
                    symbol=fqid,
                )


@register
class QueueJoinProtocolRule(ProgramRule):
    """RL021 — an unbalanced ``Queue.join()`` drain protocol.

    ``await queue.join()`` resolves only when ``task_done()`` has been
    called once per ``put``: a consumer that skips ``task_done()`` on
    *any* path (an exception between ``get()`` and ``task_done()``, an
    early ``return``) leaves the join counter high and the drain hangs
    forever — the daemon's graceful shutdown then dies by watchdog
    instead of finishing.  The rule groups queue operations by receiver
    (``self.out``, ``state.queue``) within a module/class and checks,
    wherever an awaited ``join()`` exists:

    * some ``task_done()`` exists at all for that receiver (else the
      join can never complete);
    * every consumer (a function awaiting ``<recv>.get()``) calls
      ``task_done()``, and at least one of its calls sits in a
      ``finally`` block, so exception paths cannot skip it;
    * shutdown ordering: in a function that both joins and enqueues the
      ``None`` poison pill, the pill is put *after* the join — a pill
      enqueued first can make the consumer exit early and strand
      queued work, hanging the join.

    Offending::

        async def _write_loop(self):
            while True:
                record = await self.out.get()
                await self._send(record)     # an exception here skips...
                self.out.task_done()         # RL021: ...task_done()

    Clean::

        async def _write_loop(self):
            while True:
                record = await self.out.get()
                try:
                    await self._send(record)
                finally:
                    self.out.task_done()

    A deliberate protocol variation takes an explicit
    ``# lint: ignore[RL021]``.
    """

    code = "RL021"
    name = "queue-join-protocol"
    severity = "error"
    description = (
        "Queue.join() without task_done() on every consumer path (or "
        "poison pill enqueued before the join) — the drain hangs"
    )

    #: per-receiver operation record: (fqid, fs, line, col, in_finally)
    def check_program(self, program: "Program") -> Iterator[LintFinding]:
        groups: dict[tuple[str, str | None, str], dict[str, list[Any]]] = {}
        for fqid, fn, fs, cls_name in program.all_functions():
            for call in fn.calls:
                recv, _, leaf = call.callee.rpartition(".")
                if not recv:
                    continue
                recv_leaf = recv.rsplit(".", 1)[-1]
                key = (fs.module, cls_name, recv_leaf)
                ops = groups.setdefault(
                    key,
                    {"join": [], "task_done": [], "get": [], "pill": []},
                )
                site = (fqid, fs, call.lineno, call.col, call.in_finally)
                if leaf == "join" and call.awaited:
                    ops["join"].append(site)
                elif leaf == "task_done":
                    ops["task_done"].append(site)
                elif leaf == "get" and call.awaited:
                    ops["get"].append(site)
                elif (
                    leaf in ("put", "put_nowait")
                    and call.args
                    and call.args[0].get("kind") == "const"
                    and (call.args[0].get("const") or {}).get("k") == "none"
                ):
                    ops["pill"].append(site)
        for key in sorted(groups, key=lambda k: (k[0], k[1] or "", k[2])):
            yield from self._check_group(key[2], groups[key])

    def _check_group(
        self, recv: str, ops: dict[str, list[Any]]
    ) -> Iterator[LintFinding]:
        if not ops["join"]:
            return
        if not ops["task_done"]:
            for fqid, fs, line, col, _fin in ops["join"]:
                if not fs.is_suppressed(line, self.code):
                    yield self.program_finding(
                        fs.path,
                        line,
                        col,
                        f"await {recv}.join() in {fqid} but no "
                        f"{recv}.task_done() exists anywhere — the join "
                        "can never complete",
                        symbol=fqid,
                    )
            return
        # Per-consumer balance: every getter must task_done, with at
        # least one call on a finally path.
        done_by_fn: dict[str, list[Any]] = {}
        for site in ops["task_done"]:
            done_by_fn.setdefault(site[0], []).append(site)
        for fqid, fs, line, col, _fin in ops["get"]:
            dones = done_by_fn.get(fqid)
            if dones is None:
                if not fs.is_suppressed(line, self.code):
                    yield self.program_finding(
                        fs.path,
                        line,
                        col,
                        f"consumer {fqid} awaits {recv}.get() but never "
                        f"calls {recv}.task_done() — items it takes keep "
                        "the join counter high forever",
                        symbol=fqid,
                    )
            elif not any(site[4] for site in dones):
                _dfq, dfs, dline, dcol, _dfin = dones[0]
                if not dfs.is_suppressed(dline, self.code):
                    yield self.program_finding(
                        dfs.path,
                        dline,
                        dcol,
                        f"{recv}.task_done() in {fqid} is not on every "
                        "consumer path (an exception between get() and "
                        "task_done() skips it) — move it into a finally "
                        "block",
                        symbol=fqid,
                    )
        # Shutdown ordering: pill after join, within one function.
        joins_by_fn: dict[str, list[Any]] = {}
        for site in ops["join"]:
            joins_by_fn.setdefault(site[0], []).append(site)
        for fqid, fs, line, col, _fin in ops["pill"]:
            for _jfq, _jfs, jline, _jcol, _jfin in joins_by_fn.get(fqid, []):
                if line < jline and not fs.is_suppressed(line, self.code):
                    yield self.program_finding(
                        fs.path,
                        line,
                        col,
                        f"{recv}.put(None) poison pill in {fqid} is "
                        f"enqueued before the {recv}.join() at line "
                        f"{jline} — the consumer can exit early and "
                        "strand queued work, hanging the join",
                        symbol=fqid,
                    )
                    break
