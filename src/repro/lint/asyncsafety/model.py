"""The coroutine-reachability graph and blocking-call fixpoint.

The serving layer is a single-threaded event loop: one blocking call in
any coroutine the loop runs stalls *every* tenant at once.  Proving the
loop non-blocking statically needs two whole-program facts, both built
here from :class:`~repro.lint.dataflow.FileSummary` data only (so the
parallel/incremental runner stays bit-identical to serial):

* **which** ``async def``s actually run on the event loop — the
  *coroutine-reachability graph*.  Roots are public coroutines (the API
  surface sync code enters via ``asyncio.run``), coroutines spawned via
  ``create_task`` / ``ensure_future`` anywhere, coroutines invoked from
  sync code, and coroutines passed by reference as callbacks
  (``start_unix_server(self._on_connection)``).  Edges follow resolved
  calls and spawns out of reachable coroutines, so private helpers
  awaited or gathered by a reachable coroutine are reachable too;
* **which** callables block — the *blocking fixpoint*.  Seeds are known
  blocking externals (``time.sleep``, ``open``, sync file/socket I/O,
  ``subprocess``), whole-instance simulations (``Simulator.run()`` on a
  ``Simulator``-origin receiver) and process-pool round trips
  (``ParallelRunner.map``/``starmap``).  Blocking propagates through
  *sync* call edges only: calling an ``async def`` merely constructs a
  coroutine, and the blocking inside it is charged to that coroutine
  itself when it is reachable.  A blocking callable passed as an
  *argument* (``await asyncio.to_thread(save_checkpoint, ...)``,
  ``loop.run_in_executor(None, fn)``) produces no call edge, so the
  sanctioned off-loop escape hatches are exempt by construction.

RL017 is the product of the two: a reachable coroutine whose sync call
closure blocks.  The same model feeds the ``REPRO_LOOPWATCH`` runtime
twin's cross-validation tests (static verdicts vs. measured stall
durations on shared fixture packages).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataflow.program import Program
    from ..dataflow.summary import CallSite, FileSummary

__all__ = ["AsyncModel", "BLOCKING_CALLS", "BLOCKING_LEAVES", "external_name"]

#: Fully-qualified external callables that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.replace",
        "os.rename",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: Method leaves that are synchronous file I/O wherever they appear
#: (``Path.read_text`` and friends, ``path.open(...)``).
BLOCKING_LEAVES = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes", "open"}
)

_SPAWN_CALLS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})


def external_name(fs: "FileSummary", callee: str) -> str:
    """Resolve a callee's import alias to its external dotted name.

    ``sleep`` under ``from time import sleep`` becomes ``time.sleep``;
    ``time.sleep`` under ``import time`` stays ``time.sleep``; names
    with no import binding are returned as written (builtins).
    """
    head, _, rest = callee.partition(".")
    fq = fs.imports.get(head)
    if fq is None:
        return callee
    return fq + ("." + rest if rest else "")


class AsyncModel:
    """Reachability + blocking facts over one assembled ``Program``."""

    def __init__(self, program: "Program") -> None:
        self.program = program
        #: async fn id -> how it reaches the event loop (short note)
        self.reachable: dict[str, str] = {}
        #: fn id -> (chain description, witness path, line, col)
        self.blocking: dict[str, tuple[str, str, int, int]] = {}
        self._build_reachability()
        self._blocking_fixpoint()

    # -- shared helpers ------------------------------------------------------
    def _resolved_key(self, call: "CallSite", fs: "FileSummary", cls_name: str | None) -> str | None:
        resolved = self.program.resolve_call(call, fs.module, cls_name)
        if resolved is None:
            return None
        kind, symbol = resolved
        return symbol + ".__init__" if kind == "class" else symbol

    def is_async(self, key: str) -> bool:
        fn = self.program.functions.get(key)
        return fn is not None and fn.is_async

    def spawn_target(
        self, spawned: str | None, fs: "FileSummary", cls_name: str | None
    ) -> str | None:
        """Resolve a spawn's coroutine expression to a program symbol."""
        if spawned is None:
            return None
        if spawned.startswith("self.") and cls_name is not None:
            rest = spawned[5:]
            if "." in rest:
                return None
            hit = self.program.lookup_method(f"{fs.module}.{cls_name}", rest)
            if hit is None:
                return None
            owner, _fn = hit
            return f"{owner}.{rest}"
        resolved = self.program.resolve_name(fs.module, spawned)
        if resolved is not None:
            return resolved
        # ``create_task(daemon._tenant_loop(self))`` — a method spawned
        # through an instance-typed local.  Fall back to a same-module
        # leaf-name match over async methods (deterministic: first class
        # in definition order wins).
        leaf = spawned.rsplit(".", 1)[-1]
        if "." in spawned:
            for cls in fs.classes.values():
                m = cls.methods.get(leaf)
                if m is not None and m.is_async:
                    return f"{fs.module}.{cls.name}.{leaf}"
        return None

    @staticmethod
    def is_asyncio_spawn(fs: "FileSummary", callee: str) -> bool:
        """Is this ``create_task``/``ensure_future`` the asyncio one?

        Receiver-typed spawns (``loop.create_task``, task groups) are a
        documented soundness limit — only module-rooted asyncio spawns
        are modelled.
        """
        return external_name(fs, callee) in _SPAWN_CALLS

    # -- reachability --------------------------------------------------------
    def _build_reachability(self) -> None:
        program = self.program
        roots: dict[str, str] = {}

        for fqid, fn, fs, cls_name in program.all_functions():
            if fn.is_async and not fn.name.rsplit(".", 1)[-1].startswith("_"):
                roots.setdefault(fqid, "public coroutine API")
            for callee, spawned, _handled, line, _col in fn.spawns:
                if not self.is_asyncio_spawn(fs, callee):
                    continue
                target = self.spawn_target(spawned, fs, cls_name)
                if target is not None and self.is_async(target):
                    roots.setdefault(
                        target, f"spawned via create_task at {fs.path}:{line}"
                    )
            for call in fn.calls:
                key = self._resolved_key(call, fs, cls_name)
                if key is not None and self.is_async(key) and not fn.is_async:
                    roots.setdefault(
                        key, f"entered from sync code at {fs.path}:{call.lineno}"
                    )
                for arg in [*call.args, *call.kwargs.values()]:
                    target = self._callback_ref(arg, fs, cls_name)
                    if target is not None and self.is_async(target):
                        roots.setdefault(
                            target,
                            f"scheduled as a callback at {fs.path}:{call.lineno}",
                        )

        # Closure: follow calls and spawns out of reachable coroutines.
        self.reachable = dict(roots)
        work = sorted(self.reachable)
        while work:
            fqid = work.pop()
            fn = program.functions.get(fqid)
            if fn is None or not fn.is_async:
                continue
            fs, cls_name = program.fn_context[fqid]
            targets: list[str] = []
            for call in fn.calls:
                key = self._resolved_key(call, fs, cls_name)
                if key is not None:
                    targets.append(key)
            for callee, spawned, _handled, _line, _col in fn.spawns:
                if self.is_asyncio_spawn(fs, callee):
                    target = self.spawn_target(spawned, fs, cls_name)
                    if target is not None:
                        targets.append(target)
            for key in targets:
                if self.is_async(key) and key not in self.reachable:
                    self.reachable[key] = f"driven by {fqid}"
                    work.append(key)

    def _callback_ref(
        self, arg: dict, fs: "FileSummary", cls_name: str | None
    ) -> str | None:
        kind = arg.get("kind")
        if kind == "attr" and cls_name is not None:
            hit = self.program.lookup_method(
                f"{fs.module}.{cls_name}", str(arg["attr"])
            )
            if hit is None:
                return None
            owner, _fn = hit
            return f"{owner}.{arg['attr']}"
        if kind == "ref":
            resolved = self.program.resolve_name(fs.module, str(arg["ref"]))
            if resolved is not None and resolved in self.program.functions:
                return resolved
        return None

    # -- blocking ------------------------------------------------------------
    def _seed_detail(
        self, call: "CallSite", fs: "FileSummary", cls_name: str | None
    ) -> str | None:
        """Why this single call blocks, or ``None``."""
        if call.recv_sim:
            return f"{call.callee}() runs a whole simulation inline"
        if call.recv_runner:
            return f"{call.callee}() is a process-pool round trip"
        # A name that resolves *inside* the program is a call edge, not
        # an external seed (covers a local helper named ``open``).
        if self._resolved_key(call, fs, cls_name) is not None:
            return None
        ext = external_name(fs, call.callee)
        if ext == "open" or ext in BLOCKING_CALLS:
            return f"{ext}() blocks the event loop thread"
        leaf = call.callee.rsplit(".", 1)[-1]
        if leaf in BLOCKING_LEAVES:
            return f".{leaf}() is synchronous file I/O"
        return None

    def _blocking_fixpoint(self) -> None:
        program = self.program
        blocking = self.blocking
        for fqid, fn, fs, cls_name in program.all_functions():
            for call in fn.calls:
                detail = self._seed_detail(call, fs, cls_name)
                if detail is not None:
                    blocking.setdefault(
                        fqid, (detail, fs.path, call.lineno, call.col)
                    )
                    break
        changed = True
        while changed:
            changed = False
            for fqid, fn, fs, cls_name in program.all_functions():
                if fqid in blocking:
                    continue
                for call in fn.calls:
                    key = self._resolved_key(call, fs, cls_name)
                    if key is None or key not in blocking:
                        continue
                    # Blocking propagates through *sync* calls only:
                    # calling an async def just builds a coroutine.
                    if self.is_async(key):
                        continue
                    detail = blocking[key][0]
                    blocking[fqid] = (
                        f"{call.callee}() → {detail}",
                        fs.path,
                        call.lineno,
                        call.col,
                    )
                    changed = True
                    break
