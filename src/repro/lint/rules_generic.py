"""RL006 — unused imports (generic hygiene).

The only non-domain rule: an imported name never referenced in the
module.  ``__init__.py`` files are exempt (re-export hubs), names listed
in ``__all__`` count as used, ``from __future__`` imports are ignored,
and binding an import to ``_`` (or a name starting with ``_``) signals
intent and is skipped.  Equivalent in scope to ruff's ``F401`` — kept
in-tree so the gate needs no third-party tooling.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, register
from .findings import LintFinding

__all__ = ["UnusedImportRule"]


@register
class UnusedImportRule(Rule):
    code = "RL006"
    name = "unused-import"
    severity = "error"
    description = "an imported name is never used in the module"

    def applies_to(self, path: str) -> bool:
        return not path.replace("\\", "/").endswith("__init__.py")

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        imported: dict[str, tuple[ast.AST, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    imported[bound] = (node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    imported[bound] = (node, f"{node.module or '.'}.{alias.name}")
        if not imported:
            return

        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
        used |= _all_exports(ctx.tree)
        used |= _string_annotation_names(ctx.tree)

        for bound, (node, qualified) in sorted(imported.items()):
            if bound in used or bound.startswith("_"):
                continue
            yield self.finding(
                ctx,
                node,
                f"imported name {bound!r} ({qualified}) is never used",
                symbol=bound,
            )


def _all_exports(tree: ast.Module) -> set[str]:
    """Names listed in a module-level ``__all__`` literal."""
    out: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        if value is None:
            continue
        if any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            if isinstance(value, (ast.List, ast.Tuple)):
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        out.add(elt.value)
    return out


def _string_annotation_names(tree: ast.Module) -> set[str]:
    """Identifiers inside string annotations (``x: "Foo | None"``)."""
    out: set[str] = set()
    for node in ast.walk(tree):
        for attr in ("annotation", "returns"):
            ann = getattr(node, attr, None)
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                try:
                    parsed = ast.parse(ann.value, mode="eval")
                except SyntaxError:
                    continue
                for sub in ast.walk(parsed):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
    return out
