"""Rule plumbing: file context, suppressions, and the rule registry.

A :class:`Rule` sees one parsed file at a time through a
:class:`FileContext` — the AST, the raw source lines, and the
repo-relative path — and yields :class:`~repro.lint.findings.LintFinding`
objects.  Rules self-register via the :func:`register` decorator so that
adding a rule is one new module with no runner changes.

Suppressions
------------
A finding is dropped when its source line carries either of::

    ...  # lint: ignore[RL003]
    ...  # noqa: RL003

Multiple codes may be comma-separated (``# lint: ignore[RL002,RL003]``);
a bare ``# lint: ignore`` or ``# noqa`` (no codes) suppresses every rule
on that line.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterable, Iterator, Type

from .findings import LintFinding

__all__ = [
    "ALL_RULES",
    "FileContext",
    "ProgramRule",
    "Rule",
    "register",
    "rule_by_code",
]

_SUPPRESS_RE = re.compile(
    r"#\s*(?:lint:\s*ignore(?:\[(?P<lint_codes>[A-Z0-9,\s]+)\])?"
    r"|noqa(?::\s*(?P<noqa_codes>[A-Z0-9,\s]+))?)"
)


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: line number -> set of suppressed codes ("*" = all rules)
        self.suppressions: dict[int, set[str]] = _parse_suppressions(self.lines)

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line)
        return codes is not None and ("*" in codes or code in codes)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for i, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        raw = m.group("lint_codes") or m.group("noqa_codes")
        if raw is None:
            out[i] = {"*"}
        else:
            out[i] = {c.strip() for c in raw.split(",") if c.strip()}
    return out


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``applies_to`` narrows the rule to relevant files (e.g. RL003 only
    inspects theorem-certification modules); the default scans all files.
    """

    code: str = "RL000"
    name: str = "unnamed"
    severity: str = "error"
    description: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        raise NotImplementedError  # pragma: no cover - abstract

    # -- helpers for subclasses ------------------------------------------
    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> LintFinding:
        return LintFinding(
            rule=self.code,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


class ProgramRule(Rule):
    """Base class for a *whole-program* rule (RL007+).

    Unlike :class:`Rule`, which sees one file at a time, a program rule
    receives the assembled :class:`~repro.lint.dataflow.Program` — the
    cross-module symbol table, call graph, and fixpoint analyses — and
    may report findings in any scanned file.  Program rules are executed
    by the runner after the per-file phase; they are intentionally inert
    under :func:`~repro.lint.runner.lint_source` (a single in-memory
    string has no whole-program context) unless the rule opts in via
    :meth:`check`.

    Findings reuse the ordinary fingerprint/baseline/suppression
    machinery: ``# lint: ignore[RL007]`` on the offending line works
    because :class:`~repro.lint.dataflow.FileSummary` carries the
    file's suppression table.
    """

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        return iter(())  # program rules do not run per-file

    def check_program(self, program: "object") -> Iterator[LintFinding]:
        """Yield findings over the whole program.

        ``program`` is a :class:`repro.lint.dataflow.Program`; typed as
        ``object`` here to keep :mod:`repro.lint.base` import-light (the
        dataflow package imports this module).
        """
        raise NotImplementedError  # pragma: no cover - abstract

    # -- helpers for subclasses ------------------------------------------
    def program_finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        symbol: str = "",
    ) -> LintFinding:
        return LintFinding(
            rule=self.code,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            symbol=symbol,
        )


#: Registry of rule *instances*, in registration (= code) order.
ALL_RULES: list[Rule] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = cls()
    if any(r.code == rule.code for r in ALL_RULES):
        raise ValueError(f"duplicate lint rule code {rule.code}")
    ALL_RULES.append(rule)
    ALL_RULES.sort(key=lambda r: r.code)
    return cls


def rule_by_code(code: str) -> Rule:
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    raise KeyError(f"unknown lint rule {code!r}")


def run_rules(
    ctx: FileContext,
    rules: Iterable[Rule],
    *,
    on_suppressed: Callable[[LintFinding], None] | None = None,
) -> list[LintFinding]:
    """Run every applicable rule over one file, honouring suppressions."""
    out: list[LintFinding] = []
    for rule in rules:
        if not rule.applies_to(ctx.path):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.line, finding.rule):
                if on_suppressed is not None:
                    on_suppressed(finding)
                continue
            out.append(finding)
    return out
