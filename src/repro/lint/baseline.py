"""Baseline file: grandfathered findings.

When the gate is first enabled on a codebase, pre-existing findings can
be *baselined* instead of fixed or suppressed inline.  The baseline maps
finding fingerprints (line-number free, see
:attr:`~repro.lint.findings.LintFinding.fingerprint`) to occurrence
counts; a run only fails on findings **not** covered by the baseline, and
fixing a baselined finding can never regress the gate.

The file is plain JSON (sorted keys, one fingerprint per entry) so diffs
review well::

    {
      "version": 1,
      "findings": {
        "RL003:src/repro/offline/anneal.py:anneal:exact == …": 1
      }
    }

Ratcheting: ``python -m repro lint --update-baseline`` rewrites the file
from the current findings; because fixed findings disappear from it, the
baseline only ever shrinks in review.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .findings import LintFinding

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint → allowed occurrence count."""

    counts: dict[str, int] = field(default_factory=dict)

    def filter(
        self, findings: list[LintFinding]
    ) -> tuple[list[LintFinding], int]:
        """Split findings into (new, number-baselined).

        Each fingerprint absorbs up to its recorded count of findings
        (two identical violations in one symbol share a fingerprint).
        """
        remaining = Counter(self.counts)
        fresh: list[LintFinding] = []
        absorbed = 0
        for f in findings:
            if remaining.get(f.fingerprint, 0) > 0:
                remaining[f.fingerprint] -= 1
                absorbed += 1
            else:
                fresh.append(f)
        return fresh, absorbed

    @classmethod
    def from_findings(cls, findings: list[LintFinding]) -> "Baseline":
        return cls(counts=dict(Counter(f.fingerprint for f in findings)))


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline()
    data = json.loads(p.read_text())
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported lint baseline version {data.get('version')!r} "
            f"in {p} (expected {_VERSION})"
        )
    counts = data.get("findings", {})
    if not isinstance(counts, dict):
        raise ValueError(f"malformed lint baseline {p}: 'findings' not a map")
    return Baseline(counts={str(k): int(v) for k, v in counts.items()})


def write_baseline(baseline: Baseline, path: str | Path) -> None:
    payload = {"version": _VERSION, "findings": dict(sorted(baseline.counts.items()))}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
