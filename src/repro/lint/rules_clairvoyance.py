"""RL001 — clairvoyance-leak.

The paper's non-clairvoyant model (§3) hides ``p(J)`` until ``J``
completes.  A scheduler declaring ``requires_clairvoyance = False`` that
nevertheless reads ``job.length`` (or calls ``job.with_length``) in a
method reachable before ``on_completion`` breaks the information model:
run under ``clairvoyant=True`` (e.g. in a mixed comparison grid) it
would silently exploit information it claims not to need, invalidating
every Theorem-3.x measurement.

The rule is intentionally *structural*: it tracks job-typed names (see
:func:`repro.lint.astutils.job_name_visitor`) through the pre-completion
call graph of every ``OnlineScheduler`` subclass.  Its verdicts are
cross-validated at runtime by the engine's ``REPRO_STRICT`` guard.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .astutils import (
    job_name_visitor,
    pre_completion_methods,
    scheduler_classes,
    truthy_constant,
)
from .base import FileContext, Rule, register
from .findings import LintFinding

__all__ = ["ClairvoyanceLeakRule"]


def _declared_clairvoyance(cls: ast.ClassDef) -> bool | None:
    """The class's ``requires_clairvoyance`` declaration.

    ``True``/``False`` for an explicit constant assignment, ``None`` when
    absent (inherited — ``OnlineScheduler`` defaults to ``False``) or
    dynamic.
    """
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name) and t.id == "requires_clairvoyance":
                    return truthy_constant(node.value)
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == "requires_clairvoyance"
                and node.value is not None
            ):
                return truthy_constant(node.value)
    return None


@register
class ClairvoyanceLeakRule(Rule):
    code = "RL001"
    name = "clairvoyance-leak"
    severity = "error"
    description = (
        "a scheduler with requires_clairvoyance=False reads job.length "
        "(or calls job.with_length) before the job completes"
    )

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        for cls in scheduler_classes(ctx.tree):
            declared = _declared_clairvoyance(cls)
            if declared is True:
                continue  # clairvoyant scheduler: lengths visible at arrival
            # declared False, or absent (inherits False from the base).
            for mname, fn in sorted(pre_completion_methods(cls).items()):
                job_names = job_name_visitor(fn)
                symbol = f"{cls.name}.{mname}"
                for node in ast.walk(fn):
                    if isinstance(node, ast.Attribute):
                        if (
                            node.attr == "length"
                            and isinstance(node.ctx, ast.Load)
                            and isinstance(node.value, ast.Name)
                            and node.value.id in job_names
                        ):
                            yield self.finding(
                                ctx,
                                node,
                                f"non-clairvoyant scheduler {cls.name!r} reads "
                                f"{node.value.id}.length in {mname}(), which "
                                "runs before the job completes; use "
                                ".length_if_known or declare "
                                "requires_clairvoyance = True",
                                symbol=symbol,
                            )
                        elif (
                            node.attr == "with_length"
                            and isinstance(node.value, ast.Name)
                            and node.value.id in job_names
                        ):
                            yield self.finding(
                                ctx,
                                node,
                                f"non-clairvoyant scheduler {cls.name!r} calls "
                                f"{node.value.id}.with_length in {mname}() — "
                                "committing lengths is the adversary's move, "
                                "not the scheduler's",
                                symbol=symbol,
                            )
