"""Domain-aware static analysis for the FJS reproduction.

The paper's two information models (non-clairvoyant §3 vs clairvoyant
§4) are a *contract*: a scheduler that declares
``requires_clairvoyance = False`` must never read ``job.length`` before
the job completes, or every competitive-ratio measurement it produces is
silently invalid.  This package proves that contract — and a family of
related reproduction invariants — at review time with an AST-based
analyzer (stdlib :mod:`ast` only, no third-party dependencies).

Rules
-----
========  ===============================================================
RL001     clairvoyance-leak — a scheduler whose ``requires_clairvoyance``
          is falsy reads ``.length`` / calls ``.with_length`` in a method
          reachable before ``on_completion``.
RL002     nondeterminism — unseeded ``random`` / wall-clock reads /
          iteration over bare ``set``s in scheduler or adversary
          decision paths.
RL003     float-hygiene — ``==`` / ``!=`` between float-typed
          expressions in theorem-certification code, where exact
          ``Fraction`` comparison or a documented tolerance is required.
RL004     state-mutation — assignment to ``JobView`` / ``Job``
          attributes inside a scheduler (jobs are immutable inputs).
RL005     reset-contract — a scheduler subclass ``reset()`` that never
          calls ``super().reset()``.
RL006     unused-import — an imported name never used in the module
          (generic hygiene; ``__init__.py`` re-export hubs exempt).
RL007     cross-module-clairvoyance-taint — the whole-program upgrade of
          RL001: a leak laundered through helpers in *other* modules.
RL008     pool-unsafe-work — a lambda, closure, or transitively impure
          callable submitted to a ``ParallelRunner`` map.
RL009     parameter-domain-violation — constant arguments outside a
          callee's raise-guarded domain (``CDB(alpha<=1)``, …).
RL010     heap-key-type-mix — ``heappush`` tuples on one heap mixing
          un-orderable element types (``TypeError`` on a tie).
RL011     hot-path-print — ``print``/``logging``/raw stdio in
          ``repro/core/`` or ``repro/schedulers/``; per-event output
          belongs in the :mod:`repro.obs` recorder.
RL012     hot-path-object-alloc — per-job ``Job``/``JobView``
          construction or attribute-gather loops inside hot sections of
          the engine cores; hot code must use ``JobTable`` row indexes,
          column slices, and list mirrors.
RL013     core-parity-drift — a state field, event kind, or guard in one
          engine core (object/columnar) with no declared mirror or
          ``# parity: <side>-only`` annotation in the other; includes
          the cohort-soundness table and the armed scalar-mirror loop.
RL014     lifecycle-typestate — a PENDING→RUNNING→DONE lifecycle write
          in an illegal event phase, or a scheduler that starts jobs
          from ``on_deadline`` without the deadline-flag/backstop
          decision.
RL015     decision-vocabulary-exhaustiveness — scheduler decision
          reasons vs the closed ``DECISION_RULES`` vocabulary, both
          directions (no unknown reasons, no dead keys).
RL016     time-monotonicity — a heap-push key or engine clock write not
          provably monotone (guards, clock anchoring, admission
          axioms).
RL017     blocking-call-in-coroutine — ``time.sleep``, sync file/socket
          I/O, ``Simulator.run``, ``ParallelRunner.map`` reachable from
          an event-loop coroutine's sync call closure without
          ``to_thread``/``run_in_executor``.
RL018     orphaned-task — a ``create_task`` handle discarded (task
          collectable mid-flight, exceptions never retrieved).
RL019     unbounded-channel — ``asyncio.Queue()``/``StreamReader()``
          without an explicit bound inside ``repro/serve`` (the
          backpressure invariant).
RL020     unshielded-cleanup-await — an await in a ``finally`` block
          with neither ``asyncio.shield`` nor a CancelledError
          hard-stop handler.
RL021     queue-join-protocol — ``Queue.join()`` without ``task_done()``
          on every consumer path, or a poison pill enqueued before the
          join.
========  ===============================================================

RL007–RL021 are *program rules* (:class:`~repro.lint.base.ProgramRule`):
they run over the whole-program symbol table, call graph, and fixpoint
analyses assembled by :mod:`repro.lint.dataflow` from per-file
summaries.  The per-file phase is parallel (``lint --jobs N``) and
incremental (content-hash cache, see
:class:`~repro.lint.dataflow.AnalysisCache`).

Suppression: append ``# lint: ignore[RL003]`` (or ``# noqa: RL003``) to
the offending line.  Grandfathered findings live in a baseline file (see
:mod:`repro.lint.baseline`); the CLI gate only fails on *new* findings.

The static RL001 verdicts are cross-validated by a runtime oracle: under
``REPRO_STRICT=1`` the engine records (and rejects) pre-completion
``.length`` reads by schedulers declaring ``requires_clairvoyance =
False`` — see :mod:`repro.core.engine`.  RL013 has its own twin
(``REPRO_PARITY=1`` lockstep core diffing), and RL017/RL018 are
cross-validated by the ``REPRO_LOOPWATCH=1`` instrumented event loop
(:mod:`repro.serve.loopwatch`), which measures per-callback stalls and
never-retrieved task exceptions on the shared async fixture packages.
"""

from __future__ import annotations

from .autofix import apply_fixes, fix_source
from .baseline import Baseline, load_baseline, write_baseline
from .sarif import render_sarif, to_sarif
from .findings import LintFinding, LintReport
from .base import ALL_RULES, FileContext, ProgramRule, Rule, rule_by_code
from .runner import default_target, lint_paths, lint_source

# Importing the rule modules registers them with the registry.
from . import rules_clairvoyance  # noqa: F401  (registration side effect)
from . import rules_determinism  # noqa: F401
from . import rules_floats  # noqa: F401
from . import rules_schedstate  # noqa: F401
from . import rules_generic  # noqa: F401
from . import rules_observability  # noqa: F401
from . import rules_perf  # noqa: F401
from . import dataflow  # noqa: F401  (registers RL007-RL010)
from . import invariants  # noqa: F401  (registers RL013-RL016)
from . import asyncsafety  # noqa: F401  (registers RL017-RL021)
from .dataflow import AnalysisCache, Program, default_cache_path

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "Baseline",
    "FileContext",
    "LintFinding",
    "LintReport",
    "Program",
    "ProgramRule",
    "Rule",
    "apply_fixes",
    "default_cache_path",
    "default_target",
    "fix_source",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_sarif",
    "rule_by_code",
    "to_sarif",
    "write_baseline",
]
