"""RL004 — job-state mutation · RL005 — reset contract.

**RL004.** :class:`~repro.core.engine.JobView` objects are the engine's
*shared, reused* view of a job: one view per job, handed to every hook.
A scheduler that assigns to a job attribute (``job.foo = …``) either
fails at runtime (``JobView`` has ``__slots__``; ``Job`` is frozen) or —
worse, if the model ever grew a writable attribute — leaks state between
schedulers in a comparison grid.  Schedulers keep private state on
``self``.

**RL005.** ``OnlineScheduler.reset()`` clears ``flag_job_ids``; the
docstring contract says *"Subclasses must call ``super().reset()``"*.
A subclass ``reset`` that doesn't carries flag-job state across runs,
corrupting the flag-forest lemma checks in ``repro.analysis``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .astutils import (
    class_methods,
    dotted_name,
    job_name_visitor,
    scheduler_classes,
)
from .base import FileContext, Rule, register
from .findings import LintFinding

__all__ = ["JobMutationRule", "ResetContractRule"]


@register
class JobMutationRule(Rule):
    code = "RL004"
    name = "state-mutation"
    severity = "error"
    description = "assignment to Job/JobView attributes inside a scheduler"

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        for cls in scheduler_classes(ctx.tree):
            for mname, fn in sorted(class_methods(cls).items()):
                job_names = job_name_visitor(fn)
                if not job_names:
                    continue
                symbol = f"{cls.name}.{mname}"
                for node in ast.walk(fn):
                    targets: list[ast.expr] = []
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        targets = [node.target]
                    elif isinstance(node, ast.Delete):
                        targets = node.targets
                    for t in targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id in job_names
                        ):
                            yield self.finding(
                                ctx,
                                t,
                                f"scheduler {cls.name!r} mutates job state "
                                f"({t.value.id}.{t.attr} = …) in {mname}(); "
                                "jobs are immutable inputs — keep per-job "
                                "state on self",
                                symbol=symbol,
                            )


@register
class ResetContractRule(Rule):
    code = "RL005"
    name = "reset-contract"
    severity = "error"
    description = "a scheduler reset() that never calls super().reset()"

    def check(self, ctx: FileContext) -> Iterator[LintFinding]:
        for cls in scheduler_classes(ctx.tree):
            fn = class_methods(cls).get("reset")
            if fn is None:
                continue  # inherited reset is fine
            if not _calls_super_reset(fn):
                yield self.finding(
                    ctx,
                    fn,
                    f"{cls.name}.reset() never calls super().reset(); "
                    "flag_job_ids (and base-class state) survives across "
                    "runs, corrupting flag-forest analysis",
                    symbol=f"{cls.name}.reset",
                )


def _calls_super_reset(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "reset"):
            continue
        # super().reset()
        if (
            isinstance(func.value, ast.Call)
            and dotted_name(func.value.func) == "super"
        ):
            return True
        # OnlineScheduler.reset(self) — explicit base call also honours
        # the contract.
        base = dotted_name(func.value)
        if base is not None and base.rsplit(".", 1)[-1] == "OnlineScheduler":
            return True
    return False
