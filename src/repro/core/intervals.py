"""Half-open interval algebra.

The paper (Section 2) works exclusively with half-open intervals
``I = [I^-, I^+)``; the span of a job set is the Lebesgue measure of the
union of the jobs' active intervals.  This module provides:

* :class:`Interval` — an immutable half-open interval with the paper's
  ``left``/``right`` endpoint accessors and ``len(I) = I^+ - I^-``.
* :class:`IntervalUnion` — a canonical (sorted, disjoint, merged) union of
  intervals supporting measure, membership, intersection, gaps and
  incremental insertion.  This is the workhorse behind every span
  computation in the library.
* :func:`union_measure` — a NumPy-vectorised union measure for large batch
  computations (the hot path identified in DESIGN.md), avoiding Python
  object overhead when measuring tens of thousands of intervals.

Intervals of zero length are *empty* (half-open), and are normalised away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Interval",
    "IntervalUnion",
    "union_measure",
    "merge_intervals",
]


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A half-open interval ``[left, right)``.

    Instances are ordered lexicographically by ``(left, right)`` which is
    the order used throughout the library for deterministic processing.
    """

    left: float
    right: float

    def __post_init__(self) -> None:
        if math.isnan(self.left) or math.isnan(self.right):
            raise ValueError("interval endpoints must not be NaN")
        if self.right < self.left:
            raise ValueError(
                f"interval right endpoint {self.right} precedes left {self.left}"
            )

    @property
    def length(self) -> float:
        """``len(I) = I^+ - I^-`` in the paper's notation."""
        return self.right - self.left

    @property
    def empty(self) -> bool:
        """True when the interval contains no points (``left == right``)."""
        return self.right <= self.left

    def contains(self, t: float) -> bool:
        """Whether time ``t`` lies in ``[left, right)``."""
        return self.left <= t < self.right

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two half-open intervals share at least one point."""
        return self.left < other.right and other.left < self.right

    def touches_or_overlaps(self, other: "Interval") -> bool:
        """Whether the intervals overlap or abut (``[0,1)`` and ``[1,2)``)."""
        return self.left <= other.right and other.left <= self.right

    def intersection(self, other: "Interval") -> "Interval | None":
        """The common part of two intervals, or ``None`` when disjoint."""
        lo = max(self.left, other.left)
        hi = min(self.right, other.right)
        if hi <= lo:
            return None
        return Interval(lo, hi)

    def intersection_length(self, other: "Interval") -> float:
        """Measure of the overlap between two intervals (0 when disjoint)."""
        return max(0.0, min(self.right, other.right) - max(self.left, other.left))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both intervals."""
        return Interval(min(self.left, other.left), max(self.right, other.right))

    def shift(self, delta: float) -> "Interval":
        """The interval translated by ``delta``."""
        return Interval(self.left + delta, self.right + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.left:g}, {self.right:g})"


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge intervals into a sorted list of disjoint, non-abutting pieces.

    Abutting intervals (``[0,1)`` + ``[1,2)``) are coalesced since their
    union is connected.  Empty intervals are dropped.
    """
    pieces = sorted(iv for iv in intervals if not iv.empty)
    if not pieces:
        return []
    merged: list[Interval] = [pieces[0]]
    for iv in pieces[1:]:
        last = merged[-1]
        if iv.left <= last.right:
            if iv.right > last.right:
                merged[-1] = Interval(last.left, iv.right)
        else:
            merged.append(iv)
    return merged


class IntervalUnion:
    """A canonical union of half-open intervals.

    The union is stored as a sorted list of disjoint non-abutting
    :class:`Interval` components, so ``measure`` is a simple sum and
    membership queries are binary searches.  The structure is immutable
    from the caller's perspective; mutating operations return new unions
    except :meth:`add` on a :class:`MutableIntervalUnion`-style usage via
    ``insert`` which is provided for the simulator's incremental needs.
    """

    __slots__ = ("_components",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._components: list[Interval] = merge_intervals(intervals)

    # -- factory helpers -------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "IntervalUnion":
        """Build a union from ``(left, right)`` tuples."""
        return cls(Interval(lo, hi) for lo, hi in pairs)

    @classmethod
    def from_starts_lengths(
        cls, starts: Sequence[float], lengths: Sequence[float]
    ) -> "IntervalUnion":
        """Build a union of ``[s_i, s_i + p_i)`` intervals."""
        return cls(Interval(s, s + p) for s, p in zip(starts, lengths, strict=True))

    # -- inspection ------------------------------------------------------
    @property
    def components(self) -> tuple[Interval, ...]:
        """The maximal contiguous pieces, sorted left to right."""
        return tuple(self._components)

    @property
    def measure(self) -> float:
        """Total length of the union (the *span* when intervals are jobs)."""
        return sum(iv.length for iv in self._components)

    @property
    def empty(self) -> bool:
        return not self._components

    @property
    def left(self) -> float:
        """Leftmost covered point; raises on an empty union."""
        if not self._components:
            raise ValueError("empty union has no left endpoint")
        return self._components[0].left

    @property
    def right(self) -> float:
        """Supremum of covered points; raises on an empty union."""
        if not self._components:
            raise ValueError("empty union has no right endpoint")
        return self._components[-1].right

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._components)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalUnion):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(tuple(self._components))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = " ∪ ".join(repr(iv) for iv in self._components) or "∅"
        return f"IntervalUnion({inner})"

    def contains(self, t: float) -> bool:
        """Whether time ``t`` is covered by the union."""
        comp = self.component_at(t)
        return comp is not None

    def component_at(self, t: float) -> Interval | None:
        """The contiguous component covering ``t``, or ``None``.

        This implements the paper's ``I_S(J)`` lookup: the contiguous
        interval of a span that a given active interval falls in.
        """
        lo, hi = 0, len(self._components) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            comp = self._components[mid]
            if t < comp.left:
                hi = mid - 1
            elif t >= comp.right:
                lo = mid + 1
            else:
                return comp
        return None

    def intersection_length(self, interval: Interval) -> float:
        """Measure of ``union ∩ interval``."""
        return sum(c.intersection_length(interval) for c in self._components)

    def added_measure(self, interval: Interval) -> float:
        """How much the union's measure would grow by inserting ``interval``.

        Equal to ``len(interval) - len(union ∩ interval)``.  This is the
        quantity offline heuristics greedily minimise.
        """
        return interval.length - self.intersection_length(interval)

    def gaps(self) -> list[Interval]:
        """The maximal uncovered intervals strictly between components."""
        out: list[Interval] = []
        for a, b in zip(self._components, self._components[1:]):
            out.append(Interval(a.right, b.left))
        return out

    # -- algebra ---------------------------------------------------------
    def union(self, other: "IntervalUnion | Interval") -> "IntervalUnion":
        """Union with another union or a single interval."""
        if isinstance(other, Interval):
            extra: Iterable[Interval] = (other,)
        else:
            extra = other._components
        return IntervalUnion([*self._components, *extra])

    def insert(self, interval: Interval) -> "IntervalUnion":
        """Alias of :meth:`union` for a single interval (returns new union)."""
        return self.union(interval)

    def intersection(self, other: "IntervalUnion") -> "IntervalUnion":
        """Pointwise intersection of two unions (two-pointer sweep)."""
        out: list[Interval] = []
        i = j = 0
        a, b = self._components, other._components
        while i < len(a) and j < len(b):
            iv = a[i].intersection(b[j])
            if iv is not None:
                out.append(iv)
            if a[i].right <= b[j].right:
                i += 1
            else:
                j += 1
        return IntervalUnion(out)

    def key(self) -> tuple[tuple[float, float], ...]:
        """A hashable canonical key (used for solver memoisation)."""
        return tuple((c.left, c.right) for c in self._components)


def union_measure(starts: np.ndarray | Sequence[float], lengths: np.ndarray | Sequence[float]) -> float:
    """Measure of ``⋃ [s_i, s_i + p_i)`` computed with vectorised NumPy.

    This is the library's hot path for span computation over large
    schedules: sort by start, then a vectorised running-maximum sweep
    accumulates covered length without building Python objects.

    Parameters
    ----------
    starts, lengths:
        Equal-length arrays of interval starts and (non-negative) lengths.

    Returns
    -------
    float
        The Lebesgue measure of the union.
    """
    s = np.asarray(starts, dtype=np.float64)
    p = np.asarray(lengths, dtype=np.float64)
    if s.shape != p.shape:
        raise ValueError("starts and lengths must have identical shapes")
    if s.size == 0:
        return 0.0
    if np.any(p < 0):
        raise ValueError("interval lengths must be non-negative")
    order = np.argsort(s, kind="stable")
    s = s[order]
    e = s + p[order]
    # Running maximum of interval right-endpoints seen so far, *before*
    # each interval: the classic sweep  covered += max(0, e_i - max(s_i, reach)).
    reach = np.maximum.accumulate(e)
    prev_reach = np.empty_like(reach)
    prev_reach[0] = -np.inf
    prev_reach[1:] = reach[:-1]
    covered = np.maximum(0.0, e - np.maximum(s, prev_reach))
    return float(covered.sum())
