"""Job and instance model for Flexible Job Scheduling.

Following Section 2 of the paper, a job ``J`` carries

* ``arrival``  — ``a(J)``, the time the job becomes known/startable,
* ``deadline`` — ``d(J)``, the *starting deadline*: the latest time the
  job may be started (not a completion deadline),
* ``length``   — ``p(J)``, the processing length; once started the job
  runs ``p(J)`` time units without interruption.

``laxity = d(J) - a(J)`` is the job's flexibility in starting.

An :class:`Instance` is an immutable collection of jobs, the unit that
workload generators produce, online simulations consume, and offline
solvers optimise.  It also exposes ``mu`` — the max/min processing-length
ratio that governs the non-clairvoyant competitive bounds.

Jobs whose length is decided adaptively by an adversary (Section 3.1's
lower-bound construction) are modelled with ``length=None``; such jobs can
only be run through the simulator together with an adversary that commits
the lengths at run time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .errors import InvalidInstanceError, InvalidJobError
from .intervals import Interval

__all__ = ["Job", "Instance", "make_jobs"]


@dataclass(frozen=True, slots=True)
class Job:
    """An FJS job.  Immutable; compare/hash by identity of all fields.

    Parameters
    ----------
    id:
        A non-negative integer identifier, unique within an instance.
    arrival:
        ``a(J) >= 0``.
    deadline:
        ``d(J) >= a(J)`` — the latest permissible *start* time.
    length:
        ``p(J) > 0``, or ``None`` for adversary-controlled lengths that
        are committed during a simulation.
    size:
        Optional resource demand used by the MinUsageTime DBP extension
        (Section 5 of the paper); ignored by pure span scheduling.
    """

    id: int
    arrival: float
    deadline: float
    length: float | None = None
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.id < 0:
            raise InvalidJobError(f"job id must be non-negative, got {self.id}")
        for name, value in (("arrival", self.arrival), ("deadline", self.deadline)):
            if not math.isfinite(value):
                raise InvalidJobError(f"job {self.id}: {name} must be finite")
        if self.arrival < 0:
            raise InvalidJobError(
                f"job {self.id}: arrival must be non-negative, got {self.arrival}"
            )
        if self.deadline < self.arrival:
            raise InvalidJobError(
                f"job {self.id}: starting deadline {self.deadline} precedes "
                f"arrival {self.arrival}"
            )
        if self.length is not None:
            if not math.isfinite(self.length) or self.length <= 0:
                raise InvalidJobError(
                    f"job {self.id}: length must be positive and finite, "
                    f"got {self.length}"
                )
        if not math.isfinite(self.size) or self.size <= 0:
            raise InvalidJobError(
                f"job {self.id}: size must be positive and finite, got {self.size}"
            )

    @property
    def laxity(self) -> float:
        """``d(J) - a(J)``: how long the start may be delayed."""
        return self.deadline - self.arrival

    @property
    def known_length(self) -> float:
        """The length, raising if it is adversary-controlled (``None``)."""
        if self.length is None:
            raise InvalidJobError(
                f"job {self.id} has an adversary-controlled length; it can "
                "only be executed through a simulation with an adversary"
            )
        return self.length

    @property
    def latest_completion(self) -> float:
        """``d(J) + p(J)`` — latest possible completion under any scheduler."""
        return self.deadline + self.known_length

    def active_interval(self, start: float) -> Interval:
        """The half-open interval ``[start, start + p(J))``."""
        return Interval(start, start + self.known_length)

    def feasible_start(self, start: float) -> bool:
        """Whether ``start`` lies in the permissible window ``[a, d]``.

        Note the window for *starts* is closed: starting exactly at the
        deadline is allowed (the deadline is the latest possible start).
        """
        return self.arrival <= start <= self.deadline

    def with_length(self, length: float) -> "Job":
        """A copy of this job with a committed processing length.

        Only the new length is validated: the other fields were already
        validated when ``self`` was constructed, and skipping the full
        ``dataclasses.replace`` round-trip matters when the simulator
        resolves tens of thousands of adversary-assigned lengths in
        :meth:`Simulator._finish`.
        """
        if not math.isfinite(length) or length <= 0:
            raise InvalidJobError(
                f"job {self.id}: length must be positive and finite, "
                f"got {length}"
            )
        new = object.__new__(Job)
        object.__setattr__(new, "id", self.id)
        object.__setattr__(new, "arrival", self.arrival)
        object.__setattr__(new, "deadline", self.deadline)
        object.__setattr__(new, "length", length)
        object.__setattr__(new, "size", self.size)
        return new


def make_jobs(
    specs: Iterable[tuple[float, float, float]],
    *,
    start_id: int = 0,
) -> list[Job]:
    """Convenience constructor: build jobs from ``(arrival, laxity, length)``
    triples with sequential ids.

    The triple uses *laxity* rather than the absolute deadline because the
    paper's constructions are most naturally expressed that way.
    """
    jobs = []
    for i, (arrival, laxity, length) in enumerate(specs, start=start_id):
        jobs.append(Job(id=i, arrival=arrival, deadline=arrival + laxity, length=length))
    return jobs


@dataclass(frozen=True)
class Instance:
    """An immutable FJS problem instance: a finite set of jobs.

    Provides the aggregate quantities the paper's analysis is phrased in
    (``mu``, total work, job windows) plus NumPy views used by the
    vectorised metric and solver code.
    """

    jobs: tuple[Job, ...]
    name: str = "instance"
    _by_id: dict[int, Job] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, jobs: Iterable[Job], name: str = "instance") -> None:
        object.__setattr__(self, "jobs", tuple(jobs))
        object.__setattr__(self, "name", name)
        by_id: dict[int, Job] = {}
        for job in self.jobs:
            if job.id in by_id:
                raise InvalidInstanceError(f"duplicate job id {job.id}")
            by_id[job.id] = job
        object.__setattr__(self, "_by_id", by_id)

    # -- container protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, job_id: int) -> Job:
        try:
            return self._by_id[job_id]
        except KeyError:
            raise KeyError(f"no job with id {job_id} in instance {self.name!r}") from None

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_id

    @property
    def job_ids(self) -> tuple[int, ...]:
        return tuple(j.id for j in self.jobs)

    # -- aggregate properties ---------------------------------------------
    @property
    def has_unknown_lengths(self) -> bool:
        """True when any job's length is adversary-controlled."""
        return any(j.length is None for j in self.jobs)

    def _lengths(self) -> list[float]:
        out: list[float] = []
        for j in self.jobs:
            if j.length is None:
                raise InvalidInstanceError(
                    f"instance {self.name!r} contains adversary-controlled lengths"
                )
            out.append(j.length)
        return out

    @property
    def mu(self) -> float:
        """Max/min processing-length ratio ``μ`` (1.0 for empty instances)."""
        lengths = self._lengths()
        if not lengths:
            return 1.0
        return max(lengths) / min(lengths)

    @property
    def total_work(self) -> float:
        """Sum of processing lengths."""
        return sum(self._lengths())

    @property
    def max_length(self) -> float:
        lengths = self._lengths()
        if not lengths:
            raise InvalidInstanceError("empty instance has no max length")
        return max(lengths)

    @property
    def min_length(self) -> float:
        lengths = self._lengths()
        if not lengths:
            raise InvalidInstanceError("empty instance has no min length")
        return min(lengths)

    @property
    def horizon(self) -> float:
        """An upper bound on any feasible schedule's completion time."""
        if not self.jobs:
            return 0.0
        return max(j.deadline + (j.length or 0.0) for j in self.jobs)

    @property
    def is_integral(self) -> bool:
        """Whether all arrivals, deadlines and lengths are integers.

        Integral instances admit an integral optimal schedule (see
        ``repro.offline.exact``), enabling exact optimisation.
        """
        def ok(x: float | None) -> bool:
            return x is not None and float(x).is_integer()

        return all(
            ok(j.arrival) and ok(j.deadline) and ok(j.length) for j in self.jobs
        )

    # -- views --------------------------------------------------------------
    def sorted_by_arrival(self) -> list[Job]:
        """Jobs sorted by (arrival, deadline, id) — deterministic."""
        return sorted(self.jobs, key=lambda j: (j.arrival, j.deadline, j.id))

    def sorted_by_deadline(self) -> list[Job]:
        """Jobs sorted by (deadline, arrival, id) — deterministic."""
        return sorted(self.jobs, key=lambda j: (j.deadline, j.arrival, j.id))

    def arrays(self) -> dict[str, np.ndarray]:
        """NumPy views ``{'arrival', 'deadline', 'length', 'id'}`` in job order."""
        return {
            "id": np.array([j.id for j in self.jobs], dtype=np.int64),
            "arrival": np.array([j.arrival for j in self.jobs], dtype=np.float64),
            "deadline": np.array([j.deadline for j in self.jobs], dtype=np.float64),
            "length": np.array(self._lengths(), dtype=np.float64),
        }

    def subset(self, job_ids: Iterable[int], name: str | None = None) -> "Instance":
        """A new instance restricted to the given job ids (order preserved)."""
        wanted = set(job_ids)
        return Instance(
            (j for j in self.jobs if j.id in wanted),
            name=name or f"{self.name}/subset",
        )

    def scaled(self, time_factor: float, name: str | None = None) -> "Instance":
        """A copy with all times (arrival, deadline, length) multiplied."""
        if time_factor <= 0:
            raise InvalidInstanceError("time_factor must be positive")
        return Instance(
            (
                Job(
                    id=j.id,
                    arrival=j.arrival * time_factor,
                    deadline=j.deadline * time_factor,
                    length=None if j.length is None else j.length * time_factor,
                    size=j.size,
                )
                for j in self.jobs
            ),
            name=name or f"{self.name}/x{time_factor:g}",
        )

    @classmethod
    def from_triples(
        cls,
        specs: Sequence[tuple[float, float, float]],
        name: str = "instance",
    ) -> "Instance":
        """Build from ``(arrival, laxity, length)`` triples."""
        return cls(make_jobs(specs), name=name)
