"""Discrete-event simulator for online FJS.

The simulator runs an *online scheduler* against either a static
:class:`~repro.core.job.Instance` or an *adaptive adversary* (which may
inject jobs and commit processing lengths during the run, as the paper's
lower-bound constructions in §3.1 and §4.1 require).

Information models
------------------
* **Clairvoyant** — the scheduler sees ``p(J)`` from the moment ``J``
  arrives (``JobView.length`` is always available).
* **Non-clairvoyant** — ``p(J)`` is hidden until the job completes;
  accessing it earlier raises :class:`ClairvoyanceError`.  This is
  enforced structurally: the scheduler only ever handles
  :class:`JobView` objects, never raw jobs.

Scheduler protocol
------------------
A scheduler implements any subset of the hooks

``on_arrival(ctx, job)`` · ``on_deadline(ctx, job)`` ·
``on_completion(ctx, job)`` · ``on_timer(ctx, tag)``

and acts through the :class:`SchedulerContext`: ``ctx.start(job_id)``
starts a pending job *now*; ``ctx.set_timer(t, tag)`` requests a wake-up.
The engine guarantees ``on_deadline`` fires exactly when an unstarted
job's starting deadline is reached — if the scheduler returns without
starting it, the run aborts with :class:`DeadlineMissedError`, because an
FJS scheduler must start every job within its window.

Adversary protocol
------------------
An adversary (see ``repro.adversaries.base``) supplies initial jobs,
observes starts/completions, may release more jobs (with arrivals at or
after the current time), request wake-ups, and commit the length of any
job it created with ``length=None``.  Lengths are committed at an
``ASSIGN`` event whose time the adversary chooses when the job starts
(the §3.1 construction assigns lengths one time unit after start).

Strict mode (the clairvoyance oracle)
-------------------------------------
The non-clairvoyant contract is enforced structurally only when the run
itself is non-clairvoyant.  A scheduler that *declares*
``requires_clairvoyance = False`` but is executed with
``clairvoyant=True`` (e.g. in a mixed comparison grid) could silently
read lengths it claims not to need.  Under ``strict=True`` — or
``REPRO_STRICT=1`` in the environment — the engine attaches a
:class:`ClairvoyanceGuard` that records every pre-completion
``JobView.length`` read by such a scheduler and raises
:class:`ClairvoyanceError` on the spot.  This is the runtime oracle that
cross-validates the static RL001 rule in :mod:`repro.lint`: both must
agree on any scheduler, and the lint test suite checks them against each
other on shared fixtures.

Engine cores
------------
The simulator has two interchangeable cores selected by
``Simulator(..., core=...)`` (or ``REPRO_ENGINE_CORE``):

* ``"columnar"`` (default) — the struct-of-arrays hot path in
  :mod:`repro.core.columnar`: per-job state lives in a
  :class:`~repro.core.columnar.JobTable` of NumPy columns, events carry
  integer row indexes, and same-time event cohorts are dispatched as
  array operations.  ``Job``/:class:`JobView` objects are materialised
  lazily at the API boundary.
* ``"object"`` — the reference implementation below: one ``_JobState``
  per job, scalar dispatch.  It defines the semantics; the columnar core
  must reproduce its traces, schedules and observability output
  bit-for-bit (enforced by ``tests/test_engine_equivalence.py``).

Both cores serve the same :class:`SchedulerContext`, so schedulers are
core-agnostic; batch-family schedulers additionally use
``ctx.pending_ids()``/``ctx.start_batch()`` which the columnar core
vectorises.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Protocol,
    Sequence,
    runtime_checkable,
)

from heapq import heappop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .columnar import JobBatch

from .errors import (
    ClairvoyanceError,
    DeadlineMissedError,
    SchedulingViolationError,
    SimulationError,
)
from .events import EventKind, EventQueue
from .job import Instance, Job
from .schedule import Schedule
from .trace import Trace, TraceKind

# Submodule imports (not the ``repro.obs`` package facade) so the
# engine <-> obs import cycle stays one-directional at module level:
# ``repro.obs.explain`` imports ``repro.core.audit``, never the engine.
from ..obs.recorder import Recorder
from ..obs.runtime import get_recorder as _get_ambient_recorder

__all__ = [
    "ClairvoyanceGuard",
    "EngineCore",
    "JobView",
    "SchedulerContext",
    "AdversaryResponse",
    "Adversary",
    "SimulationResult",
    "Simulator",
    "simulate",
    "strict_mode_enabled",
]

#: Hard cap on processed events, guarding against runaway scheduler/adversary
#: interactions (e.g. a timer loop that never advances time).
MAX_EVENTS_DEFAULT = 10_000_000

# Integer event-kind constants, hoisted for the hot dispatch loop (an
# IntEnum attribute access per event is measurable at 10^5+ events/run).
_COMPLETION = int(EventKind.COMPLETION)
_ASSIGN = int(EventKind.ASSIGN)
_ARRIVAL = int(EventKind.ARRIVAL)
_DEADLINE = int(EventKind.DEADLINE)
_TIMER = int(EventKind.TIMER)
_ADVERSARY = int(EventKind.ADVERSARY)

# -- core-parity declaration (RL013) ------------------------------------
# This module is the *object* core of the dual-core engine; the columnar
# core must mirror every state transition below up to the field map.  A
# deliberately one-sided write carries a ``# parity: object-only``
# annotation on its line.
_PARITY_CORE = "object"
_PARITY_PEER = "repro.core.columnar"
#: Physical field -> shared logical token compared against the peer core.
_PARITY_FIELDS = {
    "arrived": "lifecycle",
    "completed": "lifecycle",
    "length_visible": "visibility",
    "length": "length",
    "start": "start-time",
    "_pending": "pending-index",
    "_running": "running-index",
}

#: Per-kind dispatch counters (indexed by the raw event kind int) for the
#: observability layer; only touched when a recorder is armed.
_OBS_EVENT_COUNTERS = (
    "engine.events.completion",  # 0
    "engine.events.assign",      # 1
    "engine.events.arrival",     # 2
    "engine.events.deadline",    # 3
    "engine.events.timer",       # 4
    "engine.events.adversary",   # 5
)


def strict_mode_enabled() -> bool:
    """Whether ``REPRO_STRICT`` requests the clairvoyance oracle."""
    return os.environ.get("REPRO_STRICT", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    )


class ClairvoyanceGuard:
    """Runtime oracle for the non-clairvoyant information model.

    Attached to every job state when a :class:`Simulator` runs in strict
    mode with a scheduler declaring ``requires_clairvoyance = False``.
    Any ``JobView.length`` read before the job completes is recorded in
    :attr:`accesses` as ``(job_id, time)`` and then rejected with
    :class:`ClairvoyanceError` — the dynamic twin of the static RL001
    rule in :mod:`repro.lint`.
    """

    __slots__ = ("accesses", "scheduler_name", "_sim")

    def __init__(self, sim: Any, scheduler_name: str) -> None:
        self.accesses: list[tuple[int, float]] = []
        self.scheduler_name = scheduler_name
        #: The active engine core (``Simulator`` or ``ColumnarCore``) —
        #: only ``_now`` and ``_obs`` are read off it.
        self._sim = sim

    def record(self, job_id: int) -> None:
        self.accesses.append((job_id, self._sim._now))
        obs = self._sim._obs
        if obs is not None:
            obs.instant(
                "engine.clairvoyance_guard",
                t=self._sim._now,
                job=job_id,
                scheduler=self.scheduler_name,
            )
            obs.counter_add("engine.clairvoyance_guard.reads")
        raise ClairvoyanceError(
            f"strict mode: scheduler {self.scheduler_name!r} declares "
            f"requires_clairvoyance=False but read job {job_id}'s length "
            f"at t={self._sim._now:g}, before the job completed "
            "(REPRO_STRICT clairvoyance oracle)"
        )


class JobView:
    """The scheduler-facing view of a job.

    Exposes arrival, starting deadline and laxity unconditionally; the
    processing length only when the information model permits (always in
    clairvoyant mode, after completion otherwise).
    """

    __slots__ = ("_job", "_state")

    def __init__(self, job: Job, state: "_JobState") -> None:
        self._job = job
        self._state = state

    @property
    def id(self) -> int:
        return self._job.id

    @property
    def arrival(self) -> float:
        return self._job.arrival

    @property
    def deadline(self) -> float:
        """The starting deadline ``d(J)`` (latest permissible start)."""
        return self._job.deadline

    @property
    def laxity(self) -> float:
        return self._job.deadline - self._job.arrival

    @property
    def size(self) -> float:
        """Resource demand (DBP extension); always visible."""
        return self._job.size

    @property
    def length(self) -> float:
        """``p(J)``; raises :class:`ClairvoyanceError` when still hidden.

        In strict mode (``REPRO_STRICT=1``) a read by a scheduler that
        declared ``requires_clairvoyance = False`` is additionally
        recorded and rejected even when the run is clairvoyant — see
        :class:`ClairvoyanceGuard`.
        """
        st = self._state
        if not st.length_visible:
            raise ClairvoyanceError(
                f"job {self._job.id}: processing length is hidden in the "
                "non-clairvoyant setting until the job completes"
            )
        guard = st.guard
        if guard is not None and not st.completed:
            guard.record(self._job.id)
        assert st.length is not None
        return st.length

    @property
    def length_if_known(self) -> float | None:
        """``p(J)`` when visible, else ``None`` (no exception)."""
        return self._state.length if self._state.length_visible else None

    @property
    def started(self) -> bool:
        return self._state.start is not None

    @property
    def start_time(self) -> float | None:
        return self._state.start

    @property
    def completed(self) -> bool:
        return self._state.completed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self._state.length if self._state.length_visible else "?"
        return (
            f"JobView(id={self.id}, a={self.arrival:g}, d={self.deadline:g}, "
            f"p={p})"
        )


class _JobState:
    """Engine-internal per-job bookkeeping.

    A plain ``__slots__`` class (not a dataclass): one is allocated per
    job and the §3.1 adversarial macro runs create tens of thousands,
    so construction cost and attribute access are on the hot path.  The
    scheduler-facing :class:`JobView` is allocated once here and reused
    for every hook call on the job.
    """

    __slots__ = (
        "job",
        "length",
        "length_visible",
        "arrived",
        "start",
        "completion",
        "completed",
        "view",
        "guard",
    )

    def __init__(self, job: Job, guard: ClairvoyanceGuard | None = None) -> None:
        self.job = job
        self.length: float | None = None  # committed processing length
        self.length_visible = False  # may the scheduler read it?
        self.arrived = False
        self.start: float | None = None
        self.completion: float | None = None
        self.completed = False
        self.guard = guard  # strict-mode clairvoyance oracle (or None)
        self.view = JobView(job, self)


@dataclass(frozen=True)
class AdversaryResponse:
    """What an adversary hook may request from the engine.

    Attributes
    ----------
    release:
        New jobs to inject.  Each job's arrival must be at or after the
        current simulation time.
    wakeup:
        An absolute time at which ``on_wakeup`` should be invoked, or
        ``None``.
    release_batch:
        A columnar :class:`~repro.core.columnar.JobBatch` of new jobs —
        the vector-friendly sibling of ``release``.  The columnar core
        admits the arrays directly; the object core materialises
        equivalent :class:`Job` objects via ``JobBatch.jobs()``.  When
        both fields are set, ``release`` is admitted first.
    """

    release: tuple[Job, ...] = ()
    wakeup: float | None = None
    release_batch: "JobBatch | None" = None


@runtime_checkable
class Adversary(Protocol):
    """Structural protocol for adaptive adversaries (see adversaries.base)."""

    def initial_jobs(self) -> Iterable[Job]: ...

    def on_start(self, job: Job, t: float) -> AdversaryResponse | None: ...

    def on_completion(self, job: Job, t: float) -> AdversaryResponse | None: ...

    def on_wakeup(self, t: float) -> AdversaryResponse | None: ...

    def length_decision_time(self, job: Job, start: float) -> float: ...

    def assign_length(self, job: Job, t: float) -> float: ...


class EngineCore(Protocol):
    """What a core must provide to back a :class:`SchedulerContext`.

    Implemented by :class:`Simulator` (the object core) and
    :class:`~repro.core.columnar.ColumnarCore`.
    """

    _now: float
    _clairvoyant: bool
    _queue: EventQueue

    def _start_job(self, job_id: int) -> None: ...

    def _start_batch(self, job_ids: Sequence[int]) -> None: ...

    def _pending_views(self) -> list[JobView]: ...

    def _running_views(self) -> list[JobView]: ...

    def _pending_ids(self) -> list[int]: ...

    def _is_started(self, job_id: int) -> bool: ...

    def _is_completed(self, job_id: int) -> bool: ...


class SchedulerContext:
    """The scheduler's handle on the running simulation.

    The context is a thin façade over the active engine core; the same
    API is served by the object core (scalar) and the columnar core
    (vectorised), so schedulers never observe which one is running.
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: EngineCore) -> None:
        self._sim = sim

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._sim._now

    @property
    def clairvoyant(self) -> bool:
        """Whether processing lengths are visible at arrival."""
        return self._sim._clairvoyant

    def start(self, job_id: int) -> None:
        """Start a pending job at the current time.

        Raises :class:`SchedulingViolationError` on any illegal start
        (unknown/unarrived/already-started job, or past the deadline).
        """
        self._sim._start_job(job_id)

    def start_batch(self, job_ids: Sequence[int]) -> None:
        """Start many pending jobs at the current time, in order.

        Semantically identical to ``for jid in job_ids: ctx.start(jid)``
        (same validation, same error on the first illegal start, same
        trace records) — but the columnar core executes the cohort as
        array operations, which is what makes the batch-family
        schedulers' deadline handler O(cohort) instead of O(cohort)
        Python calls.
        """
        self._sim._start_batch(job_ids)

    def set_timer(self, time: float, tag: Any = None) -> None:
        """Request an ``on_timer(ctx, tag)`` callback at absolute ``time``."""
        sim = self._sim
        if time < sim._now:
            raise SchedulingViolationError(
                f"timer at {time} is in the past (now={sim._now})"
            )
        sim._queue.push(time, EventKind.TIMER, tag)

    def pending(self) -> list[JobView]:
        """Arrived-but-unstarted jobs, sorted by (deadline, arrival, id).

        Backed by an incrementally maintained index, so schedulers may
        call this on every event without an O(all jobs) scan.
        """
        return self._sim._pending_views()

    def pending_ids(self) -> list[int]:
        """Ids of pending jobs, sorted by (deadline, arrival, id).

        Exactly ``[v.id for v in ctx.pending()]`` but without
        materialising the views — pair with :meth:`start_batch` for the
        vectorised cohort-start path.
        """
        return self._sim._pending_ids()

    def is_started(self, job_id: int) -> bool:
        return self._sim._is_started(job_id)

    def is_completed(self, job_id: int) -> bool:
        return self._sim._is_completed(job_id)

    def running(self) -> list[JobView]:
        """Started-but-uncompleted jobs, sorted by (start, id).

        Backed by the same incremental index as :meth:`pending`.
        """
        return self._sim._running_views()


class SimulationResult:
    """Outcome of a completed simulation.

    Attributes
    ----------
    schedule:
        The validated schedule over the *resolved* instance (all
        adversary-controlled lengths committed).
    instance:
        The resolved instance actually executed.
    span:
        The schedule's span (``schedule.span``).
    events_processed:
        Number of events dispatched — a proxy for simulation work.
    scheduler:
        The scheduler object (exposes algorithm-specific statistics such
        as flag jobs).

    The columnar core constructs results *lazily*: ``span`` and
    ``events_processed`` are available immediately, while the
    ``Job``/``Instance``/``Schedule`` objects are materialised from the
    job table on first access of ``schedule``/``instance`` (benchmark
    loops that only read ``span`` never pay for them).  The object core
    constructs them eagerly; either way the attribute API is identical.
    """

    __slots__ = (
        "events_processed",
        "scheduler",
        "trace",
        "recorder",
        "_schedule",
        "_instance",
        "_span",
        "_materialize",
    )

    def __init__(
        self,
        *,
        schedule: Schedule | None = None,
        instance: Instance | None = None,
        events_processed: int,
        scheduler: Any,
        trace: Trace | None = None,
        recorder: Any | None = None,
        materialize: "Callable[[], tuple[Schedule, Instance]] | None" = None,
        span: float | None = None,
    ) -> None:
        if schedule is None and materialize is None:
            raise SimulationError(
                "SimulationResult needs either an eager schedule or a "
                "materialize callback"
            )
        self.events_processed = events_processed
        self.scheduler = scheduler
        self.trace = trace
        #: The armed structured recorder (``None`` when observability was
        #: off) — exposes ``records``/``metrics`` and the JSONL sink.
        self.recorder = recorder
        self._schedule = schedule
        self._instance = instance
        self._span = span
        self._materialize = materialize

    def _ensure(self) -> Schedule:
        schedule = self._schedule
        if schedule is None:
            assert self._materialize is not None
            schedule, self._instance = self._materialize()
            self._schedule = schedule
            self._materialize = None
        return schedule

    @property
    def schedule(self) -> Schedule:
        return self._ensure()

    @property
    def instance(self) -> Instance:
        self._ensure()
        assert self._instance is not None
        return self._instance

    @property
    def span(self) -> float:
        if self._span is not None:
            return self._span
        return self._ensure().span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult(scheduler={type(self.scheduler).__name__}, "
            f"span={self.span:g}, events={self.events_processed})"
        )


class Simulator:
    """Runs one online scheduler against one instance or adversary.

    Parameters
    ----------
    scheduler:
        An object implementing (a subset of) the scheduler hooks.  Its
        ``setup(ctx)`` method, if present, is invoked before any event.
    instance:
        A static instance; mutually exclusive with ``adversary``.
    adversary:
        An adaptive adversary; mutually exclusive with ``instance``.
    clairvoyant:
        The information model.  Adversary-controlled lengths require
        ``clairvoyant=False`` (a clairvoyant scheduler must know lengths
        at arrival).
    max_events:
        Safety cap on dispatched events.
    trace:
        When true, record a :class:`~repro.core.trace.Trace` of every
        event and scheduler action (exposed on the result).
    strict:
        Enable the clairvoyance oracle (see module docstring).  ``None``
        (the default) defers to the ``REPRO_STRICT`` environment
        variable, so test runs can switch the whole suite on at once.
    recorder:
        A :class:`repro.obs.Recorder` for structured tracing, metrics,
        and decision provenance.  ``None`` (the default) uses the
        process's ambient recorder, which ``REPRO_TRACE=1`` arms — so
        observability needs no code changes at call sites.  A disabled
        recorder (``NullRecorder`` included) is mapped to ``None``
        before the event loop starts: the hot path then carries exactly
        one ``is not None`` test per event, which is what keeps the
        golden trace bit-identical and the macro-bench overhead ≤2 %.
    core:
        ``"columnar"`` (struct-of-arrays hot path, the default) or
        ``"object"`` (the reference scalar core).  ``None`` defers to
        the ``REPRO_ENGINE_CORE`` environment variable, then to
        ``"columnar"``.  Both cores are observably identical (traces,
        schedules, obs records); see the module docstring.
    """

    def __init__(
        self,
        scheduler: Any,
        *,
        instance: Instance | None = None,
        adversary: Adversary | None = None,
        clairvoyant: bool = False,
        max_events: int = MAX_EVENTS_DEFAULT,
        trace: bool = False,
        strict: bool | None = None,
        recorder: Recorder | None = None,
        core: str | None = None,
    ) -> None:
        if (instance is None) == (adversary is None):
            raise SimulationError(
                "provide exactly one of instance= or adversary="
            )
        if core is None:
            core = (
                os.environ.get("REPRO_ENGINE_CORE", "").strip().lower()
                or "columnar"
            )
        if core not in ("columnar", "object"):
            raise SimulationError(
                f"unknown engine core {core!r} "
                "(expected 'columnar' or 'object')"
            )
        self._core = core
        self._scheduler = scheduler
        self._instance = instance
        self._adversary = adversary
        self._clairvoyant = clairvoyant
        self._max_events = max_events
        if strict is None:
            strict = strict_mode_enabled()

        # Observability: resolve the recorder (explicit > ambient), then
        # collapse "disabled" to None so the hot loop tests one local.
        if recorder is None:
            recorder = _get_ambient_recorder()
        self._obs: Recorder | None = recorder if recorder.enabled else None
        if self._obs is not None and hasattr(scheduler, "obs"):
            # Arm the scheduler's decision-provenance channel.
            scheduler.obs = self._obs

        self._guard: ClairvoyanceGuard | None = None
        if strict and not getattr(
            type(scheduler), "requires_clairvoyance", False
        ):
            self._guard = ClairvoyanceGuard(self, type(scheduler).__name__)

        self._trace: Trace | None = Trace() if trace else None
        self._queue = EventQueue()
        self._states: dict[int, _JobState] = {}
        #: Incremental indexes behind ``ctx.pending()`` / ``ctx.running()``.
        self._pending: dict[int, _JobState] = {}
        self._running: dict[int, _JobState] = {}
        self._now = 0.0
        self._events_processed = 0
        self._ctx = SchedulerContext(self)
        self._started = False
        self._streaming = False

        # Scheduler hooks are resolved once instead of via getattr per
        # event (the previous `_call_hook` showed up in profiles at
        # ~7% of an adversarial macro run).
        self._hook_arrival = self._resolve_hook("on_arrival")
        self._hook_deadline = self._resolve_hook("on_deadline")
        self._hook_completion = self._resolve_hook("on_completion")
        self._hook_timer = self._resolve_hook("on_timer")

    def _resolve_hook(self, name: str) -> Any:
        hook = getattr(self._scheduler, name, None)
        if hook is None or not callable(hook):
            return None
        # Inherited no-op defaults (OnlineScheduler marks them with
        # ``_repro_noop_hook``) resolve to None so neither core pays a
        # Python call per event for a hook that does nothing — and so the
        # columnar core knows a cohort has no per-job callback to honour.
        if getattr(hook, "_repro_noop_hook", False):
            return None
        return hook

    @property
    def strict_guard(self) -> ClairvoyanceGuard | None:
        """The clairvoyance oracle, when strict mode armed one.

        Its ``accesses`` list survives an aborted run, so tests can
        inspect exactly which pre-completion reads occurred.
        """
        return self._guard

    # ------------------------------------------------------------------ run
    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return the result."""
        if self._started:
            raise SimulationError("a Simulator instance can only run once")
        self._started = True
        if self._core == "columnar":
            from .parity import parity_mode_enabled

            if parity_mode_enabled():
                from .parity import run_lockstep

                return run_lockstep(self)
            from .columnar import ColumnarCore

            return ColumnarCore(self).run()
        return self._run_object()

    def _run_object(self) -> SimulationResult:
        """The reference object-core event loop."""
        obs = self._obs

        if self._instance is not None:
            initial = list(self._instance.jobs)
        else:
            assert self._adversary is not None
            initial = list(self._adversary.initial_jobs())

        self._admit_batch(initial)

        setup = getattr(self._scheduler, "setup", None)
        if callable(setup):
            setup(self._ctx)

        if obs is not None:
            obs.instant(
                "engine.run_begin",
                scheduler=type(self._scheduler).__name__,
                clairvoyant=self._clairvoyant,
                adversarial=self._adversary is not None,
                initial_jobs=len(initial),
            )

        # --- hot loop -----------------------------------------------------
        # Locals hoisted and events popped as raw tuples: at >10^5 events
        # per adversarial run, attribute lookups and Event construction
        # dominate otherwise (see repro/perf/bench.py for the tracked
        # numbers).  When a recorder is armed (``obs is not None``), the
        # loop additionally maintains per-kind dispatch counters and the
        # heap high-water mark; disarmed, the extra cost is one local
        # ``is not None`` test per event (ratcheted by
        # ``python -m repro obs overhead``).
        heap = self._queue._heap
        max_events = self._max_events
        handlers = (
            self._handle_completion,  # 0 COMPLETION
            self._handle_assign,      # 1 ASSIGN
            self._handle_arrival,     # 2 ARRIVAL
            self._handle_deadline,    # 3 DEADLINE
            self._handle_timer,       # 4 TIMER
            self._handle_adversary,   # 5 ADVERSARY
        )
        processed = self._events_processed
        heap_peak = len(heap)
        try:
            if obs is not None:
                with obs.span("engine.dispatch"):
                    while heap:
                        if len(heap) > heap_peak:
                            heap_peak = len(heap)
                        time, kind, _seq, payload = heappop(heap)
                        processed += 1
                        if processed > max_events:
                            raise SimulationError(
                                f"event budget exceeded ({max_events}); "
                                "likely a scheduler/adversary live-lock"
                            )
                        if time < self._now:
                            raise SimulationError(
                                f"time went backwards: {time} < {self._now}"
                            )
                        self._now = time
                        obs.counter_add(_OBS_EVENT_COUNTERS[kind])
                        handlers[kind](payload)
            else:
                while heap:
                    time, kind, _seq, payload = heappop(heap)
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"event budget exceeded ({max_events}); "
                            "likely a scheduler/adversary live-lock"
                        )
                    if time < self._now:
                        raise SimulationError(
                            f"time went backwards: {time} < {self._now}"
                        )
                    self._now = time
                    handlers[kind](payload)
        finally:
            self._events_processed = processed
            if obs is not None:
                obs.counter_add("engine.events_processed", processed)
                obs.counter_add("engine.heap.pushes", self._queue._seq)
                obs.gauge_set("engine.heap.peak", float(heap_peak))

        return self._finish()

    # -------------------------------------------------------- streaming feed
    @property
    def now(self) -> float:
        """The logical clock (simulation time) — read-only.

        Streaming callers (``repro serve``) use it to report per-tenant
        progress and to stamp checkpoints; batch callers never need it.
        """
        return self._now

    def start_stream(self) -> None:
        """Begin an incremental (streaming) session on the object core.

        This is the entry point behind ``repro serve``: instead of one
        :meth:`run` that drains every queued event, the caller
        interleaves :meth:`feed` (admit newly arrived jobs),
        :meth:`advance` (process queued events up to a logical time) and
        finally :meth:`finish_stream` (drain and build the result).  The
        per-event semantics are identical to a batch run — the same
        heap, the same ``(time, kind, seq)`` total order, the same
        handlers — so a time-ordered job stream produces the same
        schedule, trace and decision records as running the equivalent
        static instance in one shot.

        Streaming requires the scalar object core (construct with
        ``Simulator(..., core="object")``); the columnar core's cohort
        gathering assumes the full event horizon is known up front.
        Adversaries are not supported: a streaming session's jobs come
        from the outside world, not from an in-process construction.
        """
        if self._started:
            raise SimulationError("a Simulator instance can only run once")
        if self._core != "object":
            raise SimulationError(
                "streaming sessions require the object core "
                "(construct with Simulator(..., core='object'))"
            )
        if self._adversary is not None:
            raise SimulationError(
                "streaming sessions do not support adversaries"
            )
        self._started = True
        self._streaming = True
        assert self._instance is not None
        initial = list(self._instance.jobs)
        self._admit_batch(initial)
        setup = getattr(self._scheduler, "setup", None)
        if callable(setup):
            setup(self._ctx)
        if self._obs is not None:
            self._obs.instant(
                "engine.run_begin",
                scheduler=type(self._scheduler).__name__,
                clairvoyant=self._clairvoyant,
                adversarial=False,
                initial_jobs=len(initial),
                streaming=True,
            )

    def feed(self, jobs: "Iterable[Job]") -> int:
        """Admit newly arrived jobs mid-stream; returns how many.

        Each job's arrival must be at or after the current logical clock
        (:class:`SimulationError` otherwise) — the stream is online, so
        the past cannot grow new jobs.  Admission only queues the
        arrival event; it is dispatched by a later :meth:`advance` whose
        horizon covers it, which is what preserves the batch engine's
        same-time cohort order for jobs fed one line at a time.
        """
        if not self._streaming:
            raise SimulationError(
                "feed() requires an active start_stream() session"
            )
        batch = list(jobs)
        if len(batch) == 1:
            self._admit_job(batch[0])
        elif batch:
            self._admit_batch(batch)
        return len(batch)

    def advance(self, until: float | None = None, *, inclusive: bool = True) -> int:
        """Dispatch queued events up to ``until``; returns the count.

        ``None`` drains the queue completely.  With ``inclusive=False``
        only events *strictly before* ``until`` dispatch — the mode the
        serve session uses when a job at arrival ``a`` comes in, so the
        whole time-``a`` cohort (arrivals before deadlines, exactly as
        the batch engine orders them) stays queued until the stream
        moves past ``a``.  Either way the logical clock ends at
        ``max(now, until)``, so a later :meth:`feed` of a job arriving
        before ``until`` is rejected: per-tenant streams must be
        time-monotone, exactly like the online model.
        """
        if not self._streaming:
            raise SimulationError(
                "advance() requires an active start_stream() session"
            )
        if until is not None and until < self._now:
            raise SimulationError(
                f"advance({until}) is in the past (now={self._now})"
            )
        obs = self._obs
        heap = self._queue._heap
        max_events = self._max_events
        handlers = (
            self._handle_completion,  # 0 COMPLETION
            self._handle_assign,      # 1 ASSIGN
            self._handle_arrival,     # 2 ARRIVAL
            self._handle_deadline,    # 3 DEADLINE
            self._handle_timer,       # 4 TIMER
            self._handle_adversary,   # 5 ADVERSARY
        )
        processed = self._events_processed
        first = processed
        try:
            while heap and (
                until is None
                or (heap[0][0] <= until if inclusive else heap[0][0] < until)
            ):
                time, kind, _seq, payload = heappop(heap)
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events}); "
                        "likely a scheduler/adversary live-lock"
                    )
                if time < self._now:
                    raise SimulationError(
                        f"time went backwards: {time} < {self._now}"
                    )
                self._now = time
                if obs is not None:
                    obs.counter_add(_OBS_EVENT_COUNTERS[kind])
                handlers[kind](payload)
        finally:
            self._events_processed = processed
        if until is not None and until > self._now:
            self._now = until
        return processed - first

    def finish_stream(self) -> SimulationResult:
        """Drain every remaining event and build the result.

        Remaining deadline events force their starts on the way out (the
        FJS contract: every admitted job must start within its window),
        so after this returns every fed job has started and completed.
        """
        if not self._streaming:
            raise SimulationError(
                "finish_stream() requires an active start_stream() session"
            )
        self.advance(None)
        self._streaming = False
        obs = self._obs
        if obs is not None:
            obs.counter_add("engine.events_processed", self._events_processed)
            obs.counter_add("engine.heap.pushes", self._queue._seq)
        return self._finish()

    # -------------------------------------------------------------- internal
    def _record(
        self, kind: TraceKind, job_id: int | None = None, detail: str = ""
    ) -> None:
        if self._trace is not None:
            self._trace.append(self._now, kind, job_id, detail)

    def _validate_admission(self, job: Job) -> _JobState:
        """Shared admission checks; returns the registered job state."""
        if job.id in self._states:
            raise SimulationError(f"duplicate job id {job.id} admitted")
        if job.arrival < self._now:
            raise SimulationError(
                f"job {job.id} released with arrival {job.arrival} in the "
                f"past (now={self._now})"
            )
        if job.length is None:
            if self._adversary is None:
                raise SimulationError(
                    f"job {job.id} has no length and no adversary to assign one"
                )
            if self._clairvoyant:
                raise SimulationError(
                    "adversary-controlled lengths are incompatible with the "
                    "clairvoyant information model"
                )
        st = _JobState(job, self._guard)
        if job.length is not None:
            st.length = job.length
            st.length_visible = self._clairvoyant
        self._states[job.id] = st
        if self._trace is not None:
            self._trace.append(
                self._now, TraceKind.RELEASE, job.id, f"arrival={job.arrival:g}"
            )
        obs = self._obs
        if obs is not None:
            if st.length is not None:
                obs.instant(
                    "engine.release",
                    t=self._now,
                    job=job.id,
                    arrival=job.arrival,
                    deadline=job.deadline,
                    length=st.length,
                )
            else:
                obs.instant(
                    "engine.release",
                    t=self._now,
                    job=job.id,
                    arrival=job.arrival,
                    deadline=job.deadline,
                )
        return st

    def _admit_job(self, job: Job) -> None:
        """Register a job and schedule its arrival (and deadline) events."""
        self._validate_admission(job)
        self._queue.push(job.arrival, EventKind.ARRIVAL, job.id)
        if self._obs is not None:
            self._obs.counter_add("engine.jobs_admitted")

    def _admit_batch(self, jobs: list[Job]) -> None:
        """Admit many jobs at once, heapifying the arrival events in bulk.

        Equivalent to ``for job in jobs: self._admit_job(job)`` — the
        arrival events carry the same (time, kind, seq) total order —
        but O(n) instead of O(n log n) on the initial admission, which
        for §3.1 adversarial iterations releases thousands of jobs at a
        single instant.
        """
        obs = self._obs
        if obs is not None:
            with obs.span("engine.admit_batch", n=len(jobs)):
                for job in jobs:
                    self._validate_admission(job)
                self._queue.extend(
                    (job.arrival, EventKind.ARRIVAL, job.id) for job in jobs
                )
            obs.counter_add("engine.jobs_admitted", float(len(jobs)))
            return
        for job in jobs:
            self._validate_admission(job)
        self._queue.extend(
            (job.arrival, EventKind.ARRIVAL, job.id) for job in jobs
        )

    def _handle_arrival(self, job_id: int) -> None:
        st = self._states[job_id]
        st.arrived = True
        self._pending[job_id] = st
        if self._trace is not None:
            self._trace.append(self._now, TraceKind.ARRIVAL, job_id, "")
        self._queue.push(st.job.deadline, EventKind.DEADLINE, job_id)
        if self._hook_arrival is not None:
            self._hook_arrival(self._ctx, st.view)

    def _handle_deadline(self, job_id: int) -> None:
        st = self._states[job_id]
        if st.start is not None:
            return  # job already started; the deadline event is moot
        if self._trace is not None:
            self._trace.append(self._now, TraceKind.DEADLINE, job_id, "")
        if self._hook_deadline is not None:
            self._hook_deadline(self._ctx, st.view)
        if st.start is None:
            raise DeadlineMissedError(
                f"scheduler {type(self._scheduler).__name__} failed to start "
                f"job {job_id} by its starting deadline {st.job.deadline}"
            )

    def _handle_completion(self, job_id: int) -> None:
        st = self._states[job_id]
        if st.completed:  # pragma: no cover - defensive
            raise SimulationError(f"job {job_id} completed twice")
        st.completed = True
        st.length_visible = True  # completion reveals the length
        self._running.pop(job_id, None)
        if self._trace is not None:
            self._trace.append(self._now, TraceKind.COMPLETION, job_id, "")
        if self._obs is not None:
            self._obs.instant(
                "engine.completion", t=self._now, job=job_id, length=st.length
            )
        if self._hook_completion is not None:
            self._hook_completion(self._ctx, st.view)
        if self._adversary is not None:
            self._apply_adversary_response(
                self._adversary.on_completion(st.job, self._now)
            )

    def _handle_assign(self, job_id: int) -> None:
        assert self._adversary is not None
        st = self._states[job_id]
        if st.length is not None:  # pragma: no cover - defensive
            raise SimulationError(f"job {job_id} length assigned twice")
        length = self._adversary.assign_length(st.job, self._now)
        if length <= 0:
            raise SimulationError(
                f"adversary assigned non-positive length {length} to job {job_id}"
            )
        assert st.start is not None
        completion = st.start + length
        if completion < self._now:
            raise SimulationError(
                f"adversary assigned length {length} to job {job_id} putting "
                f"its completion {completion} in the past (now={self._now})"
            )
        st.length = length
        st.completion = completion  # parity: object-only
        self._record(TraceKind.ASSIGN, job_id, f"length={length:g}")
        self._queue.push(completion, EventKind.COMPLETION, job_id)

    def _handle_timer(self, tag: Any) -> None:
        self._record(TraceKind.TIMER, None, repr(tag))
        if self._hook_timer is not None:
            self._hook_timer(self._ctx, tag)

    def _handle_adversary(self, _payload: Any) -> None:
        assert self._adversary is not None
        self._record(TraceKind.ADVERSARY_WAKEUP)
        self._apply_adversary_response(self._adversary.on_wakeup(self._now))

    # -- SchedulerContext backend (object core) ----------------------------
    def _pending_views(self) -> list[JobView]:
        views = [st.view for st in self._pending.values()]
        views.sort(key=lambda v: (v.deadline, v.arrival, v.id))
        return views

    def _running_views(self) -> list[JobView]:
        views = [st.view for st in self._running.values()]
        views.sort(key=lambda v: (v.start_time, v.id))
        return views

    def _pending_ids(self) -> list[int]:
        states = sorted(
            self._pending.values(),
            key=lambda s: (s.job.deadline, s.job.arrival, s.job.id),
        )
        return [s.job.id for s in states]

    def _is_started(self, job_id: int) -> bool:
        st = self._states.get(job_id)
        return st is not None and st.start is not None

    def _is_completed(self, job_id: int) -> bool:
        st = self._states.get(job_id)
        return st is not None and st.completed

    def _start_batch(self, job_ids: Sequence[int]) -> None:
        for job_id in job_ids:
            self._start_job(job_id)

    def _start_job(self, job_id: int) -> None:
        st = self._states.get(job_id)
        if st is None:
            raise SchedulingViolationError(f"unknown job id {job_id}")
        if not st.arrived:
            raise SchedulingViolationError(
                f"job {job_id} has not arrived yet (now={self._now})"
            )
        if st.start is not None:
            raise SchedulingViolationError(f"job {job_id} was already started")
        if self._now > st.job.deadline:
            raise SchedulingViolationError(
                f"job {job_id} started at {self._now}, after its starting "
                f"deadline {st.job.deadline}"
            )
        st.start = self._now
        self._pending.pop(job_id, None)
        self._running[job_id] = st
        self._record(TraceKind.START, job_id)
        if self._obs is not None:
            self._obs.instant("engine.start", t=self._now, job=job_id)
        if st.length is not None:
            st.completion = self._now + st.length  # parity: object-only
            self._queue.push(st.completion, EventKind.COMPLETION, job_id)
        else:
            assert self._adversary is not None
            when = self._adversary.length_decision_time(st.job, self._now)
            if when < self._now:
                raise SimulationError(
                    f"length decision time {when} precedes start {self._now}"
                )
            self._queue.push(when, EventKind.ASSIGN, job_id)
        if self._adversary is not None:
            self._apply_adversary_response(
                self._adversary.on_start(st.job, self._now)
            )

    def _apply_adversary_response(self, resp: AdversaryResponse | None) -> None:
        if resp is None:
            return
        release = resp.release
        if len(release) > 1:
            self._admit_batch(list(release))
        else:
            for job in release:
                self._admit_job(job)
        if resp.release_batch is not None:
            self._admit_batch(list(resp.release_batch.jobs()))
        if resp.wakeup is not None:
            if resp.wakeup < self._now:
                raise SimulationError(
                    f"adversary wakeup {resp.wakeup} is in the past "
                    f"(now={self._now})"
                )
            self._queue.push(resp.wakeup, EventKind.ADVERSARY, None)

    def _finish(self) -> SimulationResult:
        jobs: list[Job] = []
        starts: dict[int, float] = {}
        for st in self._states.values():
            if st.start is None:  # pragma: no cover - deadline enforcement
                raise SimulationError(f"job {st.job.id} never started")
            if not st.completed:  # pragma: no cover - queue drained
                raise SimulationError(f"job {st.job.id} never completed")
            assert st.length is not None
            jobs.append(
                st.job if st.job.length is not None else st.job.with_length(st.length)
            )
            starts[st.job.id] = st.start
        name = (
            self._instance.name
            if self._instance is not None
            else f"adversarial/{type(self._adversary).__name__}"
        )
        resolved = Instance(jobs, name=name)
        schedule = Schedule(resolved, starts)
        obs = self._obs
        if obs is not None:
            obs.gauge_set("engine.span", schedule.span)
            obs.counter_add("engine.jobs", float(len(jobs)))
            for job in jobs:
                assert job.length is not None
                obs.histogram_observe("engine.job_length", job.length)
            obs.instant(
                "engine.run_end",
                t=self._now,
                span=schedule.span,
                jobs=len(jobs),
                events=self._events_processed,
            )
        return SimulationResult(
            schedule=schedule,
            instance=resolved,
            events_processed=self._events_processed,
            scheduler=self._scheduler,
            trace=self._trace,
            recorder=obs,
        )


def simulate(
    scheduler: Any,
    instance: Instance | None = None,
    *,
    adversary: Adversary | None = None,
    clairvoyant: bool = False,
    max_events: int = MAX_EVENTS_DEFAULT,
    trace: bool = False,
    strict: bool | None = None,
    recorder: Recorder | None = None,
    core: str | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`.

    Examples
    --------
    >>> from repro.core.job import Instance
    >>> from repro.schedulers import BatchPlus
    >>> inst = Instance.from_triples([(0, 2, 1), (0.5, 1, 3)])
    >>> result = simulate(BatchPlus(), inst)
    >>> result.span > 0
    True
    """
    return Simulator(
        scheduler,
        instance=instance,
        adversary=adversary,
        clairvoyant=clairvoyant,
        max_events=max_events,
        trace=trace,
        strict=strict,
        recorder=recorder,
        core=core,
    ).run()
