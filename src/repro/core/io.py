"""Instance and schedule serialization (JSON).

A downstream user needs to save generated workloads, exchange instances
between tools, and archive schedules next to measured spans.  The format
is deliberately plain JSON:

.. code-block:: json

    {
      "format": "fjs-instance",
      "version": 1,
      "name": "my-workload",
      "jobs": [
        {"id": 0, "arrival": 0.0, "deadline": 5.0, "length": 2.0, "size": 1.0}
      ]
    }

Schedules reference their instance inline so a single file round-trips
``(instance, starts, span)`` and can be re-validated on load.
Adversary-controlled lengths (``null``) are preserved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .errors import InvalidInstanceError, InvalidScheduleError
from .job import Instance, Job
from .schedule import Schedule

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]

_INSTANCE_FORMAT = "fjs-instance"
_SCHEDULE_FORMAT = "fjs-schedule"
_VERSION = 1


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """A JSON-ready dict for an instance."""
    return {
        "format": _INSTANCE_FORMAT,
        "version": _VERSION,
        "name": instance.name,
        "jobs": [
            {
                "id": j.id,
                "arrival": j.arrival,
                "deadline": j.deadline,
                "length": j.length,
                "size": j.size,
            }
            for j in instance
        ],
    }


def instance_from_dict(data: dict[str, Any]) -> Instance:
    """Rebuild an instance from :func:`instance_to_dict` output.

    Raises :class:`InvalidInstanceError` on format mismatches; job-level
    validation re-runs in the :class:`Job` constructor.
    """
    if data.get("format") != _INSTANCE_FORMAT:
        raise InvalidInstanceError(
            f"not an FJS instance document (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise InvalidInstanceError(
            f"unsupported instance format version {data.get('version')!r}"
        )
    try:
        jobs = [
            Job(
                id=int(spec["id"]),
                arrival=float(spec["arrival"]),
                deadline=float(spec["deadline"]),
                length=None if spec.get("length") is None else float(spec["length"]),
                size=float(spec.get("size", 1.0)),
            )
            for spec in data["jobs"]
        ]
    except (KeyError, TypeError) as exc:
        raise InvalidInstanceError(f"malformed job record: {exc}") from exc
    return Instance(jobs, name=str(data.get("name", "instance")))


def save_instance(instance: Instance, path: str | Path) -> None:
    """Write an instance as JSON."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: str | Path) -> Instance:
    """Read an instance written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """A JSON-ready dict for a schedule (instance embedded)."""
    return {
        "format": _SCHEDULE_FORMAT,
        "version": _VERSION,
        "instance": instance_to_dict(schedule.instance),
        "starts": {str(jid): s for jid, s in sorted(schedule.starts().items())},
        "span": schedule.span,
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Rebuild (and re-validate) a schedule from its dict form.

    The recorded ``span`` is cross-checked against the recomputed value;
    a mismatch raises :class:`InvalidScheduleError` (corrupt document).
    """
    if data.get("format") != _SCHEDULE_FORMAT:
        raise InvalidScheduleError(
            f"not an FJS schedule document (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise InvalidScheduleError(
            f"unsupported schedule format version {data.get('version')!r}"
        )
    instance = instance_from_dict(data["instance"])
    starts = {int(jid): float(s) for jid, s in data["starts"].items()}
    schedule = Schedule(instance, starts)
    recorded = data.get("span")
    if recorded is not None and abs(schedule.span - float(recorded)) > 1e-9 * max(
        1.0, schedule.span
    ):
        raise InvalidScheduleError(
            f"recorded span {recorded} disagrees with recomputed "
            f"{schedule.span} — corrupt document?"
        )
    return schedule


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule (with its instance) as JSON."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: str | Path) -> Schedule:
    """Read and re-validate a schedule written by :func:`save_schedule`."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
