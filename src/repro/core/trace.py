"""Simulation traces: a structured record of everything that happened.

A :class:`Trace` is an append-only sequence of :class:`TraceRecord`
entries — one per dispatched event plus one per scheduler action — that
the simulator fills when tracing is enabled
(``Simulator(..., trace=True)``).  Traces serve three purposes:

* **debugging** — inspect exactly why a scheduler started a job when it
  did (the CLI's ``run --trace`` prints them);
* **testing** — the invariant checks in ``tests/test_trace.py`` assert
  ordering properties over whole runs (time monotonicity, start-before-
  completion, one arrival per job …);
* **replay** — a trace contains enough to reconstruct the schedule, so
  recorded runs can be re-validated without re-simulating.

Records are plain frozen dataclasses; the trace is cheap enough to keep
on for debugging yet off by default for benchmark runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceKind", "TraceRecord", "Trace"]


class TraceKind(enum.Enum):
    """What a trace record describes."""

    ARRIVAL = "arrival"
    DEADLINE = "deadline"
    START = "start"
    ASSIGN = "assign"
    COMPLETION = "completion"
    TIMER = "timer"
    ADVERSARY_WAKEUP = "adversary_wakeup"
    RELEASE = "release"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped event in a simulation trace.

    ``job_id`` is ``None`` for job-less events (timers, adversary
    wake-ups); ``detail`` carries event-specific extra data (the assigned
    length, a timer tag, …) as a short string.
    """

    time: float
    kind: TraceKind
    job_id: int | None = None
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        job = f" J{self.job_id}" if self.job_id is not None else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:<10g} {self.kind.value:<16}{job}{detail}"


class Trace:
    """An append-only sequence of :class:`TraceRecord`.

    Iteration yields records in append order, which the simulator
    guarantees is non-decreasing in time.
    """

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def append(
        self,
        time: float,
        kind: TraceKind,
        job_id: int | None = None,
        detail: str = "",
    ) -> None:
        self._records.append(
            TraceRecord(time=time, kind=kind, job_id=job_id, detail=detail)
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> TraceRecord:
        return self._records[idx]

    def filter(self, kind: TraceKind) -> list[TraceRecord]:
        """All records of one kind, in order."""
        return [r for r in self._records if r.kind == kind]

    def for_job(self, job_id: int) -> list[TraceRecord]:
        """All records touching one job, in order."""
        return [r for r in self._records if r.job_id == job_id]

    def starts(self) -> dict[int, float]:
        """``job id -> start time`` recovered from the trace."""
        return {
            r.job_id: r.time
            for r in self._records
            if r.kind == TraceKind.START and r.job_id is not None
        }

    def render(self, limit: int = 200) -> str:
        """Human-readable dump (truncated beyond ``limit`` records)."""
        lines = [str(r) for r in self._records[:limit]]
        if len(self._records) > limit:
            lines.append(f"… {len(self._records) - limit} more records")
        return "\n".join(lines)
