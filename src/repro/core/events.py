"""Event types and the deterministic event queue of the simulator.

Correct reproduction of the paper's constructions hinges on *exact*
same-time event semantics, because active intervals are half-open: a job
running on ``[s, s+p)`` is **not** running at time ``s+p``.  The queue
therefore imposes a total order ``(time, priority class, sequence)``:

==========  =====================================================
priority    event class
==========  =====================================================
0           ``COMPLETION``   — a job finishes (state freed first)
1           ``ASSIGN``       — an adversary commits a job's length
2           ``ARRIVAL``      — a new job becomes known
3           ``DEADLINE``     — a pending job reaches its starting deadline
4           ``TIMER``        — a scheduler wake-up
5           ``ADVERSARY``    — an adversary wake-up
==========  =====================================================

Completions precede arrivals at equal times so that, e.g., a Batch+
iteration whose flag job completes at ``t`` is closed *before* an arrival
at ``t`` is observed — matching the half-open interval convention.
Deadlines follow arrivals so a zero-laxity job is first shown to the
scheduler, which may start it voluntarily, before the deadline event
forces the issue.  The monotonically increasing sequence number makes the
whole simulation deterministic regardless of heap internals.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event classes in same-time processing order (lower runs first)."""

    COMPLETION = 0
    ASSIGN = 1
    ARRIVAL = 2
    DEADLINE = 3
    TIMER = 4
    ADVERSARY = 5


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """A scheduled simulation event.

    Ordering is ``(time, kind, seq)``; ``payload`` never participates in
    comparisons.
    """

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` with stable ordering.

    Events may be cancelled lazily (e.g. the deadline event of a job that
    has already been started) by the caller checking relevance on pop; the
    queue itself only guarantees deterministic total order.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the event (useful for bookkeeping)."""
        ev = Event(time=time, kind=kind, seq=next(self._counter), payload=payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """The earliest event without removing it."""
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
