"""Event types and the deterministic event queue of the simulator.

Correct reproduction of the paper's constructions hinges on *exact*
same-time event semantics, because active intervals are half-open: a job
running on ``[s, s+p)`` is **not** running at time ``s+p``.  The queue
therefore imposes a total order ``(time, priority class, sequence)``:

==========  =====================================================
priority    event class
==========  =====================================================
0           ``COMPLETION``   — a job finishes (state freed first)
1           ``ASSIGN``       — an adversary commits a job's length
2           ``ARRIVAL``      — a new job becomes known
3           ``DEADLINE``     — a pending job reaches its starting deadline
4           ``TIMER``        — a scheduler wake-up
5           ``ADVERSARY``    — an adversary wake-up
==========  =====================================================

Completions precede arrivals at equal times so that, e.g., a Batch+
iteration whose flag job completes at ``t`` is closed *before* an arrival
at ``t`` is observed — matching the half-open interval convention.
Deadlines follow arrivals so a zero-laxity job is first shown to the
scheduler, which may start it voluntarily, before the deadline event
forces the issue.  The monotonically increasing sequence number makes the
whole simulation deterministic regardless of heap internals.

Performance note
----------------
The heap stores bare ``(time, kind, seq, payload)`` tuples, not
:class:`Event` objects: tuple comparison runs in C, whereas a dataclass
``__lt__`` is a Python frame per comparison — on adversarial macro runs
(§3.1 at k=2: >260 000 events) that difference alone is worth ~2× end to
end.  :class:`Event` remains the *boundary* type: :meth:`EventQueue.pop`
and :meth:`EventQueue.peek` materialise one on demand, while the
simulator's hot loop uses :meth:`EventQueue.pop_raw`.  ``payload`` never
participates in comparisons because ``(time, kind, seq)`` is already a
strict total order (``seq`` is unique).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Any, Iterable

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event classes in same-time processing order (lower runs first)."""

    COMPLETION = 0
    ASSIGN = 1
    ARRIVAL = 2
    DEADLINE = 3
    TIMER = 4
    ADVERSARY = 5


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """A scheduled simulation event.

    Ordering is ``(time, kind, seq)``; ``payload`` never participates in
    comparisons.
    """

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


#: The in-heap representation: ``(time, kind, seq, payload)``.  ``kind``
#: is typed ``int`` (not :class:`EventKind`) because the hot loop pushes
#: and compares raw ints; ``EventKind`` values are ``int`` subclasses so
#: both spellings satisfy the alias.
RawEvent = tuple[float, int, int, Any]


class EventQueue:
    """A binary-heap priority queue of events with stable total order.

    Events may be cancelled lazily (e.g. the deadline event of a job that
    has already been started) by the caller checking relevance on pop; the
    queue itself only guarantees deterministic total order.

    The internal heap holds raw tuples (see module docstring); use
    :meth:`pop`/:meth:`peek` for :class:`Event` objects at API
    boundaries and :meth:`pop_raw`/:meth:`peek_raw` on hot paths.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[RawEvent] = []
        self._seq = 0

    def push(self, time: float, kind: int, payload: Any = None) -> None:
        """Schedule an event (``kind`` breaks same-time ties, then FIFO).

        ``kind`` accepts :class:`EventKind` or the raw int (the columnar
        hot path pushes hoisted int constants).
        """
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, kind, seq, payload))

    def extend(self, items: Iterable[tuple[float, int, Any]]) -> None:
        """Batch-schedule ``(time, kind, payload)`` triples.

        When the queue is empty this heapifies once — O(n) instead of
        O(n log n) — which is the common case for initial-job admission.
        """
        seq = self._seq
        heap = self._heap
        if heap:
            for time, kind, payload in items:
                heappush(heap, (time, kind, seq, payload))
                seq += 1
        else:
            for time, kind, payload in items:
                heap.append((time, kind, seq, payload))
                seq += 1
            heapify(heap)
        self._seq = seq

    def pop(self) -> Event:
        """Remove and return the earliest event as an :class:`Event`."""
        time, kind, seq, payload = heappop(self._heap)
        return Event(time=time, kind=EventKind(kind), seq=seq, payload=payload)

    def pop_raw(self) -> RawEvent:
        """Remove and return the earliest ``(time, kind, seq, payload)``."""
        return heappop(self._heap)

    def peek(self) -> Event:
        """The earliest event without removing it."""
        time, kind, seq, payload = self._heap[0]
        return Event(time=time, kind=EventKind(kind), seq=seq, payload=payload)

    def peek_raw(self) -> RawEvent:
        """The earliest raw tuple without removing it."""
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
