"""Schedule metrics: span, concurrency profiles, overlap statistics.

The paper's single objective is the *span*; this module additionally
provides the auxiliary quantities used by its proofs and by our empirical
harness:

* concurrency profile — how many jobs run at each instant (the §3.1
  adversary watches per-iteration concurrency),
* parallelism/utilisation — total work divided by span (the "speed-up"
  the scheduler extracted from laxity),
* span ratio helpers for competitive-ratio measurements.

All heavy computations are NumPy-vectorised sweep-line passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .intervals import IntervalUnion
from .schedule import Schedule

__all__ = [
    "ConcurrencyProfile",
    "concurrency_profile",
    "max_concurrency",
    "parallelism",
    "span_ratio",
    "overlap_fraction",
]


@dataclass(frozen=True)
class ConcurrencyProfile:
    """A step function: number of running jobs over time.

    ``times`` are the breakpoints (event times) and ``counts[i]`` is the
    number of running jobs on ``[times[i], times[i+1])``; the function is
    zero before ``times[0]`` and after ``times[-1]``.
    """

    times: np.ndarray
    counts: np.ndarray

    def at(self, t: float) -> int:
        """Concurrency at time ``t``."""
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        if idx < 0 or idx >= len(self.counts):
            return 0
        return int(self.counts[idx])

    @property
    def peak(self) -> int:
        """Maximum simultaneous jobs."""
        return int(self.counts.max()) if self.counts.size else 0

    def time_at_least(self, level: int) -> float:
        """Total time during which concurrency is >= ``level``."""
        if self.times.size < 2:
            return 0.0
        widths = np.diff(self.times)
        return float(widths[self.counts[:-1] >= level].sum())


def concurrency_profile(
    starts: Sequence[float], lengths: Sequence[float]
) -> ConcurrencyProfile:
    """Build the concurrency step function for intervals ``[s_i, s_i+p_i)``.

    Vectorised sweep: +1 events at starts, -1 at ends, sorted and
    prefix-summed.  Zero-length intervals contribute nothing (half-open).
    """
    s = np.asarray(starts, dtype=np.float64)
    p = np.asarray(lengths, dtype=np.float64)
    keep = p > 0
    s, p = s[keep], p[keep]
    if s.size == 0:
        return ConcurrencyProfile(np.empty(0), np.empty(0, dtype=np.int64))
    e = s + p
    times = np.concatenate([s, e])
    deltas = np.concatenate([np.ones_like(s), -np.ones_like(e)])
    order = np.argsort(times, kind="stable")
    times, deltas = times[order], deltas[order]
    # collapse simultaneous events
    uniq, first_idx = np.unique(times, return_index=True)
    summed = np.add.reduceat(deltas, first_idx)
    counts = np.cumsum(summed).astype(np.int64)
    # counts[i] is concurrency on [uniq[i], uniq[i+1]); last count is 0
    return ConcurrencyProfile(uniq, counts)


def schedule_concurrency(schedule: Schedule) -> ConcurrencyProfile:
    """Concurrency profile of a schedule."""
    rows = list(schedule.rows())
    return concurrency_profile(
        [r.start for r in rows], [r.job.known_length for r in rows]
    )


def max_concurrency(schedule: Schedule) -> int:
    """Peak number of simultaneously running jobs."""
    return schedule_concurrency(schedule).peak


def parallelism(schedule: Schedule) -> float:
    """Total work divided by span: mean concurrency over busy time.

    A scheduler that extracts more parallelism from laxity achieves a
    smaller span for the same work, so this is the "goodness" the paper's
    intro frames the problem around.  Defined as 0 for empty schedules.
    """
    span = schedule.span
    if span == 0:
        return 0.0
    return schedule.instance.total_work / span


def span_ratio(schedule: Schedule, optimum: float) -> float:
    """``span / optimum`` — the empirical competitive ratio against a
    known optimum (or a lower bound on it, yielding an upper estimate)."""
    if optimum <= 0:
        raise ValueError("optimum span must be positive")
    return schedule.span / optimum


def overlap_fraction(schedule: Schedule) -> float:
    """Fraction of total work that overlaps at least one other job.

    ``1 - span_exclusive / total_work`` where ``span_exclusive`` is the
    time exactly one job runs.  0 means fully serial, approaching 1 means
    highly parallel execution.
    """
    prof = schedule_concurrency(schedule)
    if prof.times.size == 0:
        return 0.0
    widths = np.diff(prof.times)
    counts = prof.counts[: len(widths)]
    solo_time = float(widths[counts == 1].sum())
    work = schedule.instance.total_work
    if work == 0:
        return 0.0
    return 1.0 - solo_time / work


def busy_union(schedule: Schedule) -> IntervalUnion:
    """The busy-time union (alias of ``schedule.active_union`` for
    discoverability alongside the other metrics)."""
    return schedule.active_union()
