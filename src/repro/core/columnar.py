"""Struct-of-arrays engine core (the default hot path).

The object core in :mod:`repro.core.engine` allocates one ``Job`` plus one
``_JobState`` plus one ``JobView`` per job and dispatches every event
through a Python handler.  On the §3.1 adversarial macro (k = 2: 65 808
jobs, >260 000 events) those per-job objects and per-event frames are the
dominant cost.  This module replaces them with a columnar layout:

``JobTable``
    One NumPy column per field (``arrival``/``deadline``/``length``/
    ``start`` as float64, ``ids`` as int64, ``state`` as int8) plus
    Python-list mirrors of the float columns.  Events carry integer
    **row indexes** into the table; ``Job``/:class:`TableJobView`
    objects are materialised lazily, only at API boundaries (scheduler
    hooks, adversary scalar hooks, the final ``SimulationResult``).

    The list mirrors are load-bearing, not a convenience: heap tuples
    and ``JobView`` properties must carry *Python* floats — a stray
    ``np.float64`` inside a heap tuple forces NumPy comparison dunders
    on every sift (slower than the C tuple fast path) and poisons
    ``json.dumps`` in the obs layer.  Scalar reads therefore go through
    the mirrors; vector math goes through the columns.

``ColumnarCore``
    The event loop.  It shares the :class:`~repro.core.events.EventQueue`
    (and its ``(time, kind, seq)`` total order) with the object core but
    adds **cohort gathering**: when the next heap entries share
    ``(time, kind)`` they are popped together and handled as one array
    operation.  Gathering kind ``K`` at time ``t`` is sound because no
    handler can push an event at ``(t, kind < K)``:

    * ``ARRIVAL`` cohorts — gathered only when the scheduler's
      ``on_arrival`` is the inherited no-op (arrival handling then only
      flips state and pushes ``DEADLINE`` events, kind 3 > 2);
    * ``ASSIGN`` cohorts — gathered only when the adversary implements
      ``assign_lengths_batch`` (probed via the ``_repro_fallback``
      marker *before* gathering, because popped events cannot be
      un-popped).  Same-time completions produced by an assign cohort
      (the §3.1 shape: start + 1 = assign time = completion time for
      every length-1 job) are consumed **inline**, never pushed —
      they still count in ``events_processed``, exactly as if popped;
    * ``COMPLETION`` cohorts — always gatherable (lengths are > 0, so
      no handler can create another completion at the same instant);
    * ``DEADLINE``/``TIMER``/``ADVERSARY`` — never gathered (their
      handlers may start jobs or mutate arbitrary state per event).

    When a recorder is armed the core switches to ``_run_armed``: a
    scalar mirror of the object loop (no gathering) so per-kind event
    counters, ``heap.pushes`` and ``heap.peak`` stay bit-identical.

Equivalence contract
--------------------
The object core defines the semantics; this core must reproduce its
traces, schedules, exceptions (type, message, and which job raises
first) and obs output bit-for-bit.  ``tests/test_engine_equivalence.py``
enforces this for all five paper schedulers; the rules that make it hold
are spelled out at each site below.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from .errors import (
    DeadlineMissedError,
    SchedulingViolationError,
    SimulationError,
)
from .errors import ClairvoyanceError
from .events import EventQueue
from .intervals import union_measure
from .job import Instance, Job
from .schedule import Schedule
from .trace import Trace, TraceKind

from .engine import (
    _OBS_EVENT_COUNTERS,
    AdversaryResponse,
    JobView,
    SchedulerContext,
    SimulationResult,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.recorder import Recorder
    from .engine import ClairvoyanceGuard, Simulator

__all__ = ["JobBatch", "JobTable", "TableJobView", "ColumnarCore"]

# Event-kind ints, hoisted (see repro.core.events.EventKind).
_COMPLETION = 0
_ASSIGN = 1
_ARRIVAL = 2
_DEADLINE = 3
_TIMER = 4
_ADVERSARY = 5

# Job lifecycle states (int8 column).
_ADMITTED = 0  # released, arrival event not yet dispatched
_PENDING = 1   # arrived, not started
_RUNNING = 2   # started, not completed
_DONE = 3      # completed

#: Below this cohort size, pushing events one by one beats re-heapifying
#: the whole heap (heapify is O(heap), heappush is O(log heap)).
_HEAPIFY_MIN = 64

#: Once this many same-(time, kind) events have been popped one by one,
#: assume the cohort is a large wave and switch to a single partition
#: scan of the heap (O(heap) + sort(cohort) beats cohort · log(heap)
#: heappops for waves that are a sizeable fraction of the heap).
_SCAN_MIN = 32

# -- core-parity declaration (RL013) ------------------------------------
# This module is the *columnar* core; its column/list-mirror fields map
# onto the object core's per-job attributes via the tokens below.  A
# deliberately one-sided write carries ``# parity: columnar-only``.
_PARITY_CORE = "columnar"
_PARITY_PEER = "repro.core.engine"
#: Physical field -> shared logical token compared against the peer core.
_PARITY_FIELDS = {
    "state": "lifecycle",
    "visible": "visibility",
    "plen": "length",
    "plen_list": "length",
    "start": "start-time",
    "start_list": "start-time",
    "_pending": "pending-index",
    "_running": "running-index",
}

_MISSING: Any = object()

_F64 = NDArray[np.float64]
_I64 = NDArray[np.int64]


def _as_column(values: Any, n: int, default: float) -> _F64:
    """Coerce a JobBatch column argument to a float64 array of length n."""
    if values is None:
        return np.full(n, default, dtype=np.float64)
    if isinstance(values, (int, float)):
        return np.full(n, float(values), dtype=np.float64)
    return np.ascontiguousarray(values, dtype=np.float64)


class JobBatch:
    """A columnar batch of job releases.

    Adversaries (and ``AdversaryResponse.release_batch``) use this to
    hand the engine whole iterations as arrays.  The columnar core
    admits the columns directly; the object core calls :meth:`jobs` to
    materialise equivalent (fully validated) :class:`Job` objects — so
    a batch-releasing adversary behaves identically on both cores.

    ``length`` is ``None`` (all adversary-controlled), a scalar
    (broadcast), or an array with NaN marking adversary-controlled
    entries.  ``size`` defaults to 1.0.
    """

    __slots__ = ("ids", "arrival", "deadline", "length", "size", "_jobs")

    def __init__(
        self,
        ids: Any,
        arrival: Any,
        deadline: Any,
        length: Any = None,
        size: Any = None,
    ) -> None:
        self.ids: _I64 = np.ascontiguousarray(ids, dtype=np.int64)
        n = int(self.ids.shape[0]) if self.ids.ndim == 1 else -1
        self.arrival: _F64 = _as_column(arrival, n, 0.0)
        self.deadline: _F64 = _as_column(deadline, n, 0.0)
        self.length: _F64 = _as_column(length, n, math.nan)
        self.size: _F64 = _as_column(size, n, 1.0)
        for col in (self.arrival, self.deadline, self.length, self.size):
            if col.shape != (n,) or n < 0:
                raise ValueError(
                    "JobBatch columns must be 1-D arrays of one shared length"
                )
        self._jobs: tuple[Job, ...] | None = None

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def jobs(self) -> tuple[Job, ...]:
        """Materialise (and cache) the equivalent ``Job`` objects.

        Uses the validating constructor on purpose: the object core must
        raise exactly the ``InvalidJobError`` a hand-built release would.
        """
        if self._jobs is None:
            ids = self.ids.tolist()
            arrivals = self.arrival.tolist()
            deadlines = self.deadline.tolist()
            lengths = self.length.tolist()
            sizes = self.size.tolist()
            self._jobs = tuple(
                Job(
                    id=ids[k],
                    arrival=arrivals[k],
                    deadline=deadlines[k],
                    length=None if math.isnan(lengths[k]) else lengths[k],
                    size=sizes[k],
                )
                for k in range(len(ids))
            )
        return self._jobs


class JobTable:
    """Struct-of-arrays job storage for :class:`ColumnarCore`.

    Row index = admission order (stable for the whole run); columns grow
    by capacity doubling.  ``length0`` is the length as *released* (NaN
    for adversary-controlled jobs) and ``plen`` the committed length
    (NaN until assigned); ``visible`` tracks whether the scheduler may
    read it (clairvoyant-at-release, or completed).
    """

    __slots__ = (
        "n",
        "_cap",
        "ids",
        "arrival",
        "deadline",
        "length0",
        "plen",
        "size",
        "start",
        "state",
        "visible",
        "ids_list",
        "arrival_list",
        "deadline_list",
        "plen_list",
        "start_list",
        "size_list",
        "idx_of",
        "ids_contiguous",
        "_jobs",
    )

    def __init__(self) -> None:
        self.n = 0
        self._cap = 0
        self.ids: _I64 = np.empty(0, dtype=np.int64)
        self.arrival: _F64 = np.empty(0, dtype=np.float64)
        self.deadline: _F64 = np.empty(0, dtype=np.float64)
        self.length0: _F64 = np.empty(0, dtype=np.float64)
        self.plen: _F64 = np.empty(0, dtype=np.float64)
        self.size: _F64 = np.empty(0, dtype=np.float64)
        self.start: _F64 = np.empty(0, dtype=np.float64)
        self.state: NDArray[np.int8] = np.empty(0, dtype=np.int8)
        self.visible: NDArray[np.bool_] = np.empty(0, dtype=np.bool_)
        # Python mirrors (scalar reads; see module docstring).
        self.ids_list: list[int] = []
        self.arrival_list: list[float] = []
        self.deadline_list: list[float] = []
        self.plen_list: list[float | None] = []
        self.start_list: list[float | None] = []
        self.size_list: list[float] = []
        self.idx_of: dict[int, int] = {}
        #: True while every row ``i`` has ``ids[i] == i`` — the §3.1
        #: adversaries number jobs 0, 1, 2, … in release order, making
        #: id → row a no-op (``_start_batch`` then skips 10⁴–10⁵ dict
        #: lookups per cohort).
        self.ids_contiguous = True
        #: Lazily materialised ``Job`` per row (original object when the
        #: job entered as one, so adversary scalar hooks see identity).
        self._jobs: list[Job | None] = []

    def _grow(self, extra: int) -> None:
        need = self.n + extra
        if need <= self._cap:
            return
        cap = max(need, self._cap * 2, 64)
        n = self.n
        for name in (
            "ids",
            "arrival",
            "deadline",
            "length0",
            "plen",
            "size",
            "start",
            "state",
            "visible",
        ):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[:n] = old[:n]
            setattr(self, name, new)
        self._cap = cap

    def _append_common(
        self, sl: slice, k: int, length: _F64, clairvoyant: bool
    ) -> None:
        self.length0[sl] = length
        self.plen[sl] = length
        self.start[sl] = math.nan
        self.state[sl] = _ADMITTED
        if clairvoyant:
            self.visible[sl] = ~np.isnan(length)
        else:
            self.visible[sl] = False
        self.start_list.extend([None] * k)

    def append_jobs(
        self, jobs: Sequence[Job], clairvoyant: bool
    ) -> int:
        """Bulk-append validated ``Job`` objects; returns the base row."""
        k = len(jobs)
        self._grow(k)
        base = self.n
        sl = slice(base, base + k)
        ids = [job.id for job in jobs]
        arrivals = [job.arrival for job in jobs]
        deadlines = [job.deadline for job in jobs]
        lengths = [job.length for job in jobs]
        sizes = [job.size for job in jobs]
        self.ids[sl] = ids
        if self.ids_contiguous and ids != list(range(base, base + k)):
            self.ids_contiguous = False
        self.arrival[sl] = arrivals
        self.deadline[sl] = deadlines
        self.size[sl] = sizes
        length_col = np.array(
            [math.nan if ln is None else ln for ln in lengths],
            dtype=np.float64,
        )
        self._append_common(sl, k, length_col, clairvoyant)
        self.ids_list.extend(ids)
        self.arrival_list.extend(arrivals)
        self.deadline_list.extend(deadlines)
        self.plen_list.extend(lengths)
        self.size_list.extend(sizes)
        self._jobs.extend(jobs)
        self.n = base + k
        return base

    def append_columns(self, batch: JobBatch, clairvoyant: bool) -> int:
        """Bulk-append a validated :class:`JobBatch`; returns the base row."""
        k = len(batch)
        self._grow(k)
        base = self.n
        sl = slice(base, base + k)
        self.ids[sl] = batch.ids
        if self.ids_contiguous and k and not bool(
            (batch.ids == np.arange(base, base + k)).all()
        ):
            self.ids_contiguous = False
        self.arrival[sl] = batch.arrival
        self.deadline[sl] = batch.deadline
        self.size[sl] = batch.size
        self._append_common(sl, k, batch.length, clairvoyant)
        self.ids_list.extend(batch.ids.tolist())
        self.arrival_list.extend(batch.arrival.tolist())
        self.deadline_list.extend(batch.deadline.tolist())
        self.plen_list.extend(
            None if math.isnan(v) else v for v in batch.length.tolist()
        )
        self.size_list.extend(batch.size.tolist())
        self._jobs.extend([None] * k)
        self.n = base + k
        return base

    def job(self, idx: int) -> Job:
        """The row as a ``Job`` (original length, NaN → ``None``).

        Rows appended from a :class:`JobBatch` were already validated
        column-wise, so construction skips ``__post_init__`` (the
        ``with_length`` idiom); rows appended as objects return the
        original instance.
        """
        job = self._jobs[idx]
        if job is None:
            ln0 = float(self.length0[idx])
            job = object.__new__(Job)
            object.__setattr__(job, "id", self.ids_list[idx])
            object.__setattr__(job, "arrival", self.arrival_list[idx])
            object.__setattr__(job, "deadline", self.deadline_list[idx])
            object.__setattr__(
                job, "length", None if math.isnan(ln0) else ln0
            )
            object.__setattr__(job, "size", self.size_list[idx])
            self._jobs[idx] = job
        return job


class TableJobView(JobView):
    """A :class:`JobView` backed by a :class:`JobTable` row.

    Returns Python scalars (mirror lists), enforces the same visibility
    rule and strict-mode guard as the object core's view.
    """

    __slots__ = ("_core", "_table", "_idx")

    def __init__(self, core: "ColumnarCore", idx: int) -> None:
        # No super().__init__: the object-core slots (_job/_state) stay
        # unset; every accessor below overrides the base property.
        self._core = core
        self._table = core._table
        self._idx = idx

    @property
    def id(self) -> int:
        return self._table.ids_list[self._idx]

    @property
    def arrival(self) -> float:
        return self._table.arrival_list[self._idx]

    @property
    def deadline(self) -> float:
        return self._table.deadline_list[self._idx]

    @property
    def laxity(self) -> float:
        i = self._idx
        t = self._table
        return t.deadline_list[i] - t.arrival_list[i]

    @property
    def size(self) -> float:
        return self._table.size_list[self._idx]

    @property
    def length(self) -> float:
        t = self._table
        i = self._idx
        if not t.visible[i]:
            raise ClairvoyanceError(
                f"job {t.ids_list[i]}: processing length is hidden in the "
                "non-clairvoyant setting until the job completes"
            )
        guard = self._core._guard
        if guard is not None and t.state[i] != _DONE:
            guard.record(t.ids_list[i])
        length = t.plen_list[i]
        assert length is not None
        return length

    @property
    def length_if_known(self) -> float | None:
        t = self._table
        i = self._idx
        return t.plen_list[i] if t.visible[i] else None

    @property
    def started(self) -> bool:
        return self._table.start_list[self._idx] is not None

    @property
    def start_time(self) -> float | None:
        return self._table.start_list[self._idx]

    @property
    def completed(self) -> bool:
        return bool(self._table.state[self._idx] == _DONE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t = self._table
        i = self._idx
        p: Any = t.plen_list[i] if t.visible[i] else "?"
        return (
            f"JobView(id={self.id}, a={self.arrival:g}, d={self.deadline:g}, "
            f"p={p})"
        )


def _batch_capable(adversary: Any, name: str) -> bool:
    """Whether the adversary overrides a batch hook (vs the marked fallback)."""
    if adversary is None:
        return False
    meth = getattr(adversary, name, None)
    return callable(meth) and not getattr(meth, "_repro_fallback", False)


class ColumnarCore:
    """One simulation run over a :class:`JobTable`.

    Constructed by :meth:`Simulator.run` when ``core="columnar"``; it
    adopts the simulator's scheduler/adversary/trace/recorder/guard and
    event queue, then executes the run itself.  See the module docstring
    for the gathering rules and the equivalence contract.
    """

    __slots__ = (
        "_sim",
        "_scheduler",
        "_scheduler_name",
        "_instance",
        "_adversary",
        "_clairvoyant",
        "_max_events",
        "_trace",
        "_obs",
        "_guard",
        "_queue",
        "_table",
        "_views",
        "_pending",
        "_running",
        "_now",
        "_events_processed",
        "_heap_peak",
        "_ctx",
        "_hook_arrival",
        "_hook_deadline",
        "_hook_completion",
        "_hook_timer",
        "_adv_start_batch",
        "_adv_completion_batch",
        "_adv_assign_batch",
    )

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._scheduler = sim._scheduler
        self._scheduler_name = type(sim._scheduler).__name__
        self._instance = sim._instance
        self._adversary: Any = sim._adversary
        self._clairvoyant = sim._clairvoyant
        self._max_events = sim._max_events
        self._trace: Trace | None = sim._trace
        self._obs: "Recorder | None" = sim._obs
        self._guard: "ClairvoyanceGuard | None" = sim._guard
        if self._guard is not None:
            # Repoint the oracle at this core so its access log and obs
            # records read the live clock.
            self._guard._sim = self
        self._queue: EventQueue = sim._queue
        self._table = JobTable()
        self._views: list[TableJobView | None] = []
        #: Incremental indexes (row index -> None) behind ctx.pending()/
        #: ctx.running(); dicts for O(1) removal with stable order.
        self._pending: dict[int, None] = {}
        self._running: dict[int, None] = {}
        self._now = 0.0
        self._events_processed = 0
        self._heap_peak = 0
        self._ctx = SchedulerContext(self)
        self._hook_arrival = sim._hook_arrival
        self._hook_deadline = sim._hook_deadline
        self._hook_completion = sim._hook_completion
        self._hook_timer = sim._hook_timer
        adv = self._adversary
        # Capability probes — resolved *before* any gathering, because a
        # gathered cohort cannot be pushed back onto the heap.
        self._adv_start_batch = _batch_capable(adv, "on_start_batch")
        self._adv_completion_batch = _batch_capable(adv, "on_completion_batch")
        self._adv_assign_batch = _batch_capable(adv, "assign_lengths_batch")

    # ------------------------------------------------------------------ run
    def run(self) -> SimulationResult:
        obs = self._obs
        adversary = self._adversary
        if self._instance is not None:
            self._admit_jobs(list(self._instance.jobs))
        else:
            assert adversary is not None
            batch: JobBatch | None = None
            initial_batch = getattr(adversary, "initial_batch", None)
            if callable(initial_batch):
                batch = initial_batch()
            if batch is not None:
                self._admit_batch_cols(batch)
            else:
                self._admit_jobs(list(adversary.initial_jobs()))
        n_initial = self._table.n

        setup = getattr(self._scheduler, "setup", None)
        if callable(setup):
            setup(self._ctx)

        if obs is not None:
            obs.instant(
                "engine.run_begin",
                scheduler=self._scheduler_name,
                clairvoyant=self._clairvoyant,
                adversarial=adversary is not None,
                initial_jobs=n_initial,
            )
        try:
            if obs is not None:
                with obs.span("engine.dispatch"):
                    self._run_armed()
            else:
                self._run_fast()
        finally:
            if obs is not None:
                obs.counter_add(
                    "engine.events_processed", self._events_processed
                )
                obs.counter_add("engine.heap.pushes", self._queue._seq)
                obs.gauge_set("engine.heap.peak", float(self._heap_peak))
        return self._finish()

    def _budget_error(self) -> SimulationError:
        return SimulationError(
            f"event budget exceeded ({self._max_events}); "
            "likely a scheduler/adversary live-lock"
        )

    def _run_fast(self) -> None:
        """The gathering hot loop (recorder disarmed)."""
        heap = self._queue._heap
        max_events = self._max_events
        handlers: tuple[Callable[[Any], None], ...] = (
            self._handle_completion,  # 0 COMPLETION
            self._handle_assign,      # 1 ASSIGN
            self._handle_arrival,     # 2 ARRIVAL
            self._handle_deadline,    # 3 DEADLINE
            self._handle_timer,       # 4 TIMER
            self._handle_adversary,   # 5 ADVERSARY
        )
        # Which kinds may be taken as cohorts (see module docstring).
        gatherable = (
            True,                        # COMPLETION
            self._adv_assign_batch,      # ASSIGN
            self._hook_arrival is None,  # ARRIVAL
            False,                       # DEADLINE
            False,                       # TIMER
            False,                       # ADVERSARY
        )
        processed = self._events_processed
        try:
            while heap:
                time, kind, _seq, payload = heappop(heap)
                processed += 1
                if processed > max_events:
                    raise self._budget_error()
                if time < self._now:
                    raise SimulationError(
                        f"time went backwards: {time} < {self._now}"
                    )
                self._now = time
                if (
                    gatherable[kind]
                    and heap
                    and heap[0][0] == time
                    and heap[0][1] == kind
                ):
                    cohort = [payload]
                    append = cohort.append
                    while heap and heap[0][0] == time and heap[0][1] == kind:
                        append(heappop(heap)[3])
                        if len(cohort) == _SCAN_MIN and heap:
                            head = heap[0]
                            if head[0] == time and head[1] == kind:
                                self._gather_scan(time, kind, cohort)
                            break
                    processed += len(cohort) - 1
                    if processed > max_events:
                        raise self._budget_error()
                    if kind == _ARRIVAL:
                        self._cohort_arrival(cohort)
                    elif kind == _COMPLETION:
                        self._cohort_completion(cohort)
                    else:  # _ASSIGN
                        # Inline same-time completions count as events.
                        processed += self._cohort_assign(cohort)
                        if processed > max_events:
                            raise self._budget_error()
                    continue
                handlers[kind](payload)
        finally:
            self._events_processed = processed

    def _run_armed(self) -> None:
        """Scalar mirror of the object core's armed loop (no gathering).

        Gathering changes heap push/pop mechanics, which the armed loop
        surfaces (per-kind counters, ``heap.pushes``, ``heap.peak``) —
        so with a recorder armed every event goes the scalar route and
        the obs output stays bit-identical to the object core.
        """
        obs = self._obs
        assert obs is not None
        heap = self._queue._heap
        max_events = self._max_events
        handlers: tuple[Callable[[Any], None], ...] = (
            self._handle_completion,
            self._handle_assign,
            self._handle_arrival,
            self._handle_deadline,
            self._handle_timer,
            self._handle_adversary,
        )
        processed = self._events_processed
        heap_peak = len(heap)
        try:
            while heap:
                if len(heap) > heap_peak:
                    heap_peak = len(heap)
                time, kind, _seq, payload = heappop(heap)
                processed += 1
                if processed > max_events:
                    raise self._budget_error()
                if time < self._now:
                    raise SimulationError(
                        f"time went backwards: {time} < {self._now}"
                    )
                self._now = time
                obs.counter_add(_OBS_EVENT_COUNTERS[kind])
                handlers[kind](payload)
        finally:
            self._events_processed = processed
            self._heap_peak = heap_peak

    # ------------------------------------------------------- event helpers
    def _gather_scan(
        self, time: float, kind: int, cohort: list[Any]
    ) -> None:
        """Drain every remaining ``(time, kind)`` event in one heap scan.

        Partition the backing list, sort the matches (their full tuples —
        i.e. by ``seq``, reproducing exact pop order) and re-heapify the
        rest.  Sound for the same reason ``_push_raw``'s heapify is: the
        heap's internal layout is unobservable under a strict total order.
        """
        heap = self._queue._heap
        keep: list[tuple[float, int, int, Any]] = []
        grab: list[tuple[float, int, int, Any]] = []
        keep_append = keep.append
        grab_append = grab.append
        for item in heap:
            if item[0] == time and item[1] == kind:
                grab_append(item)
            else:
                keep_append(item)
        grab.sort()
        heap[:] = keep
        heapify(heap)
        cohort.extend(item[3] for item in grab)

    def _push_raw(self, items: list[tuple[float, int, int, Any]]) -> None:
        """Bulk-push pre-sequenced raw events.

        For small cohorts onto a large heap, repeated ``heappush`` is
        cheaper; past ``_HEAPIFY_MIN`` a single O(heap + cohort)
        ``heapify`` wins.  Either way the pop order is unchanged —
        ``(time, kind, seq)`` is a strict total order, so heap-internal
        layout never shows.
        """
        heap = self._queue._heap
        if len(items) < _HEAPIFY_MIN and heap:
            for item in items:
                heappush(heap, item)
        else:
            heap.extend(items)
            heapify(heap)

    # ---------------------------------------------------------- admission
    def _admit_jobs(self, jobs: Sequence[Job], single: bool = False) -> None:
        """Admit validated ``Job`` objects (object-style releases)."""
        obs = self._obs
        if obs is not None and not single:
            with obs.span("engine.admit_batch", n=len(jobs)):
                self._admit_jobs_inner(jobs)
            obs.counter_add("engine.jobs_admitted", float(len(jobs)))
            return
        self._admit_jobs_inner(jobs)
        if obs is not None:
            obs.counter_add("engine.jobs_admitted")

    def _admit_jobs_inner(self, jobs: Sequence[Job]) -> None:
        table = self._table
        now = self._now
        adversary = self._adversary
        clairvoyant = self._clairvoyant
        idx_of = table.idx_of
        trace = self._trace
        obs = self._obs
        base = table.n
        # Admission checks in the object core's per-job order; each job
        # registers before the next is checked (intra-batch duplicates).
        offset = 0
        for job in jobs:
            jid = job.id
            if jid in idx_of:
                raise SimulationError(f"duplicate job id {jid} admitted")
            if job.arrival < now:
                raise SimulationError(
                    f"job {jid} released with arrival {job.arrival} in the "
                    f"past (now={now})"
                )
            if job.length is None:
                if adversary is None:
                    raise SimulationError(
                        f"job {jid} has no length and no adversary to "
                        "assign one"
                    )
                if clairvoyant:
                    raise SimulationError(
                        "adversary-controlled lengths are incompatible with "
                        "the clairvoyant information model"
                    )
            idx_of[jid] = base + offset
            offset += 1
            if trace is not None:
                trace.append(
                    now, TraceKind.RELEASE, jid, f"arrival={job.arrival:g}"
                )
            if obs is not None:
                if job.length is not None:
                    obs.instant(
                        "engine.release",
                        t=now,
                        job=jid,
                        arrival=job.arrival,
                        deadline=job.deadline,
                        length=job.length,
                    )
                else:
                    obs.instant(
                        "engine.release",
                        t=now,
                        job=jid,
                        arrival=job.arrival,
                        deadline=job.deadline,
                    )
        table.append_jobs(jobs, clairvoyant)
        self._views.extend([None] * len(jobs))
        self._push_arrivals(base, len(jobs))

    def _admit_batch_cols(self, batch: JobBatch) -> None:
        """Admit a columnar :class:`JobBatch` (vectorised checks)."""
        obs = self._obs
        if obs is not None:
            with obs.span("engine.admit_batch", n=len(batch)):
                self._admit_batch_cols_inner(batch)
            obs.counter_add("engine.jobs_admitted", float(len(batch)))
            return
        self._admit_batch_cols_inner(batch)

    def _admit_batch_cols_inner(self, batch: JobBatch) -> None:
        k = len(batch)
        if k == 0:
            return
        table = self._table
        now = self._now
        ids = batch.ids
        arrival = batch.arrival
        deadline = batch.deadline
        length = batch.length
        size = batch.size
        unknown = np.isnan(length)
        # Job-validity checks — the vector mirror of Job.__post_init__
        # (the object core runs those in JobBatch.jobs()).  On failure,
        # constructing the first offending Job raises the exact error.
        invalid = (
            (ids < 0)
            | ~np.isfinite(arrival)
            | ~np.isfinite(deadline)
            | (arrival < 0)
            | (deadline < arrival)
            | (~unknown & (~np.isfinite(length) | (length <= 0)))
            | ~np.isfinite(size)
            | (size <= 0)
        )
        if bool(invalid.any()):
            bad = int(np.argmax(invalid))
            bad_len = float(length[bad])
            Job(
                id=int(ids[bad]),
                arrival=float(arrival[bad]),
                deadline=float(deadline[bad]),
                length=None if math.isnan(bad_len) else bad_len,
                size=float(size[bad]),
            )
            raise SimulationError(  # pragma: no cover - Job() raised above
                "JobBatch validation failed"
            )
        # Admission checks, object per-job order: duplicate id, then
        # past arrival, then unknown-length rules — the raise must name
        # the *first* job that fails *any* check.
        early = arrival < now
        if self._adversary is None or self._clairvoyant:
            length_bad = unknown
        else:
            length_bad = np.zeros(k, dtype=np.bool_)
        first_bad = -1
        if bool(early.any()) or bool(length_bad.any()):
            first_bad = int(np.argmax(early | length_bad))
        idx_of = table.idx_of
        base = table.n
        ids_l = ids.tolist()
        for pos, jid in enumerate(ids_l):
            if jid in idx_of:
                raise SimulationError(f"duplicate job id {jid} admitted")
            if pos == first_bad:
                if early[pos]:
                    raise SimulationError(
                        f"job {jid} released with arrival "
                        f"{float(arrival[pos])} in the past (now={now})"
                    )
                if self._adversary is None:
                    raise SimulationError(
                        f"job {jid} has no length and no adversary to "
                        "assign one"
                    )
                raise SimulationError(
                    "adversary-controlled lengths are incompatible with "
                    "the clairvoyant information model"
                )
            idx_of[jid] = base + pos
        table.append_columns(batch, self._clairvoyant)
        self._views.extend([None] * k)
        trace = self._trace
        obs = self._obs
        if trace is not None or obs is not None:
            arrival_l = table.arrival_list
            deadline_l = table.deadline_list
            plen_l = table.plen_list
            for pos, jid in enumerate(ids_l):
                row = base + pos
                if trace is not None:
                    trace.append(
                        now,
                        TraceKind.RELEASE,
                        jid,
                        f"arrival={arrival_l[row]:g}",
                    )
                if obs is not None:
                    known = plen_l[row]
                    if known is not None:
                        obs.instant(
                            "engine.release",
                            t=now,
                            job=jid,
                            arrival=arrival_l[row],
                            deadline=deadline_l[row],
                            length=known,
                        )
                    else:
                        obs.instant(
                            "engine.release",
                            t=now,
                            job=jid,
                            arrival=arrival_l[row],
                            deadline=deadline_l[row],
                        )
        self._push_arrivals(base, k)

    def _push_arrivals(self, base: int, k: int) -> None:
        if k == 0:
            return
        queue = self._queue
        seq = queue._seq
        arrival_l = self._table.arrival_list
        items: list[tuple[float, int, int, Any]] = [
            (arrival_l[base + off], _ARRIVAL, seq + off, base + off)
            for off in range(k)
        ]
        queue._seq = seq + k
        self._push_raw(items)

    # ------------------------------------------------------ scalar handlers
    # Exact mirrors of the object core's handlers, over table rows.
    def _handle_arrival(self, idx: int) -> None:
        table = self._table
        table.state[idx] = _PENDING
        self._pending[idx] = None
        if self._trace is not None:
            self._trace.append(
                self._now, TraceKind.ARRIVAL, table.ids_list[idx], ""
            )
        self._queue.push(table.deadline_list[idx], _DEADLINE, idx)
        if self._hook_arrival is not None:
            self._hook_arrival(self._ctx, self._view(idx))

    def _handle_deadline(self, idx: int) -> None:
        table = self._table
        if table.start_list[idx] is not None:
            return  # job already started; the deadline event is moot
        if self._trace is not None:
            self._trace.append(
                self._now, TraceKind.DEADLINE, table.ids_list[idx], ""
            )
        if self._hook_deadline is not None:
            self._hook_deadline(self._ctx, self._view(idx))
        if table.start_list[idx] is None:
            raise DeadlineMissedError(
                f"scheduler {self._scheduler_name} failed to start "
                f"job {table.ids_list[idx]} by its starting deadline "
                f"{table.deadline_list[idx]}"
            )

    def _handle_completion(self, idx: int) -> None:
        table = self._table
        jid = table.ids_list[idx]
        if table.state[idx] == _DONE:  # pragma: no cover - defensive
            raise SimulationError(f"job {jid} completed twice")
        table.state[idx] = _DONE
        table.visible[idx] = True  # completion reveals the length
        self._running.pop(idx, None)
        if self._trace is not None:
            self._trace.append(self._now, TraceKind.COMPLETION, jid, "")
        if self._obs is not None:
            self._obs.instant(
                "engine.completion",
                t=self._now,
                job=jid,
                length=table.plen_list[idx],
            )
        if self._hook_completion is not None:
            self._hook_completion(self._ctx, self._view(idx))
        if self._adversary is not None:
            self._apply_adversary_response(
                self._adversary.on_completion(table.job(idx), self._now)
            )

    def _handle_assign(self, idx: int) -> None:
        adversary = self._adversary
        assert adversary is not None
        table = self._table
        jid = table.ids_list[idx]
        if table.plen_list[idx] is not None:  # pragma: no cover - defensive
            raise SimulationError(f"job {jid} length assigned twice")
        length = adversary.assign_length(table.job(idx), self._now)
        completion = self._commit_length(idx, jid, length)
        self._queue.push(completion, _COMPLETION, idx)

    def _commit_length(self, idx: int, jid: int, length: float) -> float:
        """Validate + record an assigned length; returns the completion time."""
        if length <= 0:
            raise SimulationError(
                f"adversary assigned non-positive length {length} to job {jid}"
            )
        table = self._table
        start = table.start_list[idx]
        assert start is not None
        completion = start + length
        if completion < self._now:
            raise SimulationError(
                f"adversary assigned length {length} to job {jid} putting "
                f"its completion {completion} in the past (now={self._now})"
            )
        table.plen[idx] = length
        table.plen_list[idx] = length
        if self._trace is not None:
            self._trace.append(
                self._now, TraceKind.ASSIGN, jid, f"length={length:g}"
            )
        return completion

    def _handle_timer(self, tag: Any) -> None:
        if self._trace is not None:
            self._trace.append(self._now, TraceKind.TIMER, None, repr(tag))
        if self._hook_timer is not None:
            self._hook_timer(self._ctx, tag)

    def _handle_adversary(self, _payload: Any) -> None:
        adversary = self._adversary
        assert adversary is not None
        if self._trace is not None:
            self._trace.append(self._now, TraceKind.ADVERSARY_WAKEUP, None, "")
        self._apply_adversary_response(adversary.on_wakeup(self._now))

    # ------------------------------------------------------ cohort handlers
    def _cohort_arrival(self, cohort: list[int]) -> None:
        """Vectorised same-time arrivals (only when on_arrival is a no-op)."""
        table = self._table
        rows = np.fromiter(cohort, np.int64, len(cohort))
        table.state[rows] = _PENDING
        self._pending.update(dict.fromkeys(cohort))
        if self._trace is not None:
            append = self._trace.append
            now = self._now
            ids_l = table.ids_list
            for idx in cohort:
                append(now, TraceKind.ARRIVAL, ids_l[idx], "")
        queue = self._queue
        seq = queue._seq
        deadline_l = table.deadline_list
        items: list[tuple[float, int, int, Any]] = [
            (deadline_l[idx], _DEADLINE, seq + off, idx)
            for off, idx in enumerate(cohort)
        ]
        queue._seq = seq + len(cohort)
        self._push_raw(items)

    def _cohort_completion(self, cohort: list[int]) -> None:
        """Vectorised same-time completions.

        Falls back to the scalar handler per row when a completion hook
        is live, the adversary lacks the batch hook, or the adversary
        declines this specific cohort (returns ``NotImplemented``).
        """
        adversary = self._adversary
        if self._hook_completion is None and (
            adversary is None or self._adv_completion_batch
        ):
            resp: Any = None
            if adversary is not None:
                ids_l = self._table.ids_list
                resp = adversary.on_completion_batch(
                    [ids_l[idx] for idx in cohort], self._now
                )
                if resp is NotImplemented:
                    for idx in cohort:
                        self._handle_completion(idx)
                    return
            self._complete_rows(cohort)
            if resp is not None:
                self._apply_adversary_response(resp)
            return
        for idx in cohort:
            self._handle_completion(idx)

    def _complete_rows(self, cohort: list[int]) -> None:
        """State flips + trace for a completion cohort (no hooks due)."""
        table = self._table
        rows = np.fromiter(cohort, np.int64, len(cohort))
        table.state[rows] = _DONE
        table.visible[rows] = True
        running = self._running
        for idx in cohort:
            running.pop(idx, None)
        if self._trace is not None:
            append = self._trace.append
            now = self._now
            ids_l = table.ids_list
            for idx in cohort:
                append(now, TraceKind.COMPLETION, ids_l[idx], "")

    def _cohort_assign(self, cohort: list[int]) -> int:
        """Vectorised same-time length assignment.

        Returns the number of *same-time completions consumed inline*
        (``completion == now``; the §3.1 shape).  Those never touch the
        heap but count as processed events — the caller adds the return
        value to its counter, so ``events_processed`` matches the object
        core, which pops each of them individually.
        """
        adversary = self._adversary
        assert adversary is not None
        table = self._table
        n = len(cohort)
        ids_l = table.ids_list
        ids = [ids_l[idx] for idx in cohort]
        now = self._now
        lengths_any = adversary.assign_lengths_batch(ids, now)
        if lengths_any is NotImplemented:
            return self._assign_scalar_cohort(cohort)
        lengths = np.ascontiguousarray(lengths_any, dtype=np.float64)
        if lengths.shape != (n,):
            raise SimulationError(
                f"assign_lengths_batch returned shape {lengths.shape} "
                f"for a cohort of {n} jobs"
            )
        nonpositive = lengths <= 0
        if bool(nonpositive.any()):
            bad = int(np.argmax(nonpositive))
            raise SimulationError(
                f"adversary assigned non-positive length "
                f"{float(lengths[bad])} to job {ids[bad]}"
            )
        rows = np.fromiter(cohort, np.int64, n)
        completions = table.start[rows] + lengths
        past = completions < now
        if bool(past.any()):
            bad = int(np.argmax(past))
            raise SimulationError(
                f"adversary assigned length {float(lengths[bad])} to job "
                f"{ids[bad]} putting its completion "
                f"{float(completions[bad])} in the past (now={now})"
            )
        table.plen[rows] = lengths
        lengths_l = lengths.tolist()
        plen_l = table.plen_list
        for off, idx in enumerate(cohort):
            plen_l[idx] = lengths_l[off]
        completions_l = completions.tolist()
        same_time = completions == now
        trace = self._trace
        if not bool(same_time.any()):
            queue = self._queue
            seq = queue._seq
            items: list[tuple[float, int, int, Any]] = [
                (completions_l[off], _COMPLETION, seq + off, cohort[off])
                for off in range(n)
            ]
            queue._seq = seq + n
            self._push_raw(items)
            if trace is not None:
                append = trace.append
                for off in range(n):
                    append(
                        now,
                        TraceKind.ASSIGN,
                        ids[off],
                        f"length={lengths_l[off]:g}",
                    )
            return 0
        same_l = same_time.tolist()
        if (
            trace is None
            and self._hook_completion is None
            and self._adv_completion_batch
        ):
            # Fused path: the whole same-time completion wave handled as
            # one batch, the (rare) future completions pushed normally.
            same_rows = [cohort[off] for off in range(n) if same_l[off]]
            resp = adversary.on_completion_batch(
                [ids[off] for off in range(n) if same_l[off]], now
            )
            if resp is not NotImplemented:
                self._complete_rows(same_rows)
                queue = self._queue
                seq = queue._seq
                items = []
                for off in range(n):
                    if not same_l[off]:
                        items.append(
                            (completions_l[off], _COMPLETION, seq, cohort[off])
                        )
                        seq += 1
                queue._seq = seq
                if items:
                    self._push_raw(items)
                if resp is not None:
                    self._apply_adversary_response(resp)
                return len(same_rows)
        # Interleaved fallback — the exact object order: each assign is
        # followed immediately by its same-time completion (a pushed
        # (t, COMPLETION) pops before the next (t, ASSIGN) would have).
        consumed = 0
        queue = self._queue
        for off, idx in enumerate(cohort):
            if trace is not None:
                trace.append(
                    now, TraceKind.ASSIGN, ids[off], f"length={lengths_l[off]:g}"
                )
            if same_l[off]:
                consumed += 1
                self._handle_completion(idx)
            else:
                queue.push(completions_l[off], _COMPLETION, idx)
        return consumed

    def _assign_scalar_cohort(self, cohort: list[int]) -> int:
        """Scalar fallback for a gathered assign cohort.

        Mirrors the object core exactly: assign job i, then (if its
        completion lands *now*) process that completion before the next
        assign — because in the object heap a ``(t, COMPLETION)`` push
        outranks the remaining ``(t, ASSIGN)`` entries.
        """
        adversary = self._adversary
        assert adversary is not None
        table = self._table
        now = self._now
        consumed = 0
        for idx in cohort:
            jid = table.ids_list[idx]
            if table.plen_list[idx] is not None:  # pragma: no cover
                raise SimulationError(f"job {jid} length assigned twice")
            length = adversary.assign_length(table.job(idx), now)
            completion = self._commit_length(idx, jid, length)
            if completion == now:
                consumed += 1
                self._handle_completion(idx)
            else:
                self._queue.push(completion, _COMPLETION, idx)
        return consumed

    # ------------------------------------------------------ starts
    def _start_job(self, job_id: int) -> None:
        table = self._table
        idx = table.idx_of.get(job_id)
        if idx is None:
            raise SchedulingViolationError(f"unknown job id {job_id}")
        if table.state[idx] == _ADMITTED:
            raise SchedulingViolationError(
                f"job {job_id} has not arrived yet (now={self._now})"
            )
        if table.start_list[idx] is not None:
            raise SchedulingViolationError(
                f"job {job_id} was already started"
            )
        deadline = table.deadline_list[idx]
        now = self._now
        if now > deadline:
            raise SchedulingViolationError(
                f"job {job_id} started at {now}, after its starting "
                f"deadline {deadline}"
            )
        table.state[idx] = _RUNNING  # parity: columnar-only
        table.start[idx] = now
        table.start_list[idx] = now
        self._pending.pop(idx, None)
        self._running[idx] = None
        if self._trace is not None:
            self._trace.append(now, TraceKind.START, job_id, "")
        if self._obs is not None:
            self._obs.instant("engine.start", t=now, job=job_id)
        adversary = self._adversary
        length = table.plen_list[idx]
        if length is not None:
            self._queue.push(now + length, _COMPLETION, idx)
        else:
            assert adversary is not None
            when = adversary.length_decision_time(table.job(idx), now)
            if when < now:
                raise SimulationError(
                    f"length decision time {when} precedes start {now}"
                )
            self._queue.push(when, _ASSIGN, idx)
        if adversary is not None:
            self._apply_adversary_response(
                adversary.on_start(table.job(idx), now)
            )

    def _start_batch(self, job_ids: Sequence[int]) -> None:
        n = len(job_ids)
        if n == 0:
            return
        adversary = self._adversary
        table = self._table
        if (
            n == 1
            or table.n == 0
            or self._obs is not None
            or (adversary is not None and not self._adv_start_batch)
        ):
            # Scalar route: per-start obs instants, or an adversary whose
            # on_start must observe each start (and answer) in turn.
            for job_id in job_ids:
                self._start_job(job_id)
            return
        now = self._now
        contiguous = table.ids_contiguous
        if contiguous:
            # id == row for every admitted job: skip the dict lookups.
            rows_l = list(job_ids)
            try:
                rows = np.fromiter(rows_l, np.int64, n)
            except (OverflowError, ValueError):
                contiguous = False  # an id outside int64: take the dict route
        if contiguous:
            missing = (rows < 0) | (rows >= table.n)
        else:
            idx_of = table.idx_of
            rows_l = [idx_of.get(jid, -1) for jid in job_ids]
            rows = np.fromiter(rows_l, np.int64, n)
            missing = rows < 0
        safe = np.where(missing, 0, rows)
        bad = missing | (table.state[safe] != _PENDING) | (
            table.deadline[safe] < now
        )
        if bool(bad.any()):
            # Re-run the object core's checks on the first offender so
            # the exception (type and message) is identical.
            pos = int(np.argmax(bad))
            jid = job_ids[pos]
            idx = rows_l[pos]
            if idx < 0 or idx >= table.n:
                raise SchedulingViolationError(f"unknown job id {jid}")
            if table.state[idx] == _ADMITTED:
                raise SchedulingViolationError(
                    f"job {jid} has not arrived yet (now={now})"
                )
            if table.start_list[idx] is not None:
                raise SchedulingViolationError(
                    f"job {jid} was already started"
                )
            raise SchedulingViolationError(
                f"job {jid} started at {now}, after its starting "
                f"deadline {table.deadline_list[idx]}"
            )
        pending = self._pending
        for pos, idx in enumerate(rows_l):
            if pending.pop(idx, _MISSING) is _MISSING:
                # Only reachable via an intra-batch duplicate: the state
                # snapshot above saw it pending, someone earlier in this
                # very cohort started it.
                raise SchedulingViolationError(
                    f"job {job_ids[pos]} was already started"
                )
        table.state[rows] = _RUNNING  # parity: columnar-only
        table.start[rows] = now
        start_l = table.start_list
        running = self._running
        for idx in rows_l:
            start_l[idx] = now
            running[idx] = None
        if self._trace is not None:
            append = self._trace.append
            for jid in job_ids:
                append(now, TraceKind.START, jid, "")
        # Completion events for known lengths, ASSIGN events otherwise —
        # pushed in job order, exactly the object core's seq order.
        plens = table.plen[rows]
        known = ~np.isnan(plens)
        queue = self._queue
        seq = queue._seq
        items: list[tuple[float, int, int, Any]]
        if bool(known.all()):
            completions = (now + plens).tolist()
            items = [
                (completions[off], _COMPLETION, seq + off, rows_l[off])
                for off in range(n)
            ]
            queue._seq = seq + n
        else:
            assert adversary is not None
            whens = self._decision_times(job_ids, rows_l, known, now)
            known_l = known.tolist()
            plens_l = plens.tolist()
            items = []
            for off in range(n):
                if known_l[off]:
                    items.append(
                        (now + plens_l[off], _COMPLETION, seq + off, rows_l[off])
                    )
                else:
                    items.append((whens[off], _ASSIGN, seq + off, rows_l[off]))
            queue._seq = seq + n
        self._push_raw(items)
        if adversary is not None:
            resp = adversary.on_start_batch(list(job_ids), now)
            if resp is NotImplemented:
                # Post-mutation scalar compensation: every started job is
                # announced in order.  (on_start observes adversary state
                # and the job, both identical to the interleaved order.)
                for idx in rows_l:
                    self._apply_adversary_response(
                        adversary.on_start(table.job(idx), now)
                    )
            elif resp is not None:
                self._apply_adversary_response(resp)

    def _decision_times(
        self,
        job_ids: Sequence[int],
        rows_l: list[int],
        known: NDArray[np.bool_],
        now: float,
    ) -> list[float]:
        """Length-commit times for the unknown entries of a start cohort.

        Returns a dense list aligned with ``job_ids`` (entries at known
        positions are garbage ``now`` placeholders, never read).
        """
        adversary = self._adversary
        assert adversary is not None
        table = self._table
        if bool(known.any()):
            # Mixed cohort — rare; per-job scalar calls keep it simple.
            whens = [now] * len(rows_l)
            known_l = known.tolist()
            for off, idx in enumerate(rows_l):
                if known_l[off]:
                    continue
                when = adversary.length_decision_time(table.job(idx), now)
                if when < now:
                    raise SimulationError(
                        f"length decision time {when} precedes start {now}"
                    )
                whens[off] = when
            return whens
        batch_hook = getattr(adversary, "length_decision_times_batch", None)
        result: Any = NotImplemented
        if callable(batch_hook):
            result = batch_hook(list(job_ids), now)
        if result is NotImplemented:
            whens = []
            for idx in rows_l:
                when = adversary.length_decision_time(table.job(idx), now)
                if when < now:
                    raise SimulationError(
                        f"length decision time {when} precedes start {now}"
                    )
                whens.append(when)
            return whens
        whens = np.ascontiguousarray(result, dtype=np.float64).tolist()
        if len(whens) != len(rows_l):
            raise SimulationError(
                "length_decision_times_batch returned "
                f"{len(whens)} times for a cohort of {len(rows_l)} jobs"
            )
        for when in whens:
            if when < now:
                raise SimulationError(
                    f"length decision time {when} precedes start {now}"
                )
        return whens

    # ------------------------------------------------------ adversary I/O
    def _apply_adversary_response(self, resp: AdversaryResponse | None) -> None:
        if resp is None:
            return
        release = resp.release
        if len(release) > 1:
            self._admit_jobs(list(release))
        else:
            for job in release:
                self._admit_jobs([job], single=True)
        if resp.release_batch is not None:
            self._admit_batch_cols(resp.release_batch)
        if resp.wakeup is not None:
            if resp.wakeup < self._now:
                raise SimulationError(
                    f"adversary wakeup {resp.wakeup} is in the past "
                    f"(now={self._now})"
                )
            self._queue.push(resp.wakeup, _ADVERSARY, None)

    # ------------------------------------------------------ context backend
    def _view(self, idx: int) -> TableJobView:
        views = self._views
        view = views[idx]
        if view is None:
            view = TableJobView(self, idx)
            views[idx] = view
        return view

    def _pending_views(self) -> list[JobView]:
        views: list[JobView] = [self._view(idx) for idx in self._pending]
        views.sort(key=lambda v: (v.deadline, v.arrival, v.id))
        return views

    def _running_views(self) -> list[JobView]:
        views: list[JobView] = [self._view(idx) for idx in self._running]
        views.sort(key=lambda v: (v.start_time, v.id))
        return views

    def _pending_ids(self) -> list[int]:
        pending = self._pending
        m = len(pending)
        if m == 0:
            return []
        table = self._table
        rows = np.fromiter(pending.keys(), np.int64, m)
        ids = table.ids[rows]
        order = np.lexsort((ids, table.arrival[rows], table.deadline[rows]))
        out: list[int] = ids[order].tolist()
        return out

    def _is_started(self, job_id: int) -> bool:
        table = self._table
        idx = table.idx_of.get(job_id)
        return idx is not None and table.start_list[idx] is not None

    def _is_completed(self, job_id: int) -> bool:
        table = self._table
        idx = table.idx_of.get(job_id)
        return idx is not None and bool(table.state[idx] == _DONE)

    # ------------------------------------------------------------ finish
    def _finish(self) -> SimulationResult:
        table = self._table
        n = table.n
        if n and not bool((table.state[:n] == _DONE).all()):
            for idx in range(n):  # pragma: no cover - deadline enforcement
                if table.start_list[idx] is None:
                    raise SimulationError(
                        f"job {table.ids_list[idx]} never started"
                    )
                if table.state[idx] != _DONE:
                    raise SimulationError(
                        f"job {table.ids_list[idx]} never completed"
                    )
        name = (
            self._instance.name
            if self._instance is not None
            else f"adversarial/{type(self._adversary).__name__}"
        )
        # Span straight off the columns — same function, same admission
        # order as Schedule.span, hence bit-identical — so result.span
        # never forces materialisation.
        span = union_measure(table.start[:n], table.plen[:n])

        def materialize() -> tuple[Schedule, Instance]:
            jobs: list[Job] = []
            starts: dict[int, float] = {}
            plen_l = table.plen_list
            start_l = table.start_list
            for idx in range(n):
                job = table.job(idx)
                if job.length is None:
                    committed = plen_l[idx]
                    assert committed is not None
                    job = job.with_length(committed)
                jobs.append(job)
                started_at = start_l[idx]
                assert started_at is not None
                starts[job.id] = started_at
            resolved = Instance(jobs, name=name)
            return Schedule(resolved, starts), resolved

        obs = self._obs
        if obs is not None:
            schedule, resolved = materialize()
            obs.gauge_set("engine.span", schedule.span)
            obs.counter_add("engine.jobs", float(n))
            for job in resolved:
                assert job.length is not None
                obs.histogram_observe("engine.job_length", job.length)
            obs.instant(
                "engine.run_end",
                t=self._now,
                span=schedule.span,
                jobs=n,
                events=self._events_processed,
            )
            return SimulationResult(
                schedule=schedule,
                instance=resolved,
                events_processed=self._events_processed,
                scheduler=self._scheduler,
                trace=self._trace,
                recorder=obs,
            )
        return SimulationResult(
            events_processed=self._events_processed,
            scheduler=self._scheduler,
            trace=self._trace,
            recorder=None,
            materialize=materialize,
            span=span,
        )
