"""Exception hierarchy for the FJS reproduction library.

All library-specific errors derive from :class:`FJSError` so callers can
catch the whole family with a single ``except`` clause while still being
able to distinguish modelling errors (bad input data) from runtime
scheduling violations (a scheduler breaking the rules of the game).
"""

from __future__ import annotations

__all__ = [
    "FJSError",
    "InvalidJobError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "DeadlineMissedError",
    "SchedulingViolationError",
    "ClairvoyanceError",
    "CoreParityError",
    "SimulationError",
    "SolverError",
    "CapacityExceededError",
]


class FJSError(Exception):
    """Base class for all errors raised by this library."""


class InvalidJobError(FJSError, ValueError):
    """A job's parameters are inconsistent (e.g. deadline before arrival)."""


class InvalidInstanceError(FJSError, ValueError):
    """A job collection violates instance-level requirements."""


class InvalidScheduleError(FJSError, ValueError):
    """A schedule assigns an infeasible start time to some job."""


class DeadlineMissedError(FJSError, RuntimeError):
    """An online scheduler failed to start a job by its starting deadline.

    In FJS every job *must* be started somewhere in ``[a(J), d(J)]``; a
    scheduler that lets the deadline pass has produced an infeasible run,
    which is a bug in the scheduler rather than a legitimate outcome.
    """


class SchedulingViolationError(FJSError, RuntimeError):
    """A scheduler attempted an illegal action (e.g. starting a job twice,
    starting before arrival, or starting a job it has never been shown)."""


class ClairvoyanceError(FJSError, RuntimeError):
    """Processing-length information was accessed in a non-clairvoyant run
    before the job completed."""


class SimulationError(FJSError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class CoreParityError(SimulationError):
    """The object and columnar engine cores disagreed on a lockstep run.

    Raised only under ``REPRO_PARITY=1`` (see :mod:`repro.core.parity`):
    the same instance/scheduler/adversary was executed on both cores and
    their final state snapshots (schedule, span, event counts, traces)
    or their raised error types diverged.  Either way one core has
    drifted — this is a bug in the engine, never in user code."""


class SolverError(FJSError, RuntimeError):
    """An offline solver was applied to an instance it cannot handle
    (e.g. the exact solver on non-integral data) or exceeded its budget."""


class CapacityExceededError(FJSError, RuntimeError):
    """A dynamic-bin-packing assignment exceeded a bin's capacity."""
