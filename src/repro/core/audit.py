"""Schedule auditing: structured validity reports.

`Schedule.validate` raises on the first violation — right for internal
invariants, unhelpful when *diagnosing* a schedule produced elsewhere
(a loaded JSON file, a hand-written baseline, an external tool).  The
auditor runs every check, collects all findings, and summarises:

* **violations** — feasibility failures (job outside its window, missing
  or unknown jobs, unresolved or mismatching lengths);
* **observations** — non-fatal structure facts (idle gaps inside the
  busy hull, jobs started strictly at deadlines, peak concurrency).

``audit(instance, starts)`` never raises on bad data; it reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .intervals import IntervalUnion
from .job import Instance
from .metrics import concurrency_profile

__all__ = ["Finding", "AuditReport", "audit"]


@dataclass(frozen=True)
class Finding:
    """One audit finding."""

    severity: str  # "violation" | "observation"
    code: str
    message: str
    job_id: int | None = None


@dataclass
class AuditReport:
    """All findings for one (instance, starts) pair plus summary stats."""

    findings: list[Finding] = field(default_factory=list)
    span: float | None = None
    peak_concurrency: int | None = None
    idle_within_hull: float | None = None

    @property
    def violations(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "violation"]

    @property
    def observations(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "observation"]

    @property
    def feasible(self) -> bool:
        return not self.violations

    def render(self) -> str:
        """Human-readable summary."""
        lines = [
            f"feasible: {'yes' if self.feasible else 'NO'}"
            + (f"   span={self.span:g}" if self.span is not None else "")
            + (
                f"   peak concurrency={self.peak_concurrency}"
                if self.peak_concurrency is not None
                else ""
            )
        ]
        for f in self.findings:
            tag = "!!" if f.severity == "violation" else "--"
            job = f" [J{f.job_id}]" if f.job_id is not None else ""
            lines.append(f"{tag} {f.code}{job}: {f.message}")
        return "\n".join(lines)


def audit(
    instance: Instance,
    starts: Mapping[int, float],
    lengths: Mapping[int, float] | None = None,
) -> AuditReport:
    """Audit a start-time assignment against an instance.

    Performs every check regardless of earlier failures and computes
    summary statistics over the valid subset of jobs.

    Parameters
    ----------
    instance, starts:
        The instance and the start-time assignment under audit.
    lengths:
        Optional *executed* processing lengths (e.g. recorded by an
        external runner).  When given, they resolve adversary-controlled
        jobs (``length=None``) and are cross-checked against committed
        instance lengths: a disagreement beyond ``1e-12`` yields a
        ``length-mismatch`` violation, and an executed length for a job
        the instance doesn't contain yields ``unknown-length-record``.
    """
    report = AuditReport()
    if lengths is not None:
        for jid in sorted(set(lengths) - set(instance.job_ids)):
            report.findings.append(
                Finding(
                    "violation",
                    "unknown-length-record",
                    "executed length refers to no job",
                    jid,
                )
            )
    inst_ids = set(instance.job_ids)
    sched_ids = set(starts)

    for missing in sorted(inst_ids - sched_ids):
        report.findings.append(
            Finding("violation", "missing-job", "job has no start time", missing)
        )
    for extra in sorted(sched_ids - inst_ids):
        report.findings.append(
            Finding("violation", "unknown-job", "start refers to no job", extra)
        )

    placed: list[tuple[float, float]] = []
    for jid in sorted(inst_ids & sched_ids):
        job = instance[jid]
        s = starts[jid]
        executed = lengths.get(jid) if lengths is not None else None
        length = job.length if job.length is not None else executed
        if (
            job.length is not None
            and executed is not None
            and abs(executed - job.length) > 1e-12
        ):
            report.findings.append(
                Finding(
                    "violation",
                    "length-mismatch",
                    f"executed length {executed:g} disagrees with committed "
                    f"length {job.length:g}",
                    jid,
                )
            )
        if length is None:
            report.findings.append(
                Finding(
                    "violation",
                    "unresolved-length",
                    "job's processing length was never committed",
                    jid,
                )
            )
            continue
        if s < job.arrival:
            report.findings.append(
                Finding(
                    "violation",
                    "starts-before-arrival",
                    f"start {s:g} precedes arrival {job.arrival:g}",
                    jid,
                )
            )
        elif s > job.deadline:
            report.findings.append(
                Finding(
                    "violation",
                    "misses-deadline",
                    f"start {s:g} exceeds starting deadline {job.deadline:g}",
                    jid,
                )
            )
        else:
            placed.append((s, length))
            if s == job.deadline and job.laxity > 0:
                report.findings.append(
                    Finding(
                        "observation",
                        "deadline-start",
                        "job started exactly at its deadline",
                        jid,
                    )
                )

    if placed:
        union = IntervalUnion.from_starts_lengths(
            [p[0] for p in placed], [p[1] for p in placed]
        )
        report.span = union.measure
        hull = union.right - union.left
        report.idle_within_hull = hull - union.measure
        if report.idle_within_hull > 1e-12:
            report.findings.append(
                Finding(
                    "observation",
                    "idle-gaps",
                    f"{report.idle_within_hull:g} time units idle inside "
                    f"the busy hull ({len(union)} busy components)",
                )
            )
        prof = concurrency_profile([p[0] for p in placed], [p[1] for p in placed])
        report.peak_concurrency = prof.peak
    return report
