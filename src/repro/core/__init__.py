"""Core model: jobs, intervals, schedules, metrics and the event engine."""

from .errors import (
    CapacityExceededError,
    ClairvoyanceError,
    DeadlineMissedError,
    FJSError,
    InvalidInstanceError,
    InvalidJobError,
    InvalidScheduleError,
    SchedulingViolationError,
    SimulationError,
    SolverError,
)
from .intervals import Interval, IntervalUnion, merge_intervals, union_measure
from .audit import AuditReport, Finding, audit
from .intervalset import MutableIntervalSet
from .job import Instance, Job, make_jobs
from .schedule import Schedule, StartedJob
from .metrics import (
    ConcurrencyProfile,
    concurrency_profile,
    max_concurrency,
    overlap_fraction,
    parallelism,
    span_ratio,
)
from .io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .trace import Trace, TraceKind, TraceRecord
from .engine import (
    Adversary,
    AdversaryResponse,
    JobView,
    SchedulerContext,
    SimulationResult,
    Simulator,
    simulate,
)

__all__ = [
    "CapacityExceededError",
    "ClairvoyanceError",
    "DeadlineMissedError",
    "FJSError",
    "InvalidInstanceError",
    "InvalidJobError",
    "InvalidScheduleError",
    "SchedulingViolationError",
    "SimulationError",
    "SolverError",
    "Interval",
    "IntervalUnion",
    "MutableIntervalSet",
    "AuditReport",
    "Finding",
    "audit",
    "merge_intervals",
    "union_measure",
    "Instance",
    "Job",
    "make_jobs",
    "Schedule",
    "StartedJob",
    "ConcurrencyProfile",
    "concurrency_profile",
    "max_concurrency",
    "overlap_fraction",
    "parallelism",
    "span_ratio",
    "Adversary",
    "AdversaryResponse",
    "JobView",
    "SchedulerContext",
    "SimulationResult",
    "Simulator",
    "simulate",
    "Trace",
    "TraceKind",
    "TraceRecord",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]
