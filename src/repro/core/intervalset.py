"""A mutable interval set with logarithmic point/overlap queries.

:class:`IntervalUnion` is immutable — every insert copies the component
list, which is the right trade-off for schedule snapshots but quadratic
when a scheduler (Doubler, GreedyCover) or the offline heuristics grow a
committed union one interval at a time.  :class:`MutableIntervalSet`
maintains the same canonical form (sorted, disjoint, non-abutting,
half-open components) in place:

* ``add(lo, hi)``     — amortised O(log n + k) for k merged components;
* ``covers``, ``intersection_length``, ``added_measure`` — O(log n + k);
* ``measure``         — O(1) (maintained incrementally).

The set is behaviourally equivalent to rebuilding an ``IntervalUnion``
from the same inserts (the property suite asserts this), so callers can
pick by mutability need alone.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from .intervals import Interval, IntervalUnion

__all__ = ["MutableIntervalSet"]


class MutableIntervalSet:
    """Sorted disjoint half-open intervals with in-place insertion."""

    __slots__ = ("_lefts", "_rights", "_measure")

    def __init__(self) -> None:
        self._lefts: list[float] = []
        self._rights: list[float] = []
        self._measure = 0.0

    # -- mutation -----------------------------------------------------------
    def add(self, lo: float, hi: float) -> float:
        """Insert ``[lo, hi)``; returns the measure actually added.

        Overlapping/abutting components are merged.
        """
        if hi <= lo:
            return 0.0
        lefts, rights = self._lefts, self._rights
        # components with right >= lo can merge on the left side …
        i = bisect_left(rights, lo)
        # … components with left <= hi can merge on the right side.
        j = bisect_right(lefts, hi)
        if i >= j:
            # no overlap/abutment: pure insertion between i-1 and i
            lefts.insert(i, lo)
            rights.insert(i, hi)
            self._measure += hi - lo
            return hi - lo
        new_lo = min(lo, lefts[i])
        new_hi = max(hi, rights[j - 1])
        removed = sum(rights[k] - lefts[k] for k in range(i, j))
        del lefts[i:j]
        del rights[i:j]
        lefts.insert(i, new_lo)
        rights.insert(i, new_hi)
        added = (new_hi - new_lo) - removed
        self._measure += added
        return added

    def add_interval(self, iv: Interval) -> float:
        """Insert an :class:`Interval`; returns the measure added."""
        return self.add(iv.left, iv.right)

    # -- queries --------------------------------------------------------------
    @property
    def measure(self) -> float:
        return self._measure

    def __len__(self) -> int:
        return len(self._lefts)

    def __iter__(self) -> Iterator[Interval]:
        for lo, hi in zip(self._lefts, self._rights):
            yield Interval(lo, hi)

    def covers(self, t: float) -> bool:
        """Whether ``t`` lies in some component (half-open)."""
        i = bisect_right(self._lefts, t) - 1
        return i >= 0 and t < self._rights[i]

    def intersection_length(self, lo: float, hi: float) -> float:
        """Measure of the overlap with ``[lo, hi)``."""
        if hi <= lo or not self._lefts:
            return 0.0
        lefts, rights = self._lefts, self._rights
        i = bisect_right(rights, lo)
        total = 0.0
        while i < len(lefts) and lefts[i] < hi:
            total += min(hi, rights[i]) - max(lo, lefts[i])
            i += 1
        return total

    def added_measure(self, lo: float, hi: float) -> float:
        """How much :meth:`add` of ``[lo, hi)`` would grow the measure."""
        if hi <= lo:
            return 0.0
        return (hi - lo) - self.intersection_length(lo, hi)

    def covers_interval(self, lo: float, hi: float, tol: float = 1e-12) -> bool:
        """Whether ``[lo, hi)`` is fully covered (up to ``tol``)."""
        return self.intersection_length(lo, hi) >= (hi - lo) - tol

    def components_overlapping(self, lo: float, hi: float) -> Iterator[Interval]:
        """Components intersecting the *closed* range ``[lo, hi]``.

        Uses the closed range (not half-open) because callers enumerate
        candidate endpoints, where touching counts.
        """
        if not self._lefts:
            return
        lefts, rights = self._lefts, self._rights
        i = bisect_left(rights, lo)
        while i < len(lefts) and lefts[i] <= hi:
            yield Interval(lefts[i], rights[i])
            i += 1

    def to_union(self) -> IntervalUnion:
        """An immutable snapshot."""
        return IntervalUnion.from_pairs(zip(self._lefts, self._rights))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MutableIntervalSet({len(self)} components, measure={self._measure:g})"
