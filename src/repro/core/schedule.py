"""Schedules: assignments of start times to jobs.

A :class:`Schedule` is the output of every scheduler (online via the
simulator, or offline via the solvers): a mapping ``job id -> start time``
together with the instance it schedules.  It knows how to

* validate itself (every job started within its ``[a, d]`` window,
  every job present exactly once),
* compute its span (measure of the union of active intervals — the
  paper's objective),
* expose active intervals and per-job records for analysis and rendering.

Lengths must be concrete by the time a schedule is built; for adversarial
runs the simulator commits the adversary-chosen lengths into a resolved
instance first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from .errors import InvalidScheduleError
from .intervals import Interval, IntervalUnion, union_measure
from .job import Instance, Job

__all__ = ["Schedule", "StartedJob"]


@dataclass(frozen=True, slots=True)
class StartedJob:
    """A job together with its scheduled start (a row of a schedule)."""

    job: Job
    start: float

    @property
    def end(self) -> float:
        return self.start + self.job.known_length

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)


class Schedule:
    """An immutable assignment of start times for an instance's jobs.

    Parameters
    ----------
    instance:
        The instance being scheduled.  All lengths must be concrete.
    starts:
        Mapping from job id to start time.  Must cover exactly the
        instance's job ids.
    validate:
        When true (default) feasibility is checked eagerly and an
        :class:`InvalidScheduleError` raised on any violation.
    """

    __slots__ = ("_instance", "_starts", "_span_cache")

    def __init__(
        self,
        instance: Instance,
        starts: Mapping[int, float],
        *,
        validate: bool = True,
    ) -> None:
        self._instance = instance
        self._starts = dict(starts)
        self._span_cache: float | None = None
        if validate:
            self.validate()

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`InvalidScheduleError` unless the schedule is feasible."""
        inst_ids = set(self._instance.job_ids)
        sched_ids = set(self._starts)
        if inst_ids != sched_ids:
            missing = sorted(inst_ids - sched_ids)
            extra = sorted(sched_ids - inst_ids)
            raise InvalidScheduleError(
                f"schedule does not cover instance exactly "
                f"(missing={missing[:5]}, extra={extra[:5]})"
            )
        for job in self._instance:
            s = self._starts[job.id]
            if not job.feasible_start(s):
                raise InvalidScheduleError(
                    f"job {job.id} started at {s}, outside its window "
                    f"[{job.arrival}, {job.deadline}]"
                )
            job.known_length  # raises if the length was never committed

    # -- accessors ----------------------------------------------------------
    @property
    def instance(self) -> Instance:
        return self._instance

    def start_of(self, job_id: int) -> float:
        return self._starts[job_id]

    def end_of(self, job_id: int) -> float:
        return self._starts[job_id] + self._instance[job_id].known_length

    def interval_of(self, job_id: int) -> Interval:
        """The active interval ``[s, s + p)`` of a job."""
        return Interval(self.start_of(job_id), self.end_of(job_id))

    def rows(self) -> Iterator[StartedJob]:
        """Per-job records in instance order."""
        for job in self._instance:
            yield StartedJob(job, self._starts[job.id])

    def starts(self) -> dict[int, float]:
        """A copy of the ``job id -> start`` mapping."""
        return dict(self._starts)

    def __len__(self) -> int:
        return len(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._instance is other._instance and self._starts == other._starts

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash((id(self._instance), tuple(sorted(self._starts.items()))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self._instance.name!r}, {len(self)} jobs, "
            f"span={self.span:g})"
        )

    # -- metrics -------------------------------------------------------------
    @property
    def span(self) -> float:
        """Measure of the union of active intervals (the paper's objective).

        Computed once with the vectorised union sweep and cached.
        """
        if self._span_cache is None:
            starts = np.array(
                [self._starts[j.id] for j in self._instance], dtype=np.float64
            )
            lengths = np.array(
                [j.known_length for j in self._instance], dtype=np.float64
            )
            self._span_cache = union_measure(starts, lengths)
        return self._span_cache

    def active_union(self) -> IntervalUnion:
        """The union of all active intervals as an :class:`IntervalUnion`."""
        return IntervalUnion(row.interval for row in self.rows())

    def makespan(self) -> float:
        """Latest completion time (0 for an empty schedule)."""
        if not self._starts:
            return 0.0
        return max(self.end_of(jid) for jid in self._starts)
