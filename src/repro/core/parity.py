"""Runtime twin of RL013: lockstep dual-core shadow runs.

``REPRO_PARITY=1`` arms an opt-in oracle for the dual-core engine: every
columnar-core :meth:`Simulator.run` first executes the *object* core on
a deep-copied scheduler/adversary, then the columnar core as usual, and
diffs the two outcomes — schedules (per-job start and executed length),
span, event counts, traces when armed, and raised error types.  Any
divergence raises :class:`~repro.core.errors.CoreParityError`.

This mirrors the ``REPRO_STRICT``/``ClairvoyanceGuard`` pattern: the
static rule (RL013 in :mod:`repro.lint.invariants.parity`) proves the
two cores' state machines correspond on *all* paths, while this oracle
checks the *executed* path bit-for-bit; the two are cross-validated on
shared fixtures in the test suite.  It is intended for small instances
(tests, CI smoke) — a shadow run doubles the work and deep-copies the
scheduler, so leave it off for benchmarks.
"""

from __future__ import annotations

import copy
import os
from typing import TYPE_CHECKING, Any

from .errors import CoreParityError, FJSError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import SimulationResult, Simulator

__all__ = [
    "CoreParityError",
    "diff_outcomes",
    "parity_mode_enabled",
    "run_lockstep",
    "snapshot",
]

#: Relative tolerance for float comparisons in snapshots.  Both cores
#: execute the same float arithmetic in the same order, so equality is
#: expected to be exact; the epsilon only absorbs libm-level noise in
#: reductions (the vectorised span accumulates in a different order).
_RTOL = 1e-12


def parity_mode_enabled() -> bool:
    """Whether ``REPRO_PARITY`` requests lockstep dual-core shadow runs."""
    return os.environ.get("REPRO_PARITY", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    )


def snapshot(result: "SimulationResult") -> dict[str, Any]:
    """The comparable state snapshot of one completed run."""
    schedule = result.schedule
    instance = result.instance
    lengths = {job.id: job.length for job in instance.jobs}
    return {
        "jobs": {
            job_id: (start, lengths.get(job_id))
            for job_id, start in schedule.starts().items()
        },
        "span": schedule.span,
        "events": result.events_processed,
        "trace": (
            [(r.time, r.kind, r.job_id, r.detail) for r in result.trace]
            if result.trace is not None
            else None
        ),
    }


def _close(a: Any, b: Any) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return a == b or abs(a - b) <= _RTOL * max(abs(a), abs(b))
    return bool(a == b)


def diff_outcomes(
    obj: dict[str, Any], col: dict[str, Any]
) -> list[str]:
    """Human-readable divergences between two snapshots (empty = parity)."""
    out: list[str] = []
    jobs_o, jobs_c = obj["jobs"], col["jobs"]
    for job_id in sorted(set(jobs_o) | set(jobs_c)):
        a, b = jobs_o.get(job_id), jobs_c.get(job_id)
        if a is None or b is None:
            out.append(
                f"job {job_id}: scheduled by the "
                f"{'object' if a is not None else 'columnar'} core only"
            )
        elif not (_close(a[0], b[0]) and _close(a[1], b[1])):
            out.append(
                f"job {job_id}: object (start={a[0]!r}, length={a[1]!r}) "
                f"!= columnar (start={b[0]!r}, length={b[1]!r})"
            )
    if not _close(obj["span"], col["span"]):
        out.append(f"span: object {obj['span']!r} != columnar {col['span']!r}")
    if obj["events"] != col["events"]:
        out.append(
            f"events processed: object {obj['events']} != "
            f"columnar {col['events']}"
        )
    ta, tb = obj["trace"], col["trace"]
    if ta is not None and tb is not None:
        if len(ta) != len(tb):
            out.append(f"trace length: object {len(ta)} != columnar {len(tb)}")
        else:
            for i, (ra, rb) in enumerate(zip(ta, tb)):
                if ra != rb:
                    out.append(
                        f"trace[{i}]: object {ra!r} != columnar {rb!r}"
                    )
                    break
    return out


def run_lockstep(sim: "Simulator") -> "SimulationResult":
    """Run ``sim`` on both cores and return the columnar result.

    The object-core shadow runs first on deep copies of the scheduler
    and adversary (instances are immutable and shared), with a disabled
    recorder so observability streams are not double-counted.  Raises
    :class:`CoreParityError` when the cores disagree — on state, or on
    which error type they raise.
    """
    from .columnar import ColumnarCore
    from .engine import Simulator

    shadow = Simulator(
        copy.deepcopy(sim._scheduler),
        instance=sim._instance,
        adversary=copy.deepcopy(sim._adversary),
        clairvoyant=sim._clairvoyant,
        max_events=sim._max_events,
        trace=sim._trace is not None,
        strict=sim._guard is not None,
        recorder=_null_recorder(),
        core="object",
    )
    shadow_err: BaseException | None = None
    shadow_result: "SimulationResult | None" = None
    try:
        shadow_result = shadow.run()
    except FJSError as exc:
        shadow_err = exc

    primary_err: BaseException | None = None
    result: "SimulationResult | None" = None
    try:
        result = ColumnarCore(sim).run()
    except FJSError as exc:
        primary_err = exc

    if primary_err is not None or shadow_err is not None:
        if primary_err is not None and shadow_err is not None:
            if type(primary_err) is type(shadow_err):
                raise primary_err  # both cores agree the run is invalid
            raise CoreParityError(
                "lockstep cores raised different error types: object core "
                f"{type(shadow_err).__name__} ({shadow_err}), columnar core "
                f"{type(primary_err).__name__} ({primary_err})"
            )
        side = "columnar" if primary_err is not None else "object"
        err = primary_err if primary_err is not None else shadow_err
        raise CoreParityError(
            f"lockstep divergence: only the {side} core raised "
            f"{type(err).__name__}: {err}"
        )

    assert result is not None and shadow_result is not None
    divergences = diff_outcomes(snapshot(shadow_result), snapshot(result))
    if divergences:
        raise CoreParityError(
            "lockstep dual-core run diverged:\n  " + "\n  ".join(divergences)
        )
    return result


def _null_recorder() -> Any:
    from ..obs.recorder import NullRecorder

    return NullRecorder()
