"""``python -m repro serve`` — argument parsing and daemon launch.

This module stays print-free (the serve package is inside the lint
RL011 scope): every human-facing line goes through the ``echo``
callable the top-level CLI injects, and the daemon itself only ever
speaks the JSONL protocol on its sockets.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Callable

from ..obs.live import telemetry_addr
from ..schedulers.registry import scheduler_names
from .checkpoint import verify_checkpoints
from .daemon import ServeDaemon
from .loopwatch import (
    LoopStallError,
    LoopWatch,
    loopwatch_enabled,
    stall_threshold,
    watched_run,
)
from .protocol import (
    DEFAULT_SCHEDULER,
    checkpoint_every,
    max_line_bytes,
    queue_size,
)

__all__ = ["add_serve_parser", "cmd_serve"]


def add_serve_parser(
    sub: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    """Register the ``serve`` subcommand on the main parser."""
    p = sub.add_parser(
        "serve",
        help="streaming scheduling daemon (JSONL job streams in, "
        "start decisions out)",
    )
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--stdio", action="store_true",
        help="serve one session over stdin/stdout (the default)",
    )
    mode.add_argument(
        "--unix", metavar="PATH", default=None,
        help="listen on a Unix domain socket",
    )
    mode.add_argument(
        "--tcp", metavar="HOST:PORT", default=None,
        help="listen on a TCP socket, e.g. 127.0.0.1:7077",
    )
    p.add_argument(
        "--scheduler", default=DEFAULT_SCHEDULER, choices=scheduler_names(),
        help="default scheduler for implicitly opened tenants",
    )
    p.add_argument(
        "--queue-size", type=int, default=None,
        help="per-tenant/output queue bound (REPRO_SERVE_QUEUE)",
    )
    p.add_argument(
        "--max-line", type=int, default=None,
        help="longest accepted input line in bytes (REPRO_SERVE_MAX_LINE)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for per-tenant checkpoints "
        "(REPRO_SERVE_CHECKPOINT_DIR; checkpointing off when unset)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="ops between automatic checkpoints, 0 disables "
        "(REPRO_SERVE_CHECKPOINT_EVERY)",
    )
    p.add_argument(
        "--trace-dir", default=None,
        help="directory closed tenants write obs traces into "
        "(reconcilable with `repro obs explain --strict`)",
    )
    p.add_argument(
        "--telemetry", metavar="HOST:PORT", default=None,
        help="read-only telemetry listener: Prometheus text on /metrics, "
        "JSON on /snapshot (REPRO_TELEMETRY_ADDR; off when unset)",
    )
    p.add_argument(
        "--no-telemetry", action="store_true",
        help="disarm the live telemetry plane entirely "
        "(equivalent to REPRO_TELEMETRY=0)",
    )
    p.add_argument(
        "--restore", action="store_true",
        help="restore every checkpointed tenant before serving",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds a graceful drain waits for stalled consumers",
    )
    p.add_argument(
        "--verify-checkpoints", action="store_true",
        help="replay every checkpoint under --checkpoint-dir over the "
        "process pool and report, instead of serving",
    )
    return p


def _parse_hostport(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port:
        raise ValueError(f"--tcp takes HOST:PORT, got {spec!r}")
    return host, int(port)


def cmd_serve(
    args: argparse.Namespace,
    echo: Callable[[str], None] | None = None,
    echo_err: Callable[[str], None] | None = None,
) -> int:
    """Run the serve daemon (or checkpoint verification) to completion.

    ``echo`` is the injected human-output channel (``print`` from the
    top-level CLI); ``None`` keeps the command silent.  In stdio mode
    stdout carries the JSONL protocol, so human-facing lines go through
    ``echo_err`` (stderr) instead.
    """
    import os

    stdio_mode = (
        not args.unix and not args.tcp and not args.verify_checkpoints
    )

    def _say(line: str) -> None:
        channel = echo_err if stdio_mode and echo_err is not None else echo
        if channel is not None:
            channel(line)

    checkpoint_dir: str | None = args.checkpoint_dir or os.environ.get(
        "REPRO_SERVE_CHECKPOINT_DIR"
    ) or None

    if args.verify_checkpoints:
        if checkpoint_dir is None:
            _say("error: --verify-checkpoints requires --checkpoint-dir")
            return 2
        try:
            summaries = verify_checkpoints(checkpoint_dir)
        except (ValueError, OSError) as exc:
            _say(f"error: {exc}")
            return 1
        for s in summaries:
            state = "closed" if s.get("closed") else "open"
            extra = f" span={s['span']:g}" if "span" in s else ""
            _say(
                f"{s['tenant']}: {state} ops={s['ops']} "
                f"emitted={s['emitted']} t={s['clock']:g}{extra}"
            )
        _say(f"verified {len(summaries)} checkpoint(s)")
        return 0

    try:
        listen = telemetry_addr(args.telemetry)
        daemon = ServeDaemon(
            scheduler=args.scheduler,
            queue_size_override=(
                queue_size(args.queue_size) if args.queue_size else None
            ),
            max_line_override=(
                max_line_bytes(args.max_line) if args.max_line else None
            ),
            checkpoint_interval=(
                checkpoint_every(args.checkpoint_every)
                if args.checkpoint_every is not None
                else None
            ),
            checkpoint_dir=checkpoint_dir,
            trace_dir=args.trace_dir,
            restore=args.restore,
            drain_timeout=args.drain_timeout,
            telemetry=False if args.no_telemetry else None,
            telemetry_listen=listen,
        )
    except ValueError as exc:
        _say(f"error: {exc}")
        return 2

    def _ready(address: str) -> None:
        _say(f"serving on {address}")
        if daemon.telemetry_address is not None:
            _say(f"telemetry on {daemon.telemetry_address}")

    daemon.on_ready = _ready

    async def _serve() -> None:
        if args.unix:
            await daemon.run_unix(args.unix)
        elif args.tcp:
            host, port = _parse_hostport(args.tcp)
            await daemon.run_tcp(host, port)
        else:
            await daemon.run_stdio()

    try:
        if loopwatch_enabled():
            # Runtime twin of lint rules RL017/RL018: every callback is
            # timed, orphaned tasks are captured, and a stall past the
            # threshold fails the process (see repro.serve.loopwatch).
            # The watch is created up front so its metrics registry can
            # merge into live telemetry snapshots mid-run.
            watch = LoopWatch(stall_threshold())
            daemon.loop_metrics = watch.metrics
            watched_run(_serve(), watch=watch)
            snap = watch.metrics.snapshot()
            _say(
                "loopwatch: "
                f"{snap['counters'].get('loopwatch.callbacks', 0):.0f} "
                "callback(s), "
                f"{snap['counters'].get('loopwatch.stalls', 0):.0f} "
                "stall(s), "
                f"{snap['counters'].get('loopwatch.orphans', 0):.0f} "
                "orphan(s)"
            )
        else:
            asyncio.run(_serve())
    except LoopStallError as exc:
        _say(f"loopwatch: {exc}")
        return 3
    except ValueError as exc:  # bad --tcp spec, unreadable checkpoint, ...
        _say(f"error: {exc}")
        return 2
    _say(
        f"drained: {len(daemon.tenants)} tenant(s), "
        f"{daemon.records_out} record(s) out, {daemon.errors} error(s)"
    )
    return 0
