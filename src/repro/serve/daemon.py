"""The asyncio scheduling daemon behind ``python -m repro serve``.

One process multiplexes many tenant scheduler streams.  Each tenant
gets a bounded input queue and a worker task applying its ops in order
(:class:`~repro.serve.session.TenantSession` is single-writer by
construction); each connection gets a bounded output queue and a writer
task.  The chain

    socket -> line reader -> tenant queue -> worker -> output queue
    -> writer -> socket

awaits at every hop, so a slow or stalled consumer exerts *backpressure*
all the way back to the client's TCP window instead of growing daemon
memory: no queue ever holds more than its bound, and the line reader
buffers at most one oversized line.

Shutdown is graceful by default: ``SIGTERM``/``SIGINT`` (or an in-band
``shutdown`` op) stops intake, applies every already-queued op, closes
every open session (forcing the engine's deadline backstops so every
admitted job starts — the drained traces reconcile under ``repro obs
explain --strict``), writes final checkpoints, flushes every output
queue, and exits.  A consumer that stops reading mid-drain is aborted
after ``drain_timeout`` seconds so the daemon always terminates; the
checkpoints are written *before* the output flush, so recovery never
depends on the consumer.  ``SIGKILL`` recovery rides the periodic
checkpoints instead: restart with ``--restore`` and every tenant replays
its op log, suppressing already-delivered outputs
(:mod:`repro.serve.checkpoint`).
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import threading
from pathlib import Path
from typing import Any, BinaryIO, Callable

from ..obs.live import LiveAggregator, TenantTelemetry, telemetry_enabled
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import TraceRecorder
from ..obs.records import ObsRecord
from ..schedulers.registry import scheduler_names
from .checkpoint import restore_all, save_checkpoint
from .protocol import (
    DEFAULT_SCHEDULER,
    ProtocolError,
    checkpoint_every,
    encode_record,
    error_record,
    max_line_bytes,
    parse_op,
    queue_size,
)
from .session import TenantSession
from .telemetry import TelemetryServer

__all__ = ["ServeDaemon"]

#: File name of the merged multi-tenant trace written at drain.
MERGED_TRACE_NAME = "_daemon.trace.jsonl"

#: Protocol version stamped on ``serve.ready`` records.
PROTOCOL_VERSION = 1

_READ_CHUNK = 65536


class _LineFramer:
    """Bounded line framing over a raw :class:`asyncio.StreamReader`.

    Hand-rolled instead of ``StreamReader.readline`` so an oversized
    line is *dropped* (bounded memory, connection survives) rather than
    raising into the transport: the buffer never holds more than
    ``max_line`` + one read chunk, and bytes after the offending
    newline are preserved for the next call.
    """

    def __init__(self, reader: asyncio.StreamReader, max_line: int) -> None:
        self._reader = reader
        self._max_line = max_line
        self._buf = bytearray()

    async def next_line(self) -> tuple[bytes | None, bool]:
        """``(line, oversized)``; line is ``None`` at EOF.

        ``oversized=True`` means a line longer than the bound was
        discarded (the returned line is empty and must not be parsed).
        """
        while True:
            newline = self._buf.find(b"\n")
            if newline != -1:
                line = bytes(self._buf[:newline])
                del self._buf[: newline + 1]
                if len(line) > self._max_line:
                    return b"", True
                return line, False
            if len(self._buf) > self._max_line:
                dropped = await self._drop_to_newline()
                if not dropped:
                    return None, True  # EOF inside the oversized line
                return b"", True
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                if self._buf:
                    line = bytes(self._buf)
                    self._buf.clear()
                    if len(line) > self._max_line:
                        return None, True
                    return line, False
                return None, False
            self._buf.extend(chunk)

    async def _drop_to_newline(self) -> bool:
        """Discard buffered bytes up to the next newline; False at EOF."""
        while True:
            newline = self._buf.find(b"\n")
            if newline != -1:
                del self._buf[: newline + 1]
                return True
            self._buf.clear()
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                return False
            self._buf.extend(chunk)


class _Connection:
    """One client connection: bounded output queue + writer task."""

    def __init__(self, daemon: "ServeDaemon", writer: asyncio.StreamWriter) -> None:
        self._daemon = daemon
        self._writer = writer
        self.out: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue(
            daemon.queue_size
        )
        self.dead = False
        self.task: asyncio.Task[None] = asyncio.create_task(self._write_loop())

    async def emit(self, record: dict[str, Any]) -> None:
        """Enqueue one output record (awaits when the queue is full)."""
        await self.out.put(record)

    async def _write_loop(self) -> None:
        while True:
            record = await self.out.get()
            try:
                if record is None:
                    return
                if not self.dead:
                    try:
                        self._writer.write(encode_record(record))
                        await self._writer.drain()
                        self._daemon.records_out += 1
                    except (ConnectionError, OSError):
                        # Consumer went away: keep *consuming* the queue
                        # so workers blocked in emit() never deadlock.
                        self.dead = True
            finally:
                # Balanced even if drain() is cancelled mid-write, so a
                # pending out.join() can never hang on a lost credit.
                self.out.task_done()

    def abort(self) -> None:
        """Hard-stop a stalled consumer (drain watchdog)."""
        self.dead = True
        try:
            self._writer.transport.abort()
        except (RuntimeError, OSError):  # transport already gone
            pass

    async def finish(self) -> None:
        """Flush queued records and close the transport — but keep the
        writer task consuming.  Ops already routed with this connection
        may still be applied after the client leaves (e.g. the drain's
        synthetic close), and their ``emit()`` must never block on a
        queue nobody reads.  The daemon reaps the task at shutdown via
        :meth:`flush_and_close`."""
        await self.out.join()
        await self._close_transport()

    async def flush_and_close(self) -> None:
        """Write out everything queued, stop the writer, close."""
        await self.out.put(None)
        await self.task
        await self._close_transport()

    async def _close_transport(self) -> None:
        try:
            self._writer.close()
            # The stdio writer's FlowControlMixin protocol has no close
            # waiter; everything else awaits the final flush.
            await self._writer.wait_closed()
        except (ConnectionError, OSError, NotImplementedError):
            pass


class _TenantState:
    """One tenant's bounded op queue, worker task, and session."""

    def __init__(
        self,
        daemon: "ServeDaemon",
        name: str,
        session: TenantSession | None = None,
    ) -> None:
        self.name = name
        self.session = session
        self.queue: asyncio.Queue[
            tuple[dict[str, Any], _Connection | None] | None
        ] = asyncio.Queue(daemon.queue_size)
        self.last_conn: _Connection | None = None
        self.task: asyncio.Task[None] = asyncio.create_task(
            daemon._tenant_loop(self)
        )


class ServeDaemon:
    """The streaming scheduling daemon (see module docstring).

    Parameters
    ----------
    scheduler:
        Default scheduler for implicitly opened tenants.
    queue_size / max_line / checkpoint_interval:
        Override the ``REPRO_SERVE_*`` environment knobs.
    checkpoint_dir:
        Directory for per-tenant checkpoints (no checkpointing when
        ``None``).
    trace_dir:
        Directory closed tenants write their obs traces into (no traces
        when ``None``).
    restore:
        Restore every checkpointed tenant from ``checkpoint_dir`` before
        accepting connections.
    drain_timeout:
        Seconds a graceful drain waits for consumers before aborting
        stalled connections.
    telemetry:
        Arm the live per-tenant telemetry plane (``None`` defers to the
        ``REPRO_TELEMETRY`` knob, which defaults to on).
    telemetry_listen:
        ``(host, port)`` for the read-only telemetry listener
        (:class:`~repro.serve.telemetry.TelemetryServer`); ``None``
        means no listener.
    """

    def __init__(
        self,
        *,
        scheduler: str = DEFAULT_SCHEDULER,
        queue_size_override: int | None = None,
        max_line_override: int | None = None,
        checkpoint_interval: int | None = None,
        checkpoint_dir: "str | Path | None" = None,
        trace_dir: "str | Path | None" = None,
        restore: bool = False,
        drain_timeout: float = 30.0,
        telemetry: bool | None = None,
        telemetry_listen: tuple[str, int] | None = None,
    ) -> None:
        self.default_scheduler = scheduler
        self.queue_size = queue_size(queue_size_override)
        self.max_line = max_line_bytes(max_line_override)
        self.checkpoint_interval = checkpoint_every(checkpoint_interval)
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.restore = restore
        self.drain_timeout = drain_timeout
        #: Called with the bound address once the daemon is listening
        #: (the CLI prints it; the daemon itself never writes to stdio).
        self.on_ready: Callable[[str], None] | None = None

        armed = telemetry_enabled() if telemetry is None else telemetry
        #: Live telemetry plane (``None`` when disarmed — sessions then
        #: skip the per-record feed entirely).
        self.live: LiveAggregator | None = LiveAggregator() if armed else None
        self.telemetry_listen = telemetry_listen
        self.telemetry_server: TelemetryServer | None = None
        self.telemetry_address: str | None = None
        #: Loopwatch metrics registry merged into telemetry snapshots
        #: (the CLI sets this when ``REPRO_LOOPWATCH`` is armed).
        self.loop_metrics: MetricsRegistry | None = None

        self.tenants: dict[str, _TenantState] = {}
        self.connections: set[_Connection] = set()
        self.draining = False
        self.lines_in = 0
        self.records_out = 0
        self.errors = 0
        self._reader_tasks: set["asyncio.Task[Any]"] = set()
        self._shutdown_event: asyncio.Event | None = None
        self._signals: list[signal.Signals] = []

    # ------------------------------------------------------------ entrypoints
    async def run_unix(self, path: "str | Path") -> None:
        """Serve on a Unix domain socket until drained."""
        server = await asyncio.start_unix_server(
            self._on_connection, path=str(path), limit=self._reader_limit()
        )
        await self._run_with_server(server, f"unix:{path}")

    async def run_tcp(self, host: str, port: int) -> None:
        """Serve on a TCP socket until drained."""
        server = await asyncio.start_server(
            self._on_connection, host, port, limit=self._reader_limit()
        )
        sockets = server.sockets
        bound = sockets[0].getsockname() if sockets else (host, port)
        await self._run_with_server(server, f"tcp:{bound[0]}:{bound[1]}")

    async def run_stdio(self) -> None:
        """Serve one session over stdin/stdout until EOF or shutdown."""
        await self._prepare()
        reader, writer, finalize = await _stdio_streams(self._reader_limit())
        if self.on_ready is not None:
            self.on_ready("stdio")
        self._install_signal_handlers()
        try:
            conn_task = asyncio.create_task(self._on_connection(reader, writer))
            event = self._shutdown_event
            assert event is not None
            wait_task = asyncio.create_task(event.wait())
            await asyncio.wait(
                {conn_task, wait_task}, return_when=asyncio.FIRST_COMPLETED
            )
            self.request_shutdown()  # EOF and SIGTERM drain identically
            await wait_task
            await self._drain()
            await asyncio.gather(conn_task, return_exceptions=True)
        finally:
            self._remove_signal_handlers()
            finalize()  # stdout pump (file-redirected stdio) must land

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe)."""
        if not self.draining:
            self.draining = True
            if self._shutdown_event is not None:
                self._shutdown_event.set()

    # -------------------------------------------------------------- plumbing
    def _reader_limit(self) -> int:
        """Raw-stream buffer bound: intake memory stays O(max_line), not
        asyncio's default 64KB, so a stalled chain stops reading bytes."""
        return max(self.max_line, 4096)

    async def _prepare(self) -> None:
        self._shutdown_event = asyncio.Event()
        if self.restore and self.checkpoint_dir is not None:
            # Restore is file I/O plus a full op-log replay per tenant:
            # run it off the loop thread so a big checkpoint directory
            # cannot stall the first connection (RL017).
            restored = await asyncio.to_thread(restore_all, self.checkpoint_dir)
            for name, session in restored.items():
                if self.live is not None:
                    # The replay ran without telemetry; backfill it from
                    # the regenerated records, then arm the live feed.
                    telemetry = self.live.tenant(name)
                    for record in session.recorder.records:
                        telemetry.observe(record)
                    session.telemetry = telemetry
                self.tenants[name] = _TenantState(self, name, session=session)
        if self.live is not None and self.telemetry_listen is not None:
            self.telemetry_server = TelemetryServer(self)
            self.telemetry_address = await self.telemetry_server.start(
                *self.telemetry_listen
            )

    async def _run_with_server(
        self, server: asyncio.AbstractServer, address: str
    ) -> None:
        await self._prepare()
        if self.on_ready is not None:
            self.on_ready(address)
        self._install_signal_handlers()
        try:
            async with server:
                event = self._shutdown_event
                assert event is not None
                await event.wait()
                server.close()
                await server.wait_closed()
                await self._drain()
        finally:
            self._remove_signal_handlers()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                continue  # non-main thread / unsupported platform
            self._signals.append(sig)

    def _remove_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in self._signals:
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        self._signals.clear()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(self, writer)
        self.connections.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
        try:
            await conn.emit(
                {
                    "kind": "serve.ready",
                    "version": PROTOCOL_VERSION,
                    "default_scheduler": self.default_scheduler,
                    "schedulers": scheduler_names(),
                    "tenants": sorted(self.tenants),
                }
            )
            lines = _LineFramer(reader, self.max_line)
            while not self.draining:
                line, oversized = await lines.next_line()
                if oversized:
                    self.errors += 1
                    await conn.emit(
                        error_record(
                            f"input line exceeds {self.max_line} bytes — "
                            "dropped",
                            oversized=True,
                        )
                    )
                if line is None:
                    break
                if oversized or not line.strip():
                    continue
                self.lines_in += 1
                try:
                    op = parse_op(line)
                except ProtocolError as exc:
                    self.errors += 1
                    await conn.emit(error_record(str(exc), tenant=exc.tenant))
                    continue
                await self._route(op, conn)
        except asyncio.CancelledError:
            if not self.draining:
                # External cancellation (loop teardown, task kill) — NOT
                # a drain.  The consumer may be stalled, so never await
                # here: hard-stop the connection instead of flushing.
                self.connections.discard(conn)
                conn.abort()
                conn.task.cancel()
            # On drain: intake is cancelled, outputs flushed by _drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-read
        finally:
            if task is not None:
                self._reader_tasks.discard(task)
            if not self.draining and conn in self.connections:
                # Let in-flight ops routed from this connection finish
                # (their outputs land on conn.out), then flush.  The
                # connection stays registered: its writer task keeps
                # consuming until the daemon-level drain reaps it.
                for state in list(self.tenants.values()):
                    if state.last_conn is conn:
                        await state.queue.join()
                await conn.finish()

    async def _route(self, op: dict[str, Any], conn: _Connection) -> None:
        kind = op["op"]
        if kind == "shutdown":
            await conn.emit({"kind": "serve.bye", "tenants": len(self.tenants)})
            self.request_shutdown()
            return
        if kind == "stats":
            await conn.emit(self._stats_record())
            return
        tenant = op.get("tenant")
        if tenant is None:  # tenant-less checkpoint: fan out to every tenant
            # No session check here: sessions are created by the worker,
            # so a just-routed `open` may not have run yet.  The queue is
            # FIFO per tenant — by the time the worker reaches this op,
            # every earlier op (including the open) has been applied.
            for state in list(self.tenants.values()):
                state.last_conn = conn
                await state.queue.put((dict(op, tenant=state.name), conn))
            return
        state = self.tenants.get(tenant)
        if state is None:
            state = _TenantState(self, tenant)
            self.tenants[tenant] = state
        state.last_conn = conn
        await state.queue.put((op, conn))

    async def _tenant_loop(self, state: _TenantState) -> None:
        while True:
            item = await state.queue.get()
            if item is None:
                state.queue.task_done()
                return
            op, conn = item
            try:
                await self._apply_op(state, op, conn)
            finally:
                state.queue.task_done()

    async def _apply_op(
        self,
        state: _TenantState,
        op: dict[str, Any],
        conn: _Connection | None,
    ) -> None:
        try:
            outs = await self._mutate(state, op)
        except Exception as exc:  # daemon survives any single bad op
            self.errors += 1
            outs = [
                error_record(
                    str(exc) or type(exc).__name__,
                    tenant=state.name,
                    op=str(op.get("op")),
                )
            ]
        if conn is not None:
            for record in outs:
                await conn.emit(record)

    async def _mutate(
        self, state: _TenantState, op: dict[str, Any]
    ) -> list[dict[str, Any]]:
        """Apply one op to a tenant (worker task only: single-writer).

        Session mutation itself is pure CPU and stays on the loop, but
        checkpoint/trace persistence is real file I/O (atomic-rename
        JSONL dumps) and runs in a worker thread (RL017).  Single-writer
        still holds: the tenant worker awaits this coroutine before
        taking the next op, so the session is never touched by two
        threads at once.
        """
        kind = op["op"]
        if kind == "open":
            if state.session is not None:
                raise ProtocolError(
                    f"tenant {state.name!r} is already open", tenant=state.name
                )
            scheduler = op.get("scheduler", self.default_scheduler)
            if not isinstance(scheduler, str):
                raise ProtocolError(
                    "open 'scheduler' must be a string", tenant=state.name
                )
            params = op.get("params")
            if params is not None and not isinstance(params, dict):
                raise ProtocolError(
                    "open 'params' must be an object", tenant=state.name
                )
            state.session = TenantSession(
                state.name,
                scheduler=scheduler,
                params=params,
                telemetry=self._tenant_telemetry(state.name),
            )
            return state.session.hello()
        if kind == "checkpoint":
            if state.session is None:
                raise ProtocolError(
                    f"tenant {state.name!r} is not open", tenant=state.name
                )
            if self.checkpoint_dir is None:
                raise ProtocolError(
                    "no checkpoint directory configured", tenant=state.name
                )
            path = await asyncio.to_thread(
                save_checkpoint, state.session, self.checkpoint_dir
            )
            return [
                {
                    "kind": "serve.checkpoint",
                    "tenant": state.name,
                    "path": path,
                    "ops": len(state.session.input_log),
                    "emitted": state.session.emitted,
                }
            ]
        outs: list[dict[str, Any]] = []
        session = state.session
        if session is None:
            if kind != "job":
                raise ProtocolError(
                    f"tenant {state.name!r} is not open", tenant=state.name
                )
            session = TenantSession(
                state.name,
                scheduler=self.default_scheduler,
                telemetry=self._tenant_telemetry(state.name),
            )
            state.session = session
            outs.extend(session.hello())
        outs.extend(session.apply(op))
        if kind == "close":
            if self.trace_dir is not None:
                trace_path = await asyncio.to_thread(
                    session.write_trace, self.trace_dir
                )
                outs.append(
                    {
                        "kind": "serve.trace",
                        "tenant": state.name,
                        "path": trace_path,
                    }
                )
            if self.checkpoint_dir is not None:
                await asyncio.to_thread(
                    save_checkpoint, session, self.checkpoint_dir
                )
        elif (
            self.checkpoint_dir is not None
            and self.checkpoint_interval > 0
            and session.ops_since_checkpoint >= self.checkpoint_interval
        ):
            await asyncio.to_thread(
                save_checkpoint, session, self.checkpoint_dir
            )
        return outs

    def _tenant_telemetry(self, name: str) -> TenantTelemetry | None:
        return self.live.tenant(name) if self.live is not None else None

    def telemetry_snapshot(self) -> dict[str, Any]:
        """The full live-telemetry snapshot (``stats`` op / listener).

        Per-tenant aggregates from the :class:`LiveAggregator`, daemon
        intake counters and queue depths, and — when the CLI armed the
        instrumented loop — the loopwatch stall/pending metrics.
        """
        if self.live is None:
            return {"kind": "telemetry", "enabled": False, "tenants": {}}
        daemon_section: dict[str, Any] = {
            "lines_in": self.lines_in,
            "records_out": self.records_out,
            "errors": self.errors,
            "draining": self.draining,
            "queued": {
                name: state.queue.qsize()
                for name, state in sorted(self.tenants.items())
            },
        }
        loop_metrics = self.loop_metrics
        return self.live.snapshot(
            daemon=daemon_section,
            loopwatch=(
                loop_metrics.snapshot() if loop_metrics is not None else None
            ),
        )

    def _stats_record(self) -> dict[str, Any]:
        tenants: dict[str, Any] = {}
        for name, state in sorted(self.tenants.items()):
            entry: dict[str, Any] = {"queued": state.queue.qsize()}
            session = state.session
            if session is not None:
                entry["clock"] = session.clock
                entry["ops"] = len(session.input_log)
                entry["emitted"] = session.emitted
                entry["closed"] = session.closed
                if session.failed is not None:
                    entry["failed"] = session.failed
            tenants[name] = entry
        record: dict[str, Any] = {
            "kind": "serve.stats",
            "lines_in": self.lines_in,
            "records_out": self.records_out,
            "errors": self.errors,
            "draining": self.draining,
            "tenants": tenants,
        }
        if self.live is not None:
            record["telemetry"] = self.telemetry_snapshot()
        else:
            record["telemetry"] = {
                "kind": "telemetry",
                "enabled": False,
                "tenants": {},
            }
        return record

    # ----------------------------------------------------------------- drain
    async def _drain(self) -> None:
        """Graceful shutdown: finish queued work, close, checkpoint, flush."""
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        watchdog = asyncio.create_task(self._drain_watchdog())
        try:
            # Apply everything already queued.
            for state in list(self.tenants.values()):
                await state.queue.join()
            # Close every live session: the engine's deadline backstops
            # start all remaining jobs, so traces reconcile strictly.
            for state in list(self.tenants.values()):
                session = state.session
                if (
                    session is not None
                    and not session.closed
                    and session.failed is None
                ):
                    await state.queue.put(
                        (
                            {"op": "close", "tenant": state.name,
                             "reason": "drain"},
                            state.last_conn,
                        )
                    )
            for state in list(self.tenants.values()):
                await state.queue.join()
            # Failed sessions still checkpoint: their op log restores to
            # the last successful op.
            if self.checkpoint_dir is not None:
                for state in list(self.tenants.values()):
                    if (
                        state.session is not None
                        and state.session.failed is not None
                    ):
                        await asyncio.to_thread(
                            save_checkpoint, state.session, self.checkpoint_dir
                        )
            # Stop workers.
            for state in list(self.tenants.values()):
                await state.queue.put(None)
            if self.tenants:
                await asyncio.gather(
                    *(state.task for state in self.tenants.values()),
                    return_exceptions=True,
                )
            # The merged multi-tenant trace (sessions are quiescent now:
            # workers stopped above) — what `repro obs summarize` splits
            # back into per-tenant breakdowns.
            if self.trace_dir is not None:
                await asyncio.to_thread(self._write_merged_trace)
            # Flush and close every connection (checkpoints are already
            # on disk, so a dead consumer costs only its own records).
            for conn in list(self.connections):
                await conn.flush_and_close()
            self.connections.clear()
        finally:
            watchdog.cancel()
            if self.telemetry_server is not None:
                # Shielded: a cancelled drain must still unbind the
                # telemetry listener, not abandon the socket (RL020).
                await asyncio.shield(self.telemetry_server.close())
                self.telemetry_server = None

    def _write_merged_trace(self) -> str | None:
        """Write every session's records as one tenant-tagged trace.

        Each session's recorder has its own wall-clock epoch; records
        are shifted onto the earliest epoch and re-sorted so the merged
        timeline is globally consistent.  Metrics registries merge
        additively.  Runs in a worker thread (file I/O, RL017).
        """
        sessions = [
            state.session
            for _, state in sorted(self.tenants.items())
            if state.session is not None
        ]
        if not sessions or self.trace_dir is None:
            return None
        total = sum(len(s.recorder.records) for s in sessions)
        merged = TraceRecorder(max_records=total + 1)
        base = min(s.recorder.epoch for s in sessions)
        rows: list[ObsRecord] = []
        for session in sessions:
            recorder = session.recorder
            shift = recorder.epoch - base
            for record in recorder.records:
                rows.append(
                    ObsRecord(
                        record.ts + shift, record.kind, record.name,
                        record.attrs,
                    )
                )
            merged.merge_metrics(recorder.metrics_snapshot())
        rows.sort(key=lambda record: record.ts)
        merged.records = rows
        merged.epoch = base
        return merged.write_jsonl(
            self.trace_dir / MERGED_TRACE_NAME,
            command="serve",
            merged=True,
            tenants=[s.tenant for s in sessions],
        )

    async def _drain_watchdog(self) -> None:
        try:
            await asyncio.sleep(self.drain_timeout)
        except asyncio.CancelledError:
            return
        for conn in list(self.connections):
            conn.abort()


async def _stdio_streams(
    limit: int,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter, Callable[[], None]]:
    """Wrap this process's stdin/stdout as an asyncio stream pair.

    asyncio's pipe transports only accept pipes, sockets and character
    devices — ``repro serve --stdio < jobs.jsonl > out.jsonl`` hands us
    regular files, which epoll cannot watch.  Those ends are bridged
    through a real :func:`os.pipe` with a pump thread on the far side;
    the kernel pipe buffer supplies the flow control the transport
    would have.  Returns a finalizer that must run after the writer is
    closed: it joins the stdout pump so the tail of the stream reaches
    the file before the process exits.
    """
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader(limit=limit)
    protocol = asyncio.StreamReaderProtocol(reader)
    try:
        await loop.connect_read_pipe(lambda: protocol, sys.stdin)
    except (ValueError, OSError):
        read_fd, _ = _pump_file_to_pipe(sys.stdin.buffer)
        await loop.connect_read_pipe(lambda: protocol, os.fdopen(read_fd, "rb"))
    out_pump: threading.Thread | None = None
    try:
        transport, flow = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
    except (ValueError, OSError):
        pipe_end, out_pump = _pump_pipe_to_file(sys.stdout.buffer)
        transport, flow = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, pipe_end
        )
    writer = asyncio.StreamWriter(transport, flow, reader, loop)

    def finalize() -> None:
        if out_pump is not None:
            out_pump.join(timeout=10.0)

    return reader, writer, finalize


def _pump_file_to_pipe(src: BinaryIO) -> tuple[int, threading.Thread]:
    """Copy ``src`` into a fresh pipe from a thread; return the read end."""
    read_fd, write_fd = os.pipe()

    def pump() -> None:
        try:
            while True:
                chunk = src.read(_READ_CHUNK)
                if not chunk:
                    break
                view = memoryview(chunk)
                while view:
                    view = view[os.write(write_fd, view) :]
        except (BrokenPipeError, OSError, ValueError):
            pass  # daemon stopped reading mid-file — drop the rest
        finally:
            os.close(write_fd)

    thread = threading.Thread(target=pump, daemon=True, name="repro-serve-stdin")
    thread.start()
    return read_fd, thread


def _pump_pipe_to_file(dst: BinaryIO) -> tuple[BinaryIO, threading.Thread]:
    """Drain a fresh pipe into ``dst`` from a thread; return the write end."""
    read_fd, write_fd = os.pipe()

    def pump() -> None:
        try:
            while True:
                chunk = os.read(read_fd, _READ_CHUNK)
                if not chunk:
                    break
                dst.write(chunk)
                dst.flush()
        except (BrokenPipeError, OSError, ValueError):
            pass  # output file went away — nothing left to preserve
        finally:
            os.close(read_fd)

    thread = threading.Thread(target=pump, daemon=True, name="repro-serve-stdout")
    thread.start()
    return os.fdopen(write_fd, "wb"), thread
