"""``REPRO_LOOPWATCH=1`` — the instrumented event loop (RL017/RL018 twin).

The async-safety lint rules prove event-loop hygiene *statically*:
RL017 that no loop-reachable coroutine's sync call closure blocks,
RL018 that no ``create_task`` handle is discarded.  This module is the
*runtime* half of that certificate, in the same mold as the
``REPRO_STRICT`` clairvoyance oracle (RL001) and the ``REPRO_PARITY``
lockstep core diff (RL013):

* :class:`InstrumentedEventLoop` wraps every scheduled callback —
  including every coroutine step, since tasks advance via
  ``call_soon`` — with a monotonic timer.  A callback that holds the
  loop past the stall threshold is RL017's runtime signature: during
  those milliseconds *every* tenant queue, drain watchdog, and client
  socket is frozen.
* its ``call_exception_handler`` intercepts asyncio's two orphan
  diagnostics (``Task exception was never retrieved`` / ``Task was
  destroyed but it is pending``) — RL018's runtime signature, made
  deterministic by the ``gc.collect()`` in :func:`watched_run` (a
  dropped task handle is refcount-collected immediately under
  CPython).

Measurements land in a :class:`repro.obs.metrics.MetricsRegistry`
(``loopwatch.callbacks`` counter, ``loopwatch.callback_seconds``
histogram, ``loopwatch.stalls`` / ``loopwatch.orphans`` counters, a
``loopwatch.pending_tasks`` census gauge), so loop health aggregates
exactly like every other observation in the repo.  Past the threshold,
:meth:`LoopWatch.raise_if_unsafe` raises :class:`LoopStallError`
naming the worst offender.

The static and runtime halves are cross-validated **both directions**
on the shared ``tests/data/lint_fixtures/async_*_pkg`` packages: every
fixture RL017/RL018 flags must stall (or orphan) under the watch, and
every clean twin must run quiet — see ``tests/test_serve_loopwatch.py``.

Knobs: ``REPRO_LOOPWATCH`` enables the loop in ``repro serve``
(:mod:`repro.serve.cli`); ``REPRO_LOOPWATCH_THRESHOLD`` overrides the
stall threshold in seconds (default ``0.25``).
"""

from __future__ import annotations

import asyncio
import gc
import os
import time
from typing import Any, Callable, Coroutine, TypeVar

from ..obs.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_STALL_THRESHOLD",
    "InstrumentedEventLoop",
    "LoopStallError",
    "LoopWatch",
    "loopwatch_enabled",
    "stall_threshold",
    "watched_run",
]

_T = TypeVar("_T")

#: Seconds one callback may hold the loop before it counts as a stall.
DEFAULT_STALL_THRESHOLD = 0.25

#: Histogram bucket edges for per-callback hold times (seconds).
_STALL_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0)

#: Worst offenders kept verbatim (the counters see everything).
_MAX_KEPT = 32


def loopwatch_enabled() -> bool:
    """Whether ``REPRO_LOOPWATCH`` asks for the instrumented loop."""
    raw = os.environ.get("REPRO_LOOPWATCH", "").strip().lower()
    return raw not in ("", "0", "false", "off")


def stall_threshold() -> float:
    """The stall threshold in seconds (``REPRO_LOOPWATCH_THRESHOLD``)."""
    raw = os.environ.get("REPRO_LOOPWATCH_THRESHOLD", "").strip()
    if not raw:
        return DEFAULT_STALL_THRESHOLD
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_STALL_THRESHOLD
    return value if value > 0.0 else DEFAULT_STALL_THRESHOLD


class LoopStallError(RuntimeError):
    """The instrumented loop observed a stall or an orphaned task."""


def _label(callback: Callable[..., Any]) -> str:
    """A stable human label for a scheduled callback.

    Task steps arrive as bound methods (or C ``TaskStepMethWrapper``s)
    whose ``__self__`` is the task — label those with the coroutine's
    qualname, which is what the static rules talk about too.
    """
    owner = getattr(callback, "__self__", None)
    if isinstance(owner, asyncio.Task):
        coro = owner.get_coro()
        qual = getattr(coro, "__qualname__", None)
        if qual:
            return str(qual)
    qual = getattr(callback, "__qualname__", None)
    if qual:
        return str(qual)
    return type(callback).__name__


class LoopWatch:
    """Accumulated loop-health observations for one watched run."""

    def __init__(self, threshold: float = DEFAULT_STALL_THRESHOLD) -> None:
        self.threshold = threshold
        self.metrics = MetricsRegistry()
        #: worst (label, seconds) holds past the threshold
        self.stalls: list[tuple[str, float]] = []
        #: labels of tasks whose handle was dropped (never awaited)
        self.orphans: list[str] = []

    # ------------------------------------------------------------ recording
    def observe_callback(self, label: str, seconds: float) -> None:
        self.metrics.counter_add("loopwatch.callbacks")
        self.metrics.histogram_observe(
            "loopwatch.callback_seconds", seconds, edges=_STALL_BUCKETS
        )
        if seconds >= self.threshold:
            self.metrics.counter_add("loopwatch.stalls")
            self.stalls.append((label, seconds))
            if len(self.stalls) > _MAX_KEPT:
                self.stalls.sort(key=lambda item: -item[1])
                del self.stalls[_MAX_KEPT:]

    def observe_orphan(self, label: str) -> None:
        self.metrics.counter_add("loopwatch.orphans")
        if len(self.orphans) < _MAX_KEPT:
            self.orphans.append(label)

    def observe_pending(self, count: int) -> None:
        self.metrics.gauge_set("loopwatch.pending_tasks", float(count))

    # ------------------------------------------------------------ verdicts
    def raise_if_unsafe(self) -> None:
        """Raise :class:`LoopStallError` if the run violated loop hygiene."""
        if self.stalls:
            label, seconds = max(self.stalls, key=lambda item: item[1])
            raise LoopStallError(
                f"{len(self.stalls)} callback(s) held the event loop past "
                f"{self.threshold:.3f}s (RL017's runtime signature); worst: "
                f"{label} for {seconds:.3f}s — move the blocking work into "
                "asyncio.to_thread/run_in_executor"
            )
        if self.orphans:
            raise LoopStallError(
                f"{len(self.orphans)} task(s) orphaned — handle dropped, "
                "exception never retrieved (RL018's runtime signature): "
                + ", ".join(self.orphans)
            )


class InstrumentedEventLoop(asyncio.SelectorEventLoop):
    """A selector loop that times every callback it runs.

    Only ``call_soon`` / ``call_soon_threadsafe`` / ``call_at`` are
    overridden — ``call_later`` delegates to ``call_at`` in the base
    class, and the wrapper marks itself so a double path can never
    double-count a callback.
    """

    def __init__(self, watch: LoopWatch) -> None:
        super().__init__()
        self.watch = watch

    def _timed(self, callback: Callable[..., Any]) -> Callable[..., Any]:
        if getattr(callback, "_loopwatch_wrapped", False):
            return callback
        watch = self.watch

        def timed(*args: Any) -> Any:
            start = time.perf_counter()
            try:
                return callback(*args)
            finally:
                watch.observe_callback(
                    _label(callback), time.perf_counter() - start
                )

        timed._loopwatch_wrapped = True  # type: ignore[attr-defined]
        return timed

    def call_soon(self, callback, *args, context=None):  # type: ignore[no-untyped-def]
        return super().call_soon(self._timed(callback), *args, context=context)

    def call_soon_threadsafe(self, callback, *args, context=None):  # type: ignore[no-untyped-def]
        return super().call_soon_threadsafe(
            self._timed(callback), *args, context=context
        )

    def call_at(self, when, callback, *args, context=None):  # type: ignore[no-untyped-def]
        return super().call_at(
            when, self._timed(callback), *args, context=context
        )

    def call_exception_handler(self, context: dict[str, Any]) -> None:
        """Capture asyncio's orphaned-task diagnostics as observations.

        ``Task.__del__`` routes both "exception was never retrieved"
        and "destroyed but it is pending" through here; each is the
        runtime shadow of a discarded ``create_task`` handle (RL018).
        Recorded orphans are swallowed (the verdict surfaces through
        :meth:`LoopWatch.raise_if_unsafe`), everything else falls
        through to the default handler.
        """
        message = str(context.get("message", ""))
        if (
            "exception was never retrieved" in message
            or "destroyed but it is pending" in message
        ):
            victim = context.get("task") or context.get("future")
            label = message
            if victim is not None and isinstance(victim, asyncio.Task):
                coro = victim.get_coro()
                label = getattr(coro, "__qualname__", None) or message
            self.watch.observe_orphan(str(label))
            return
        super().call_exception_handler(context)


def _cancel_pending(loop: asyncio.AbstractEventLoop) -> None:
    """The teardown half of ``asyncio.run``: cancel and reap leftovers."""
    pending = asyncio.all_tasks(loop)
    if not pending:
        return
    for task in pending:
        task.cancel()
    loop.run_until_complete(
        asyncio.gather(*pending, return_exceptions=True)
    )


def watched_run(
    main: Coroutine[Any, Any, _T],
    *,
    threshold: float | None = None,
    check: bool = True,
    watch: LoopWatch | None = None,
) -> tuple[_T, LoopWatch]:
    """``asyncio.run`` on an instrumented loop; returns (result, watch).

    After the main coroutine returns, the still-pending task census is
    recorded and a ``gc.collect()`` forces any dropped task handles to
    surface their orphan diagnostics deterministically.  With
    ``check=True`` a stall or orphan raises :class:`LoopStallError`;
    pass ``check=False`` to inspect the watch yourself (the tests'
    cross-validation path).  A caller-supplied ``watch`` lets the
    daemon's telemetry snapshot read the loop-health metrics *while*
    the run is still in flight (``threshold`` is then ignored).
    """
    if watch is None:
        watch = LoopWatch(stall_threshold() if threshold is None else threshold)
    loop = InstrumentedEventLoop(watch)
    try:
        asyncio.set_event_loop(loop)
        result = loop.run_until_complete(main)
        watch.observe_pending(
            sum(1 for t in asyncio.all_tasks(loop) if not t.done())
        )
        gc.collect()  # deterministic orphan delivery (CPython refcounts)
        if check:
            watch.raise_if_unsafe()
        return result, watch
    finally:
        try:
            _cancel_pending(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
        finally:
            asyncio.set_event_loop(None)
            loop.close()
