"""Read-only telemetry listener: Prometheus text + JSON snapshots.

A deliberately tiny HTTP/1.0 responder attached to the daemon's event
loop.  It exists so operators (and the ``repro obs top`` dashboard) can
*watch* a running daemon without speaking the JSONL protocol or holding
a scheduling connection open:

``GET /metrics``
    Prometheus text exposition
    (:func:`repro.obs.live.render_prometheus`).
``GET /snapshot`` (also ``/snapshot.json`` or ``/``)
    The full :meth:`repro.obs.live.LiveAggregator.snapshot` JSON —
    per-tenant span / OPT-LB / ratio / queue depth / decision mix,
    daemon intake counters, and loopwatch metrics when armed.
``GET /healthz``
    ``ok`` (liveness probe).

The listener is strictly read-only — it can never mutate tenant state —
and strictly bounded: the stream reader is capped at ``_LIMIT`` bytes,
at most ``_MAX_HEADER_LINES`` header lines are drained, and each
request gets ``_REQUEST_TIMEOUT`` seconds before the connection is
dropped.  Responses close the connection (``Connection: close``); one
scrape is one connection, exactly like Prometheus expects.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from ..obs.live import render_prometheus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .daemon import ServeDaemon

__all__ = ["TelemetryServer"]

#: StreamReader buffer bound — request lines are tiny (RL019: explicit).
_LIMIT = 4096
#: Header lines drained before the request is answered regardless.
_MAX_HEADER_LINES = 64
#: Seconds a client gets to deliver its request line and headers.
_REQUEST_TIMEOUT = 5.0


class TelemetryServer:
    """The daemon's read-only telemetry endpoint (see module docstring)."""

    def __init__(self, daemon: "ServeDaemon") -> None:
        self._daemon = daemon
        self._server: asyncio.AbstractServer | None = None
        self.address: str | None = None

    async def start(self, host: str, port: int) -> str:
        """Bind and listen; returns the bound ``tcp:host:port`` address."""
        self._server = await asyncio.start_server(
            self._on_connection, host, port, limit=_LIMIT
        )
        sockets = self._server.sockets
        bound = sockets[0].getsockname() if sockets else (host, port)
        self.address = f"tcp:{bound[0]}:{bound[1]}"
        return self.address

    async def close(self) -> None:
        """Stop listening (in-flight responses finish on their own)."""
        server = self._server
        if server is None:
            return
        self._server = None
        server.close()
        await server.wait_closed()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=_REQUEST_TIMEOUT
            )
            parts = request.decode("latin-1", "replace").split()
            method = parts[0].upper() if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            for _ in range(_MAX_HEADER_LINES):
                line = await asyncio.wait_for(
                    reader.readline(), timeout=_REQUEST_TIMEOUT
                )
                if not line.rstrip(b"\r\n"):
                    break
            status, content_type, body = self._respond(method, path)
            head = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (asyncio.TimeoutError, ValueError, ConnectionError, OSError):
            pass  # slow, oversized, or vanished client — drop it
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _respond(
        self, method: str, path: str
    ) -> tuple[str, str, bytes]:
        """Route one request to ``(status, content type, body)``."""
        if method != "GET":
            return "405 Method Not Allowed", "text/plain", b"read-only\n"
        path = path.partition("?")[0]
        if path == "/metrics":
            text = render_prometheus(self._daemon.telemetry_snapshot())
            return "200 OK", "text/plain; version=0.0.4", text.encode()
        if path in ("/", "/snapshot", "/snapshot.json"):
            payload = json.dumps(self._daemon.telemetry_snapshot(), indent=2)
            return "200 OK", "application/json", payload.encode() + b"\n"
        if path == "/healthz":
            return "200 OK", "text/plain", b"ok\n"
        return "404 Not Found", "text/plain", b"not found\n"
