"""Event-sourced checkpoints for serve sessions.

A checkpoint is **not** pickled engine state.  It is the session's
input-op log plus its emitted-output counter, written through the same
versioned, atomic JSONL sink the observability traces use
(:func:`repro.obs.jsonl.dump_jsonl`): a meta header, then one ``op`` row
per logged input op.  Restoring replays the log through a fresh
deterministic session, suppressing the first ``emitted`` regenerated
output records — so a killed daemon resumes without re-admitting started
jobs and the records it emits after restore are bit-identical to the
ones the uninterrupted daemon would have emitted.

Layout: ``<checkpoint-dir>/<tenant>.ckpt.jsonl``, one file per tenant,
atomically replaced on every save (a crash mid-checkpoint leaves the
previous checkpoint intact, never a torn file).

Verification fans out over the process pool: :func:`verify_checkpoints`
replays every checkpoint in parallel via
:class:`repro.perf.parallel.ParallelRunner` (the replay body is a
top-level picklable function), so a directory of hundreds of tenant
checkpoints validates at full core count.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..obs.jsonl import dump_jsonl, scan_jsonl
from ..perf.parallel import ParallelRunner, get_default_runner
from .session import TenantSession

__all__ = [
    "CHECKPOINT_SUFFIX",
    "checkpoint_path",
    "list_checkpoints",
    "load_checkpoint",
    "replay_summary",
    "restore_all",
    "restore_session",
    "save_checkpoint",
    "verify_checkpoints",
]

CHECKPOINT_SUFFIX = ".ckpt.jsonl"
_TOOL = "repro.serve"


def checkpoint_path(directory: "str | Path", tenant: str) -> Path:
    """Where ``tenant``'s checkpoint lives under ``directory``."""
    return Path(directory) / f"{tenant}{CHECKPOINT_SUFFIX}"


def save_checkpoint(session: TenantSession, directory: "str | Path") -> str:
    """Atomically write ``session``'s checkpoint; returns the path."""
    meta, rows = session.checkpoint_state()
    path = checkpoint_path(directory, session.tenant)
    path.parent.mkdir(parents=True, exist_ok=True)
    result = dump_jsonl(path, rows, tool=_TOOL, **meta)
    session.ops_since_checkpoint = 0
    return result


def load_checkpoint(
    path: "str | Path",
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a checkpoint file back as ``(meta, ops)``.

    Raises ``ValueError`` on version/tool mismatches or malformed rows
    (the same contract as the trace reader — both ride
    :func:`repro.obs.jsonl.scan_jsonl`).
    """
    meta, rows = scan_jsonl(path)
    if meta.get("tool") != _TOOL:
        raise ValueError(
            f"{path}: not a serve checkpoint (tool={meta.get('tool')!r})"
        )
    ops: list[dict[str, Any]] = []
    for row in rows:
        if row.get("kind") != "op" or not isinstance(row.get("data"), dict):
            raise ValueError(f"{path}: malformed checkpoint row {row!r}")
        ops.append(dict(row["data"]))
    declared = meta.get("ops")
    if isinstance(declared, int) and declared != len(ops):
        raise ValueError(
            f"{path}: truncated checkpoint (meta declares {declared} ops, "
            f"file holds {len(ops)})"
        )
    return meta, ops


def restore_session(path: "str | Path") -> TenantSession:
    """Rebuild one tenant session from its checkpoint file."""
    meta, ops = load_checkpoint(path)
    return TenantSession.restore(meta, ops)


def list_checkpoints(directory: "str | Path") -> list[Path]:
    """Every checkpoint file under ``directory``, sorted by tenant."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob(f"*{CHECKPOINT_SUFFIX}"))


def restore_all(directory: "str | Path") -> dict[str, TenantSession]:
    """Restore every checkpointed tenant under ``directory``."""
    sessions: dict[str, TenantSession] = {}
    for path in list_checkpoints(directory):
        session = restore_session(path)
        sessions[session.tenant] = session
    return sessions


def replay_summary(path: str) -> dict[str, Any]:
    """Replay one checkpoint and summarise the rebuilt session.

    Top-level and string-argumented on purpose: this is the body
    :func:`verify_checkpoints` ships to pool workers, so it must stay
    picklable under the spawn start method.
    """
    meta, ops = load_checkpoint(path)
    session = TenantSession.restore(meta, ops)
    summary: dict[str, Any] = {
        "tenant": session.tenant,
        "scheduler": session.scheduler_name,
        "ops": len(session.input_log),
        "emitted": session.emitted,
        "clock": session.clock,
        "closed": session.closed,
    }
    if session.result is not None:
        summary["span"] = session.result.span
        summary["jobs"] = len(session.result.instance.jobs)
    return summary


def verify_checkpoints(
    directory: "str | Path", runner: ParallelRunner | None = None
) -> list[dict[str, Any]]:
    """Replay every checkpoint under ``directory`` (pool fan-out).

    Returns one :func:`replay_summary` dict per checkpoint, in tenant
    order.  Each replay additionally cross-checks the rebuilt clock and
    closed flag against the checkpoint's own meta header, so a stale or
    hand-edited checkpoint fails loudly instead of restoring silently
    wrong.  A raising replay propagates (``ParallelRunner`` does not
    retry task failures serially).
    """
    paths = [str(p) for p in list_checkpoints(directory)]
    if not paths:
        return []
    active = runner if runner is not None else get_default_runner()
    summaries = active.map(replay_summary, paths)
    for path, summary in zip(paths, summaries):
        meta, _ = scan_jsonl(path)
        for key in ("clock", "closed", "emitted"):
            if key in meta and meta[key] != summary[key]:
                raise ValueError(
                    f"{path}: replay diverged from checkpoint meta "
                    f"({key}: meta={meta[key]!r}, replay={summary[key]!r})"
                )
    return summaries
