"""The ``repro serve`` line protocol: JSONL ops in, JSONL records out.

Every *input* line is one JSON object carrying an ``op``:

``{"op": "open", "tenant": T, "scheduler": "batch+", "params": {...}}``
    Open a tenant stream explicitly (optional — a ``job`` op for an
    unknown tenant opens it with the default scheduler).
``{"op": "job", "tenant": T, "id": 1, "arrival": 0.0, "deadline": 2.0,
  "length": 1.0}``
    Feed one job arrival.  ``laxity`` may replace ``deadline``
    (``deadline = arrival + laxity``); ``size`` is optional.  Arrivals
    must be non-decreasing per tenant (the stream is online).
``{"op": "advance", "tenant": T, "t": 10.0}``
    Advance the tenant's logical clock to ``t``, dispatching every
    queued engine event at or before it (deadline batches fire here).
``{"op": "close", "tenant": T}``
    Drain the tenant to completion, emit its summary, write its trace.
``{"op": "checkpoint", "tenant": T?}``
    Checkpoint one tenant (or, without ``tenant``, every open one).
``{"op": "stats"}``
    Emit a daemon statistics record.
``{"op": "shutdown"}``
    Graceful drain of every tenant, then exit — the in-band twin of
    ``SIGTERM``.

Every *output* line is one JSON object with a ``kind``: ``serve.ready``,
``serve.open``, ``start``, ``decision``, ``complete``, ``serve.closed``,
``serve.checkpoint``, ``serve.stats``, ``serve.error``, ``serve.bye``.
``start``/``decision``/``complete`` carry simulation-time fields only
(never wall-clock), so the stream a restored daemon emits is
bit-identical to the one an uninterrupted daemon would have emitted.
Decision records reuse the closed rule vocabulary from
:mod:`repro.obs.records` — ``repro obs explain --strict`` reconciles the
trace a session writes with no extra translation.

Knobs (environment, overridable per-flag on the CLI):

``REPRO_SERVE_QUEUE``
    Bound on each per-tenant input queue and each connection's output
    queue (default 256).  Full queues propagate backpressure to the
    socket instead of buffering without limit.
``REPRO_SERVE_MAX_LINE``
    Longest accepted input line in bytes (default 65536).  Longer lines
    are rejected with a ``serve.error`` record; the connection survives.
``REPRO_SERVE_CHECKPOINT_EVERY``
    Ops between automatic per-tenant checkpoints (default 64; ``0``
    disables automatic checkpoints).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any

from ..core.errors import InvalidJobError
from ..core.job import Job

__all__ = [
    "CHECKPOINT_EVERY_ENV",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_MAX_LINE",
    "DEFAULT_QUEUE_SIZE",
    "DEFAULT_SCHEDULER",
    "MAX_LINE_ENV",
    "OPS",
    "ProtocolError",
    "QUEUE_ENV",
    "checkpoint_every",
    "encode_record",
    "error_record",
    "job_from_op",
    "max_line_bytes",
    "parse_op",
    "queue_size",
]

#: Default scheduler for implicitly opened tenants (the paper's tight
#: non-clairvoyant algorithm).
DEFAULT_SCHEDULER = "batch+"

QUEUE_ENV = "REPRO_SERVE_QUEUE"
MAX_LINE_ENV = "REPRO_SERVE_MAX_LINE"
CHECKPOINT_EVERY_ENV = "REPRO_SERVE_CHECKPOINT_EVERY"

DEFAULT_QUEUE_SIZE = 256
DEFAULT_MAX_LINE = 65536
DEFAULT_CHECKPOINT_EVERY = 64

#: Ops that address one tenant (and therefore require a ``tenant`` field).
TENANT_OPS = frozenset({"open", "job", "advance", "close"})
#: All legal ops.
OPS = TENANT_OPS | frozenset({"checkpoint", "stats", "shutdown"})

#: Tenant names become file names (``<tenant>.trace.jsonl``,
#: ``<tenant>.ckpt.jsonl``), so they are restricted to a safe alphabet.
_TENANT_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9._-]{0,63}$")


class ProtocolError(ValueError):
    """A malformed input line or op (per-tenant when the tenant is known)."""

    def __init__(self, message: str, tenant: str | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant


def _env_int(name: str, default: int, *, minimum: int = 0) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def queue_size(override: int | None = None) -> int:
    """Per-tenant/output queue bound (``REPRO_SERVE_QUEUE``)."""
    if override is not None:
        if override < 1:
            raise ValueError(f"queue size must be >= 1, got {override}")
        return override
    return _env_int(QUEUE_ENV, DEFAULT_QUEUE_SIZE, minimum=1)


def max_line_bytes(override: int | None = None) -> int:
    """Longest accepted input line (``REPRO_SERVE_MAX_LINE``)."""
    if override is not None:
        if override < 64:
            raise ValueError(f"max line must be >= 64 bytes, got {override}")
        return override
    return _env_int(MAX_LINE_ENV, DEFAULT_MAX_LINE, minimum=64)


def checkpoint_every(override: int | None = None) -> int:
    """Ops between automatic checkpoints; 0 disables
    (``REPRO_SERVE_CHECKPOINT_EVERY``)."""
    if override is not None:
        if override < 0:
            raise ValueError(f"checkpoint interval must be >= 0, got {override}")
        return override
    return _env_int(CHECKPOINT_EVERY_ENV, DEFAULT_CHECKPOINT_EVERY, minimum=0)


def parse_op(raw: "str | bytes") -> dict[str, Any]:
    """Parse and validate one input line into a normalised op dict.

    Raises :class:`ProtocolError` (tenant attached when identifiable)
    on malformed JSON, unknown ops, bad tenant names, or missing fields.
    """
    if isinstance(raw, bytes):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"input line is not UTF-8: {exc}") from None
    text = raw.strip()
    if not text:
        raise ProtocolError("blank input line")
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("input line is not a JSON object")
    op = obj.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}"
        )
    tenant = obj.get("tenant")
    if tenant is not None and (
        not isinstance(tenant, str) or not _TENANT_RE.match(tenant)
    ):
        raise ProtocolError(
            f"invalid tenant name {tenant!r} (1-64 chars of [A-Za-z0-9._-], "
            "not starting with a dot)"
        )
    if op in TENANT_OPS and tenant is None:
        raise ProtocolError(f"op {op!r} requires a tenant")
    if op == "advance":
        t = obj.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            raise ProtocolError("advance requires a numeric 't'", tenant=tenant)
    return obj


def job_from_op(op: dict[str, Any]) -> Job:
    """Build the :class:`~repro.core.job.Job` a ``job`` op describes.

    ``deadline`` may be given as an absolute time or via ``laxity``
    (relative to arrival).  Field validation (non-negative arrival,
    positive finite length, window sanity) is the Job constructor's —
    its :class:`InvalidJobError` is re-raised as :class:`ProtocolError`.
    """
    tenant = op.get("tenant")
    job_id = op.get("id")
    if not isinstance(job_id, int) or isinstance(job_id, bool):
        raise ProtocolError("job op requires an integer 'id'", tenant=tenant)

    def _num(field: str, default: "float | None" = None) -> float | None:
        value = op.get(field, default)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError(
                f"job field {field!r} must be a number, got {value!r}",
                tenant=tenant,
            )
        return float(value)

    arrival = _num("arrival")
    if arrival is None:
        raise ProtocolError("job op requires 'arrival'", tenant=tenant)
    deadline = _num("deadline")
    if deadline is None:
        laxity = _num("laxity")
        if laxity is None:
            raise ProtocolError(
                "job op requires 'deadline' or 'laxity'", tenant=tenant
            )
        deadline = arrival + laxity
    length = _num("length")
    if length is None:
        raise ProtocolError(
            "job op requires 'length' (adversary-controlled lengths are "
            "not servable)",
            tenant=tenant,
        )
    size = _num("size", 1.0)
    assert size is not None
    try:
        return Job(
            id=job_id, arrival=arrival, deadline=deadline,
            length=length, size=size,
        )
    except InvalidJobError as exc:
        raise ProtocolError(str(exc), tenant=tenant) from None


def encode_record(record: dict[str, Any]) -> bytes:
    """One output record as a JSONL-encoded line (trailing newline)."""
    return (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")


def error_record(
    message: str, *, tenant: str | None = None, **attrs: Any
) -> dict[str, Any]:
    """A ``serve.error`` output record."""
    record: dict[str, Any] = {"kind": "serve.error", "error": message}
    if tenant is not None:
        record["tenant"] = tenant
    record.update(attrs)
    return record
