"""Streaming scheduling daemon: ``python -m repro serve``.

Turns the discrete-event engine's incremental feed
(:meth:`repro.core.engine.Simulator.start_stream`) into a long-running
service: JSONL job-arrival streams in, start-decision records out, many
tenant scheduler instances multiplexed in one asyncio process.

Layers
------
* :mod:`repro.serve.protocol` — the line protocol (ops in, records
  out), size/queue knobs, tenant-name hygiene.
* :mod:`repro.serve.session` — :class:`TenantSession`: one tenant's
  engine + recorder + replayable input-op log.
* :mod:`repro.serve.checkpoint` — event-sourced checkpoints over the
  versioned JSONL sink; restore by deterministic replay; pool fan-out
  verification.
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`: bounded queues with
  end-to-end backpressure, graceful SIGTERM drain, periodic
  checkpoints, stdio/Unix/TCP transports.
* :mod:`repro.serve.loopwatch` — the ``REPRO_LOOPWATCH=1`` instrumented
  event loop: per-callback stall timing and orphaned-task capture, the
  runtime twin of lint rules RL017/RL018.
* :mod:`repro.serve.telemetry` — the read-only telemetry listener:
  Prometheus text and JSON snapshots of the live per-tenant
  span/ratio aggregates (:mod:`repro.obs.live`).
* :mod:`repro.serve.cli` — the ``serve`` subcommand.

See ``docs/serving.md`` for the protocol walkthrough.
"""

from .protocol import (
    DEFAULT_SCHEDULER,
    ProtocolError,
    encode_record,
    error_record,
    job_from_op,
    parse_op,
)
from .session import TenantSession
from .checkpoint import (
    checkpoint_path,
    load_checkpoint,
    restore_all,
    restore_session,
    save_checkpoint,
    verify_checkpoints,
)
from .daemon import ServeDaemon
from .telemetry import TelemetryServer
from .loopwatch import (
    InstrumentedEventLoop,
    LoopStallError,
    LoopWatch,
    loopwatch_enabled,
    watched_run,
)

__all__ = [
    "DEFAULT_SCHEDULER",
    "InstrumentedEventLoop",
    "LoopStallError",
    "LoopWatch",
    "ProtocolError",
    "ServeDaemon",
    "TelemetryServer",
    "TenantSession",
    "checkpoint_path",
    "encode_record",
    "error_record",
    "job_from_op",
    "load_checkpoint",
    "loopwatch_enabled",
    "parse_op",
    "restore_all",
    "restore_session",
    "save_checkpoint",
    "verify_checkpoints",
    "watched_run",
]
