"""Per-tenant streaming sessions: one scheduler engine per tenant.

A :class:`TenantSession` wraps one object-core
:class:`~repro.core.engine.Simulator` opened with
:meth:`~repro.core.engine.Simulator.start_stream`, plus the
:class:`~repro.obs.recorder.TraceRecorder` that captures its structured
records.  The daemon feeds it validated protocol ops one at a time;
:meth:`apply` advances the engine and returns the *new* output records
(starts, decisions, completions) that op produced, in engine order.

Replayable by construction
--------------------------
The session keeps an **input-op log** (every successfully applied op)
and an **emitted-output counter** (every output record it has produced).
That pair is the whole checkpoint: because the engine is deterministic,
replaying the logged ops through a fresh session regenerates the exact
same output records — so a restored session simply *suppresses* the
first ``emitted`` regenerated records (they were already delivered
before the crash) and emits the rest bit-identically.  No engine state
is ever pickled; see :mod:`repro.serve.checkpoint`.

Failure containment
-------------------
Op *validation* errors (bad job fields, arrival in the past, duplicate
ids) are raised before the engine mutates anything — the session stays
live and the daemon answers with a ``serve.error`` record.  An error
escaping mid-dispatch (e.g. a scheduler violating the FJS contract)
poisons the session: it is marked failed and rejects further ops, while
its op log still restores cleanly to the last successful op.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..core.engine import SimulationResult, Simulator
from ..core.errors import SimulationError
from ..core.job import Instance
from ..obs.live import TenantTelemetry
from ..obs.records import KIND_DECISION, KIND_INSTANT
from ..obs.recorder import TraceRecorder
from ..schedulers.registry import make_scheduler
from .protocol import DEFAULT_SCHEDULER, ProtocolError, job_from_op

__all__ = ["TenantSession"]

#: Ops :meth:`TenantSession.apply` accepts (the stream-mutating subset).
_STREAM_OPS = frozenset({"job", "advance", "close"})


class TenantSession:
    """One tenant's live scheduling stream.

    Parameters
    ----------
    tenant:
        The tenant name (already validated by the protocol layer).
    scheduler:
        Registry name of the scheduler to run (default ``batch+``).
    params:
        Keyword arguments for the scheduler factory.
    suppress:
        Number of regenerated output records to swallow before emitting
        (checkpoint restore only — they were delivered pre-crash).
    telemetry:
        Live :class:`~repro.obs.live.TenantTelemetry` to feed from the
        per-op collect loop (``None``, the default, costs nothing —
        the daemon arms it when ``REPRO_TELEMETRY`` is on).
    """

    def __init__(
        self,
        tenant: str,
        *,
        scheduler: str = DEFAULT_SCHEDULER,
        params: dict[str, Any] | None = None,
        suppress: int = 0,
        telemetry: TenantTelemetry | None = None,
    ) -> None:
        self.tenant = tenant
        self.telemetry = telemetry
        self.scheduler_name = scheduler
        self.params: dict[str, Any] = dict(params or {})
        try:
            sched = make_scheduler(scheduler, **self.params)
        except KeyError as exc:
            raise ProtocolError(str(exc), tenant=tenant) from None
        except TypeError as exc:
            raise ProtocolError(
                f"bad scheduler params for {scheduler!r}: {exc}", tenant=tenant
            ) from None
        self.clairvoyant = bool(
            getattr(type(sched), "requires_clairvoyance", False)
        )
        self.recorder = TraceRecorder(tag={"tenant": tenant})
        self.sim = Simulator(
            sched,
            instance=Instance([], name=f"serve/{tenant}"),
            clairvoyant=self.clairvoyant,
            core="object",
            recorder=self.recorder,
        )
        self.sim.start_stream()
        #: Successfully applied stream ops, in order — the replay log.
        self.input_log: list[dict[str, Any]] = []
        #: Output records generated so far (delivered + restore-suppressed).
        self.emitted = 0
        self._suppress = int(suppress)
        self._rec_idx = len(self.recorder.records)
        self.closed = False
        self.failed: str | None = None
        self.result: SimulationResult | None = None
        #: Ops applied since the last checkpoint (daemon's cadence counter).
        self.ops_since_checkpoint = 0

    # ------------------------------------------------------------------- api
    @property
    def clock(self) -> float:
        """The tenant's logical (simulation) time."""
        return self.sim.now

    def hello(self) -> list[dict[str, Any]]:
        """The session's opening output records (``serve.open``).

        Called exactly once, right after construction — kept out of
        ``__init__`` so restore suppression covers it like any other
        output record.
        """
        record: dict[str, Any] = {
            "kind": "serve.open",
            "tenant": self.tenant,
            "scheduler": self.scheduler_name,
            "clairvoyant": self.clairvoyant,
        }
        if self.params:
            record["params"] = dict(self.params)
        return self._deliver([record])

    def apply(self, op: dict[str, Any]) -> list[dict[str, Any]]:
        """Apply one validated stream op; return its new output records.

        Raises :class:`ProtocolError` or :class:`SimulationError` on a
        rejected op (session still live), re-raises and poisons the
        session on a mid-dispatch engine failure.
        """
        if self.failed is not None:
            raise SimulationError(
                f"tenant {self.tenant!r} stream failed earlier: {self.failed}"
            )
        if self.closed:
            raise ProtocolError(
                f"tenant {self.tenant!r} is already closed", tenant=self.tenant
            )
        kind = op.get("op")
        if kind not in _STREAM_OPS:
            raise ProtocolError(
                f"op {kind!r} is not a stream op", tenant=self.tenant
            )
        outs: list[dict[str, Any]]
        if kind == "job":
            job = job_from_op(op)  # validation only; no engine mutation yet
            self.sim.feed([job])  # rejects past arrivals / duplicate ids
            # Exclusive advance: dispatch everything strictly before this
            # arrival, keeping the whole time-`a` cohort queued until the
            # stream moves past `a` — the batch engine's same-time order
            # (arrivals before deadlines) is preserved for jobs fed one
            # protocol line at a time.
            self._dispatch(job.arrival, inclusive=False)
            outs = self._collect()
        elif kind == "advance":
            self._dispatch(float(op["t"]), inclusive=True)
            outs = self._collect()
        else:  # close
            result = self._finish_dispatch()
            self.closed = True
            self.result = result
            outs = self._collect()
            outs.append(
                {
                    "kind": "serve.closed",
                    "tenant": self.tenant,
                    "span": result.span,
                    "jobs": len(result.instance.jobs),
                    "events": result.events_processed,
                }
            )
        self.input_log.append(dict(op))
        self.ops_since_checkpoint += 1
        return self._deliver(outs)

    def write_trace(self, directory: "str | Path") -> str:
        """Write the session's structured trace as versioned JSONL.

        The trace of a *closed* session reconciles under
        ``repro obs explain --strict`` exactly like a batch run's.
        """
        path = Path(directory) / f"{self.tenant}.trace.jsonl"
        return self.recorder.write_jsonl(
            path,
            command="serve",
            tenant=self.tenant,
            scheduler=self.scheduler_name,
        )

    # ------------------------------------------------------------ checkpoint
    def checkpoint_state(
        self,
    ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """The session as ``(meta, rows)`` for the versioned JSONL sink.

        ``meta`` carries the session configuration plus the
        emitted-output counter; ``rows`` are the logged input ops.  The
        pair is sufficient to rebuild the session by deterministic
        replay (see :meth:`restore`).
        """
        meta: dict[str, Any] = {
            "tenant": self.tenant,
            "scheduler": self.scheduler_name,
            "emitted": self.emitted,
            "closed": self.closed,
            "clock": self.clock,
            "ops": len(self.input_log),
        }
        if self.params:
            meta["params"] = dict(self.params)
        rows = [{"kind": "op", "data": dict(op)} for op in self.input_log]
        return meta, rows

    @classmethod
    def restore(
        cls, meta: dict[str, Any], ops: list[dict[str, Any]]
    ) -> "TenantSession":
        """Rebuild a session by replaying its checkpointed op log.

        The first ``meta["emitted"]`` regenerated output records are
        suppressed (already delivered before the crash); everything the
        restored session emits afterwards is bit-identical to what the
        uninterrupted session would have emitted.
        """
        emitted = int(meta.get("emitted", 0))
        session = cls(
            str(meta["tenant"]),
            scheduler=str(meta.get("scheduler", DEFAULT_SCHEDULER)),
            params=dict(meta.get("params") or {}),
            suppress=emitted,
        )
        session.hello()
        for op in ops:
            session.apply(dict(op))
        if session._suppress:
            raise ValueError(
                f"checkpoint inconsistent for tenant {meta['tenant']!r}: "
                f"{session._suppress} delivered output(s) were never "
                "regenerated by replay"
            )
        return session

    # -------------------------------------------------------------- internal
    def _dispatch(self, until: float, *, inclusive: bool) -> None:
        """Advance the engine, poisoning the session on dispatch failure."""
        if until < self.sim.now:
            # Rejected before the engine touches anything: session live.
            raise SimulationError(
                f"advance({until:g}) is in the past "
                f"(tenant clock is at {self.sim.now:g})"
            )
        try:
            self.sim.advance(until, inclusive=inclusive)
        except Exception as exc:
            # Escaped mid-dispatch: engine state may be partial — poison.
            self.failed = f"{type(exc).__name__}: {exc}"
            raise

    def _finish_dispatch(self) -> SimulationResult:
        try:
            return self.sim.finish_stream()
        except Exception as exc:
            self.failed = f"{type(exc).__name__}: {exc}"
            raise

    def _collect(self) -> list[dict[str, Any]]:
        """Map the recorder's new records to protocol output records.

        The live telemetry feed piggybacks on this loop — the records
        are already being walked once per op, so aggregation costs only
        the accumulator updates, not a second dispatch pass.
        """
        records = self.recorder.records
        new = records[self._rec_idx :]
        self._rec_idx = len(records)
        telemetry = self.telemetry
        out: list[dict[str, Any]] = []
        for record in new:
            if telemetry is not None:
                telemetry.observe(record)
            if record.kind == KIND_DECISION:
                decision: dict[str, Any] = {
                    "kind": "decision",
                    "tenant": self.tenant,
                    "rule": record.name,
                }
                decision.update(record.attrs)
                out.append(decision)
            elif record.kind == KIND_INSTANT:
                if record.name == "engine.start":
                    out.append(
                        {
                            "kind": "start",
                            "tenant": self.tenant,
                            "job": record.attrs["job"],
                            "t": record.attrs["t"],
                        }
                    )
                elif record.name == "engine.completion":
                    out.append(
                        {
                            "kind": "complete",
                            "tenant": self.tenant,
                            "job": record.attrs["job"],
                            "t": record.attrs["t"],
                        }
                    )
        return out

    def _deliver(self, outs: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Count generated outputs; swallow restore-suppressed ones."""
        self.emitted += len(outs)
        if self._suppress:
            consumed = min(self._suppress, len(outs))
            self._suppress -= consumed
            outs = outs[consumed:]
        return outs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "failed" if self.failed else "closed" if self.closed else "open"
        return (
            f"TenantSession({self.tenant!r}, {self.scheduler_name!r}, "
            f"{state}, t={self.clock:g}, ops={len(self.input_log)})"
        )
