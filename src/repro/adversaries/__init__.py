"""Adversaries: the paper's lower-bound and tightness constructions.

* :class:`NonClairvoyantLowerBoundAdversary` — §3.1, Theorem 3.3 (ratio → μ).
* :class:`ClairvoyantLowerBoundAdversary` — §4.1, Theorem 4.1 (ratio → φ).
* :func:`batch_tightness_instance` — Figure 2 (Batch → 2μ).
* :func:`batchplus_tightness_instance` — Figure 3 (Batch+ → μ+1).
"""

from .base import AdversaryResponse, BaseAdversary
from .clairvoyant import PHI, ClairvoyantLowerBoundAdversary
from .nonclairvoyant import (
    AdversaryProfile,
    IterationSpec,
    NonClairvoyantLowerBoundAdversary,
    geometric_profile,
    paper_profile,
)
from .tightness import (
    TightnessFamily,
    batch_tightness_instance,
    batchplus_tightness_instance,
)

__all__ = [
    "BaseAdversary",
    "AdversaryResponse",
    "ClairvoyantLowerBoundAdversary",
    "PHI",
    "NonClairvoyantLowerBoundAdversary",
    "AdversaryProfile",
    "IterationSpec",
    "paper_profile",
    "geometric_profile",
    "TightnessFamily",
    "batch_tightness_instance",
    "batchplus_tightness_instance",
]
