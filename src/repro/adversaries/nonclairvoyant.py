"""The non-clairvoyant lower-bound adversary (Section 3.1, Theorem 3.3).

The construction forces every deterministic online scheduler's
competitive ratio towards ``μ`` (the max/min length ratio).  Jobs are
released in up to ``k+1`` iterations; each job's length is committed
**one time unit after it starts** (all lengths are ≥ 1, so the scheduler
cannot distinguish jobs before then):

* Iteration ``i`` releases ``N_i`` jobs at time ``T_i``; the ``j``-th has
  laxity ``α^j`` (``α > μ+1``), so laxities increase strictly with ``j``.
* While the iteration's *concurrency* (simultaneously running jobs among
  those it released) stays at or below the threshold ``C_i = √N_i``,
  every job due for commitment gets length 1.  If the whole iteration
  completes that way the adversary stops: the scheduler serialised
  ``N_i`` units of work at concurrency ≤ ``C_i``, paying span
  ``≥ √N_i`` (Lemma 3.1) against an optimum of ~1.
* The first time concurrency exceeds ``C_i``, the running job with the
  largest laxity is **earmarked**: it alone receives length ``μ``; every
  other job of the construction receives length 1.  When the earmarked
  job completes, iteration ``i+1`` is released at that moment
  (``T_{i+1}``) — so the earmarked jobs of different iterations can never
  overlap, costing the scheduler ``μ`` per iteration, while the optimum
  can batch *all* earmarked jobs at the final release time (their huge
  laxities keep them startable — Lemma 3.2).
* The final iteration ``k+1`` (reached when every previous iteration was
  earmarked) releases ``N_{k+1}`` jobs with fixed length 1.

Profiles
--------
The paper's job counts are doubly exponential (``N_i = 2^(2^(2k-i+1))``),
feasible only for ``k ∈ {1, 2}``; :func:`paper_profile` builds those.
:func:`geometric_profile` scales the same mechanism to larger ``k`` with
constant per-iteration counts ``m²`` / thresholds ``m`` (EXPERIMENTS.md
records that this demonstrates the trend rather than the exact bound).

Laxities ``α^j`` overflow floats for large ``j``; they are capped at
``laxity_cap`` (default 10^15), far beyond any reachable simulation time,
preserving the construction's behaviour while keeping arithmetic finite
(documented substitution — DESIGN.md §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from ..core.columnar import JobBatch
from ..core.engine import AdversaryResponse
from ..core.job import Instance, Job
from ..core.schedule import Schedule
from .base import BaseAdversary

__all__ = [
    "IterationSpec",
    "AdversaryProfile",
    "paper_profile",
    "geometric_profile",
    "NonClairvoyantLowerBoundAdversary",
]


@dataclass(frozen=True)
class IterationSpec:
    """One adversary iteration: how many jobs, and the concurrency threshold."""

    count: int
    threshold: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("iteration count must be positive")
        if not 1 <= self.threshold <= self.count:
            raise ValueError("threshold must lie in [1, count]")


@dataclass(frozen=True)
class AdversaryProfile:
    """Release profile: ``k`` adaptive iterations plus the final one."""

    iterations: tuple[IterationSpec, ...]
    final_count: int

    def __post_init__(self) -> None:
        if not self.iterations:
            raise ValueError("profile needs at least one iteration")
        if self.final_count < 1:
            raise ValueError("final_count must be positive")

    @property
    def k(self) -> int:
        return len(self.iterations)

    @property
    def total_jobs_max(self) -> int:
        return sum(it.count for it in self.iterations) + self.final_count


def paper_profile(k: int) -> AdversaryProfile:
    """The paper's doubly-exponential profile.

    Iteration ``i`` releases ``2^(2^(2k-i+1))`` jobs with threshold
    ``2^(2^(2k-i))``; the final iteration releases ``2^(2^k)`` jobs.
    Only ``k ∈ {1, 2}`` is computationally feasible (``k = 3`` would need
    ``2^64`` jobs).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if k > 2:
        raise ValueError(
            "the paper profile needs 2^(2^(2k)) jobs — infeasible beyond "
            "k = 2; use geometric_profile for larger k"
        )
    iterations = tuple(
        IterationSpec(count=2 ** (2 ** (2 * k - i + 1)), threshold=2 ** (2 ** (2 * k - i)))
        for i in range(1, k + 1)
    )
    return AdversaryProfile(iterations=iterations, final_count=2 ** (2**k))


def geometric_profile(k: int, m: int = 16) -> AdversaryProfile:
    """A scaled profile: every iteration releases ``m²`` jobs, threshold ``m``.

    Preserves the mechanism (threshold crossings, earmarking, span
    ``≥ m`` when an iteration is never crossed) at any ``k``; the forced
    ratio follows ``min(m/…, (kμ+1)/(μ+k)) → μ`` as ``k`` and ``m`` grow.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if m < 2:
        raise ValueError("m must be at least 2")
    iterations = tuple(IterationSpec(count=m * m, threshold=m) for _ in range(k))
    return AdversaryProfile(iterations=iterations, final_count=m)


class NonClairvoyantLowerBoundAdversary(BaseAdversary):
    """The §3.1 adaptive adversary.

    Parameters
    ----------
    mu:
        The max/min length ratio ``μ > 1`` the adversary enforces (jobs
        get length 1 or μ).
    profile:
        The release profile (defaults to ``paper_profile(1)``).
    alpha:
        Laxity base, must exceed ``μ + 1`` (default ``μ + 2``).
    laxity_cap:
        Upper cap on laxities to keep ``α^j`` finite.

    Attributes
    ----------
    iterations_released:
        Number of adaptive iterations actually released (1..k), plus the
        final iteration when reached (see :attr:`final_released`).
    earmarked_ids:
        Ids of earmarked jobs in iteration order.
    """

    def __init__(
        self,
        mu: float,
        profile: AdversaryProfile | None = None,
        *,
        alpha: float | None = None,
        laxity_cap: float = 1e15,
    ) -> None:
        if mu <= 1:
            raise ValueError(f"mu must exceed 1, got {mu}")
        self.mu = mu
        self.profile = profile if profile is not None else paper_profile(1)
        self.alpha = alpha if alpha is not None else mu + 2.0
        if self.alpha <= mu + 1:
            raise ValueError(
                f"alpha must exceed mu + 1 = {mu + 1}, got {self.alpha}"
            )
        if laxity_cap <= 1:
            raise ValueError("laxity_cap must exceed 1")
        self.laxity_cap = laxity_cap

        self.iterations_released = 0
        self.final_released = False
        self.earmarked_ids: list[int] = []
        self.release_times: list[float] = []

        self._next_id = 0
        #: Release blocks ``(iteration, lo, hi)`` — ids are consecutive
        #: per release, so a dict id->iteration would be pure overhead
        #: at §3.1 scale (65 536 inserts per k=2 iteration).
        self._blocks: list[tuple[int, int, int]] = []
        self._block_lo = 0  # id range of the live iteration
        self._block_hi = 0
        self._running_current: set[int] = set()  # running jobs of the live iteration
        self._assigned: dict[int, float] = {}  # committed lengths
        self._live = False  # current iteration still unearmarked & releasing?
        self._earmark_pending = False
        self._earmarked_current: int | None = None
        #: Per-count laxity ladders (Python floats — see _laxity_ladder).
        self._laxity_cache: dict[int, list[float]] = {}

    # -- construction helpers ---------------------------------------------------
    def _laxity(self, j: int) -> float:
        """Laxity of the j-th job (1-based) of an iteration: min(α^j, cap)."""
        log_lax = j * math.log(self.alpha)
        if log_lax >= math.log(self.laxity_cap):
            return self.laxity_cap
        return self.alpha**j

    def _laxity_ladder(self, count: int) -> list[float]:
        """``[α^1 … α^count]`` (capped), cached per count.

        Computed with scalar :meth:`_laxity` — **not** ``np.power`` —
        because both engine cores must see the exact floats the original
        per-job construction produced (``libm`` vs NumPy ``power`` may
        differ in the last ulp, which golden traces would surface).
        """
        ladder = self._laxity_cache.get(count)
        if ladder is None:
            log_alpha = math.log(self.alpha)
            log_cap = math.log(self.laxity_cap)
            # Smallest j with j·log(α) ≥ log(cap): every later rung is the
            # cap, so only the head of the ladder needs a real power —
            # O(log_α cap) instead of O(count) pow calls.
            j_cap = 1
            while j_cap * log_alpha < log_cap:
                j_cap += 1
            head = min(count, j_cap - 1)
            ladder = [self.alpha**j for j in range(1, head + 1)]
            ladder.extend([self.laxity_cap] * (count - head))
            self._laxity_cache[count] = ladder
        return ladder

    def _release_batch(
        self, iteration: int, count: int, t: float, length: float | None
    ) -> JobBatch:
        """One release (adaptive iteration or final) as a columnar batch."""
        base = self._next_id
        ids = np.arange(base, base + count, dtype=np.int64)
        deadline = t + np.asarray(
            self._laxity_ladder(count), dtype=np.float64
        )
        batch = JobBatch(
            ids=ids, arrival=float(t), deadline=deadline, length=length
        )
        self._blocks.append((iteration, base, base + count))
        self._next_id = base + count
        self.release_times.append(t)
        return batch

    def _release_iteration(self, i: int, t: float) -> JobBatch:
        """Jobs of adaptive iteration ``i`` released at time ``t``."""
        spec = self.profile.iterations[i - 1]
        batch = self._release_batch(i, spec.count, t, length=None)
        self.iterations_released = i
        self._block_lo = self._next_id - spec.count
        self._block_hi = self._next_id
        self._running_current = set()
        self._live = True
        self._earmarked_current = None
        self._earmark_pending = False
        return batch

    def _release_final(self, t: float) -> JobBatch:
        """The final iteration: fixed length-1 jobs."""
        batch = self._release_batch(0, self.profile.final_count, t, length=1.0)
        self.final_released = True
        self._live = False
        return batch

    def _iteration_of_id(self, job_id: int) -> int:
        """The iteration (1-based; 0 = final) that released ``job_id``."""
        for iteration, lo, hi in self._blocks:
            if lo <= job_id < hi:
                return iteration
        raise KeyError(job_id)

    # -- adversary hooks -----------------------------------------------------------
    def initial_batch(self) -> JobBatch:
        return self._release_iteration(1, 0.0)

    def initial_jobs(self) -> Iterable[Job]:
        # Object-core path: same release bookkeeping, materialised jobs.
        return self._release_iteration(1, 0.0).jobs()

    def on_start(self, job: Job, t: float) -> AdversaryResponse | None:
        if not self._live or not (self._block_lo <= job.id < self._block_hi):
            return None
        self._running_current.add(job.id)
        i = self.iterations_released
        spec = self.profile.iterations[i - 1]
        if (
            len(self._running_current) > spec.threshold
            and not self._earmark_pending
        ):
            # Concurrency exceeded the threshold.  Defer the earmark
            # decision to a same-time wake-up so that *every* job started
            # at this instant (e.g. the rest of a batch) is considered
            # "running at t1", matching the paper's continuous-time view.
            self._earmark_pending = True
            return AdversaryResponse(wakeup=t)
        return None

    def on_start_batch(self, job_ids: Sequence[int], t: float) -> Any:
        """Cohort form of :meth:`on_start` (columnar core fast path).

        Equivalent to the scalar calls merged: membership in the live
        iteration is a range test, and the first threshold crossing
        inside the cohort yields the same single same-time wake-up.
        """
        if not self._live:
            return None
        ids = np.asarray(job_ids, dtype=np.int64)
        members = ids[(ids >= self._block_lo) & (ids < self._block_hi)]
        if members.size == 0:
            return None
        self._running_current.update(members.tolist())
        i = self.iterations_released
        spec = self.profile.iterations[i - 1]
        if (
            len(self._running_current) > spec.threshold
            and not self._earmark_pending
        ):
            self._earmark_pending = True
            return AdversaryResponse(wakeup=t)
        return None

    def on_wakeup(self, t: float) -> AdversaryResponse | None:
        if not (self._live and self._earmark_pending):
            return None
        self._earmark_pending = False
        i = self.iterations_released
        spec = self.profile.iterations[i - 1]
        running = self._running_current
        if len(running) <= spec.threshold:  # pragma: no cover - defensive
            return None
        # Earmark the running job with the largest laxity (ties broken by
        # id; with the laxity cap, the highest index wins either way).
        # Vectorised max over (laxity, id): the ladder index of a live
        # job is its id offset within the iteration block.
        ids = np.fromiter(running, np.int64, len(running))
        ladder = np.asarray(self._laxity_ladder(spec.count), dtype=np.float64)
        laxities = ladder[ids - self._block_lo]
        order = np.lexsort((ids, laxities))
        earmark = int(ids[order[-1]])
        self._earmarked_current = earmark
        self.earmarked_ids.append(earmark)
        self._live = False  # lengths after this instant: all 1 except earmark
        return None

    def _iteration_laxity(self, job_id: int) -> float:
        """Reconstruct a released job's laxity from its id (deadline - arrival)
        is not directly available here, so recompute from the index."""
        # Jobs are released with consecutive ids per release block; the
        # j-th job of a block has laxity α^j.  Recover j from the id
        # offset within its block.
        for _iteration, lo, hi in self._blocks:
            if lo <= job_id < hi:
                return self._laxity(job_id - lo + 1)
        raise KeyError(job_id)

    def assign_length(self, job: Job, t: float) -> float:
        length = self.mu if job.id == self._earmarked_current else 1.0
        self._assigned[job.id] = length
        return length

    def assign_lengths_batch(self, job_ids: Sequence[int], t: float) -> Any:
        """Cohort form of :meth:`assign_length`: 1 everywhere, μ on the earmark."""
        earmark = self._earmarked_current
        if earmark is None:
            lengths = np.ones(len(job_ids), dtype=np.float64)
            self._assigned.update(dict.fromkeys(job_ids, 1.0))
            return lengths
        ids = np.asarray(job_ids, dtype=np.int64)
        lengths = np.where(ids == earmark, self.mu, 1.0)
        self._assigned.update(zip(job_ids, lengths.tolist()))
        return lengths

    def on_completion(self, job: Job, t: float) -> AdversaryResponse | None:
        self._running_current.discard(job.id)
        if job.id != self._earmarked_current:
            return None
        # The earmarked job of the current iteration completed: release
        # the next iteration now (T_{i+1} = its completion time).
        self._earmarked_current = None
        i = self.iterations_released
        if i < self.profile.k:
            return AdversaryResponse(
                release_batch=self._release_iteration(i + 1, t)
            )
        if not self.final_released:
            return AdversaryResponse(release_batch=self._release_final(t))
        return None  # pragma: no cover - defensive

    def on_completion_batch(self, job_ids: Sequence[int], t: float) -> Any:
        """Cohort form of :meth:`on_completion`.

        The earmarked job's completion triggers a release, whose events
        must interleave exactly as the object core's do — so a cohort
        containing it is declined (``NotImplemented``: the core replays
        it through the scalar hook).  All-ordinary cohorts reduce to a
        set difference.
        """
        earmark = self._earmarked_current
        if earmark is not None and earmark in job_ids:
            return NotImplemented
        if self._running_current:
            self._running_current.difference_update(job_ids)
        return None

    # -- reference schedule -------------------------------------------------------
    def paper_optimal_schedule(self, instance: Instance) -> Schedule:
        """The paper's witness schedule for the released jobs.

        Non-earmarked jobs start at their arrivals; earmarked jobs (and
        the final iteration, if released) start at the last release time
        — feasible because earmarked jobs carry the largest (capped)
        laxities of their iterations.  Span ≤ (#iterations - 1) + μ [+1].

        When a scheduler delays so extremely that release times outrun
        even the capped laxities (e.g. Lazy pinning thousands of jobs at
        the cap), an earmarked start is clamped to its own deadline; the
        witness stays feasible (hence a sound upper bound on the optimal
        span), merely less tightly packed.
        """
        t_last = self.release_times[-1] if self.release_times else 0.0
        earmarked = set(self.earmarked_ids)
        starts: dict[int, float] = {}
        for job in instance:
            if job.id in earmarked:
                starts[job.id] = min(t_last, job.deadline)
            else:
                starts[job.id] = job.arrival
        return Schedule(instance, starts)
