"""Tightness instances for Batch (Figure 2) and Batch+ (Figure 3).

These are *oblivious* (non-adaptive) worst-case families, so they are
plain :class:`~repro.core.job.Instance` generators:

* :func:`batch_tightness_instance` — three job groups forcing Batch's
  ratio to ``2mμ / (m(1+ε) + μ) → 2μ`` (proof of Theorem 3.4):
  group 1: ``m`` short jobs (length 1, laxity 0) at times ``2(i-1)μ``;
  group 2: ``m`` short jobs (length 1, laxity ``μ-ε``) at ``2(i-1)μ+ε``;
  group 3: ``2m`` long jobs (length μ) arriving at ``(i-1)μ`` with the
  common starting deadline ``2mμ``.  Batch pairs each long job with a
  short job's deadline, spreading the long jobs over a span of ``2mμ``,
  while the optimum batches all long jobs at their shared deadline.

* :func:`batchplus_tightness_instance` — two job groups forcing Batch+'s
  ratio to ``m(μ+1-ε) / (m+μ) → μ+1`` (proof of Theorem 3.5):
  ``m`` short jobs (length 1, laxity 0) at times ``(i-1)(μ+1)`` and
  ``m`` long jobs (length μ, common starting deadline ``m(μ+1)``)
  arriving at ``(i-1)(μ+1) + (1-ε)`` — each long job lands inside the
  concurrently running short job's interval, so Batch+ starts it
  immediately and pays ``μ+1-ε`` per iteration.

Each generator also ships the paper's witness ``optimal`` schedule for
the family, so benches can report the *exact* forced ratio without
invoking a solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.job import Instance, Job
from ..core.schedule import Schedule

__all__ = [
    "TightnessFamily",
    "batch_tightness_instance",
    "batchplus_tightness_instance",
]


@dataclass(frozen=True)
class TightnessFamily:
    """An instance plus the paper's witness (near-)optimal schedule."""

    instance: Instance
    optimal_schedule: Schedule
    #: The ratio the construction forces in the limit (2μ or μ+1).
    limit_ratio: float

    @property
    def optimal_span(self) -> float:
        return self.optimal_schedule.span


def batch_tightness_instance(
    m: int, mu: float, epsilon: float = 1e-3
) -> TightnessFamily:
    """The Figure 2 family forcing Batch towards ratio ``2μ``.

    Parameters
    ----------
    m:
        Repetitions; the forced ratio is ``2mμ / (m(1+ε) + μ)``.
    mu:
        Long/short length ratio ``μ > 1``.
    epsilon:
        The ε of the construction; must satisfy ``0 < ε < min(1, μ-1)``
        so that arrival orderings match the paper's figure.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if mu <= 1:
        raise ValueError("mu must exceed 1")
    if not 0 < epsilon < min(1.0, mu - 1.0):
        raise ValueError(f"epsilon must lie in (0, min(1, mu-1)), got {epsilon}")

    jobs: list[Job] = []
    starts_opt: dict[int, float] = {}
    next_id = 0

    # Group 1: m zero-laxity short jobs at 2(i-1)μ.
    for i in range(1, m + 1):
        t = 2 * (i - 1) * mu
        jobs.append(Job(id=next_id, arrival=t, deadline=t, length=1.0))
        starts_opt[next_id] = t  # optimum: start at arrival
        next_id += 1

    # Group 2: m short jobs with laxity (μ-ε) at 2(i-1)μ + ε.
    for i in range(1, m + 1):
        t = 2 * (i - 1) * mu + epsilon
        jobs.append(Job(id=next_id, arrival=t, deadline=t + (mu - epsilon), length=1.0))
        starts_opt[next_id] = t  # optimum: start at arrival
        next_id += 1

    # Group 3: 2m long jobs, i-th arriving at (i-1)μ, all with starting
    # deadline 2mμ.
    common_deadline = 2 * m * mu
    for i in range(1, 2 * m + 1):
        t = (i - 1) * mu
        jobs.append(Job(id=next_id, arrival=t, deadline=common_deadline, length=mu))
        starts_opt[next_id] = common_deadline  # optimum: batch at the deadline
        next_id += 1

    instance = Instance(jobs, name=f"batch-tightness(m={m}, mu={mu:g})")
    return TightnessFamily(
        instance=instance,
        optimal_schedule=Schedule(instance, starts_opt),
        limit_ratio=2 * mu,
    )


def batchplus_tightness_instance(
    m: int, mu: float, epsilon: float = 1e-3
) -> TightnessFamily:
    """The Figure 3 family forcing Batch+ towards ratio ``μ + 1``.

    Parameters
    ----------
    m:
        Repetitions; the forced ratio is ``m(μ+1-ε) / (m+μ)``.
    mu:
        Long/short length ratio ``μ > 1``.
    epsilon:
        The ε of the construction, in ``(0, 1)``.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if mu <= 1:
        raise ValueError("mu must exceed 1")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")

    jobs: list[Job] = []
    starts_opt: dict[int, float] = {}
    next_id = 0

    # Short jobs: length 1, laxity 0, at (i-1)(μ+1).
    for i in range(1, m + 1):
        t = (i - 1) * (mu + 1)
        jobs.append(Job(id=next_id, arrival=t, deadline=t, length=1.0))
        starts_opt[next_id] = t
        next_id += 1

    # Long jobs: length μ, arriving at (i-1)(μ+1) + (1-ε), all with the
    # common starting deadline m(μ+1).
    common_deadline = m * (mu + 1)
    for i in range(1, m + 1):
        t = (i - 1) * (mu + 1) + (1 - epsilon)
        jobs.append(Job(id=next_id, arrival=t, deadline=common_deadline, length=mu))
        starts_opt[next_id] = common_deadline
        next_id += 1

    instance = Instance(jobs, name=f"batch+-tightness(m={m}, mu={mu:g})")
    return TightnessFamily(
        instance=instance,
        optimal_schedule=Schedule(instance, starts_opt),
        limit_ratio=mu + 1,
    )
