"""The clairvoyant lower-bound adversary (Section 4.1, Theorem 4.1).

The construction forces every deterministic online scheduler's
competitive ratio arbitrarily close to the golden ratio
``φ = (√5 + 1)/2`` as the iteration budget ``n`` grows:

* Iteration ``i`` (at time ``T_i = (i-1)(φ+1)``) releases a **short job**
  (length 1, laxity 0 — it must start immediately) and a **long job**
  (length φ, laxity ``(n-i+1)(φ+1)``, i.e. deadline ``n(φ+1)`` shared by
  all long jobs).
* The adversary watches whether the scheduler starts the long job during
  the short job's active interval ``[T_i, T_i + 1)``.

  - If **not**: stop releasing.  The scheduler pays span ``φ + 1`` for
    this iteration alone while the optimum packs everything into
    ``φ + (i-1)``; the ratio is at least φ.
  - If **yes**: the long job's interval is pinned disjoint from every
    other iteration's (releases are ``φ+1`` apart), costing the scheduler
    φ per iteration; proceed to iteration ``i+1``.

Either way the span ratio is at least
``min(φ, nφ / (φ + n - 1)) → φ``.

All lengths are fixed at release, so the adversary is compatible with the
clairvoyant information model; only the *release sequence* adapts.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..core.engine import AdversaryResponse
from ..core.job import Job
from ..core.schedule import Schedule
from ..core.job import Instance
from .base import BaseAdversary

__all__ = ["ClairvoyantLowerBoundAdversary", "PHI"]

#: The golden ratio ``(√5 + 1)/2`` — the clairvoyant lower bound.
PHI = (math.sqrt(5.0) + 1.0) / 2.0


class ClairvoyantLowerBoundAdversary(BaseAdversary):
    """The §4.1 golden-ratio adversary.

    Parameters
    ----------
    n:
        Maximum number of iterations (the bound approaches φ as n → ∞).

    Attributes
    ----------
    iterations_played:
        How many iterations were actually released.
    stopped_early:
        True when some iteration's long job was not started inside the
        short job's active interval (the adversary then stops releasing).
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be at least 1, got {n}")
        self.n = n
        self.iterations_played = 0
        self.stopped_early = False
        self._start_times: dict[int, float] = {}
        self._current_long_id: int | None = None

    # -- job construction ---------------------------------------------------
    def _release_time(self, i: int) -> float:
        return (i - 1) * (PHI + 1.0)

    def _iteration_jobs(self, i: int) -> list[Job]:
        """The short job ``J_{2i-1}`` and long job ``J_{2i}``."""
        t = self._release_time(i)
        short = Job(id=2 * i - 1, arrival=t, deadline=t, length=1.0)
        laxity = (self.n - i + 1) * (PHI + 1.0)
        long = Job(id=2 * i, arrival=t, deadline=t + laxity, length=PHI)
        return [short, long]

    # -- adversary hooks -------------------------------------------------------
    def initial_jobs(self) -> Iterable[Job]:
        self.iterations_played = 1
        jobs = self._iteration_jobs(1)
        self._current_long_id = jobs[1].id
        # Check the scheduler's choice at the end of the short job's
        # active interval [T_1, T_1 + 1).
        return jobs

    def on_start(self, job: Job, t: float) -> AdversaryResponse | None:
        self._start_times[job.id] = t
        if job.id == 2 * self.iterations_played - 1:
            # The short job of the current iteration just started (it has
            # laxity 0, so t == T_i); revisit at the end of its run.
            return AdversaryResponse(wakeup=t + 1.0)
        return None

    def on_wakeup(self, t: float) -> AdversaryResponse | None:
        if self.stopped_early or self.iterations_played >= self.n:
            return None
        i = self.iterations_played
        long_id = 2 * i
        start = self._start_times.get(long_id)
        t_i = self._release_time(i)
        started_within = start is not None and t_i <= start < t_i + 1.0
        if not started_within:
            self.stopped_early = True
            return None
        self.iterations_played = i + 1
        return AdversaryResponse(release=tuple(self._iteration_jobs(i + 1)))

    # -- reference schedules ------------------------------------------------------
    def paper_optimal_schedule(self, instance: Instance) -> Schedule:
        """The paper's witness schedule for the released jobs.

        All long jobs start together at the last release time
        ``T_m = (m-1)(φ+1)`` (where ``m`` is the number of iterations
        played — feasible since every long job's deadline is
        ``n(φ+1) >= T_m``); every short job starts at its arrival.
        Its span is ``φ + (m-1)``.
        """
        m = self.iterations_played
        t_last = self._release_time(m)
        starts: dict[int, float] = {}
        for job in instance:
            if job.id % 2 == 1:  # short
                starts[job.id] = job.arrival
            else:  # long
                starts[job.id] = t_last
        return Schedule(instance, starts)
