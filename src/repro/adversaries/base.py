"""Base class for adaptive adversaries.

The paper's lower bounds (Theorems 3.3 and 4.1) are forced by *adaptive*
adversaries: the input revealed to the online scheduler depends on the
scheduler's own actions.  The engine supports this through the
:class:`~repro.core.engine.Adversary` protocol; this module provides a
convenience base class with inert defaults so concrete adversaries only
override what they need.

An adversary may:

* supply the initial job releases (:meth:`initial_jobs`),
* observe every start and completion and react by releasing further jobs
  or requesting wake-ups (:meth:`on_start`, :meth:`on_completion`,
  :meth:`on_wakeup`),
* control the processing length of any job it created with
  ``length=None``: the engine asks for the commit time at the job's start
  (:meth:`length_decision_time`, defaulting to the paper's
  "one time unit after it is started") and for the value at that time
  (:meth:`assign_length`).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..core.columnar import JobBatch
from ..core.engine import AdversaryResponse
from ..core.job import Job

__all__ = ["BaseAdversary", "AdversaryResponse"]


class BaseAdversary:
    """Inert adversary: releases nothing, assigns nothing.

    Concrete adversaries override the relevant hooks.  The class also
    centralises the length-commit delay used by §3.1 ("each job is
    assigned the processing length 1 time unit after it is started").
    """

    #: Delay between a job's start and its length commitment.
    assignment_delay: float = 1.0

    def initial_jobs(self) -> Iterable[Job]:
        """Jobs released before the simulation starts."""
        return ()

    def on_start(self, job: Job, t: float) -> AdversaryResponse | None:
        """A job was started at time ``t``."""
        return None

    def on_completion(self, job: Job, t: float) -> AdversaryResponse | None:
        """A job completed at time ``t``."""
        return None

    def on_wakeup(self, t: float) -> AdversaryResponse | None:
        """A previously requested adversary wake-up fired."""
        return None

    def length_decision_time(self, job: Job, start: float) -> float:
        """When the length of an adversary-controlled job is committed."""
        return start + self.assignment_delay

    def assign_length(self, job: Job, t: float) -> float:
        """Commit the length of an adversary-controlled job.

        Must be overridden by adversaries that release such jobs.
        """
        raise NotImplementedError(
            f"{type(self).__name__} released a job with an adversary-"
            "controlled length but does not implement assign_length()"
        )

    # -- columnar batch hooks (optional) -----------------------------------
    # The columnar engine core offers whole same-time cohorts to the
    # adversary in one call.  The defaults return ``NotImplemented``,
    # which tells the core to fall back to the scalar hooks above,
    # one event at a time, in exactly the object core's order — so an
    # adversary that ignores this section behaves identically on both
    # cores.  An adversary that *does* override a batch hook asserts the
    # contract that the batch call is observationally equivalent to the
    # scalar calls it replaces (same state evolution, and a single
    # response equal to the merge of the per-job responses).  A batch
    # hook may also return ``NotImplemented`` per call to demand the
    # scalar path for one specific cohort (e.g. §3.1 when the earmarked
    # job is inside a completion cohort).

    def initial_batch(self) -> JobBatch | None:
        """Initial releases as a columnar batch, or ``None``.

        The columnar core prefers this over :meth:`initial_jobs`; the
        object core only ever calls :meth:`initial_jobs`.  Exactly one
        of the two is invoked per run, so release bookkeeping may live
        in a shared helper.
        """
        return None

    def on_start_batch(self, job_ids: Sequence[int], t: float) -> Any:
        """All of ``job_ids`` started at time ``t`` (cohort form)."""
        return NotImplemented

    def on_completion_batch(self, job_ids: Sequence[int], t: float) -> Any:
        """All of ``job_ids`` completed at time ``t`` (cohort form)."""
        return NotImplemented

    def assign_lengths_batch(self, job_ids: Sequence[int], t: float) -> Any:
        """Lengths for a same-time ASSIGN cohort, in ``job_ids`` order.

        Return an array/sequence of positive floats, or
        ``NotImplemented`` to fall back to per-job
        :meth:`assign_length` calls.
        """
        return NotImplemented

    def length_decision_times_batch(
        self, job_ids: Sequence[int], start: float
    ) -> Any:
        """Commit times for a cohort started at ``start``.

        The default vectorises ``start + assignment_delay`` — but only
        when :meth:`length_decision_time` itself is not overridden, so a
        subclass customising the scalar rule keeps exact behaviour
        without having to know about this hook.
        """
        if (
            type(self).length_decision_time
            is not BaseAdversary.length_decision_time
        ):
            return NotImplemented
        return [start + self.assignment_delay] * len(job_ids)


# Capability markers: the columnar core must know *before* gathering an
# ASSIGN cohort whether the adversary can take it whole (gathering is
# irreversible once the events are popped).  The inherited defaults are
# marked as fallbacks; overriding a hook clears the marker because the
# override is a different function object.
for _m in (
    BaseAdversary.on_start_batch,
    BaseAdversary.on_completion_batch,
    BaseAdversary.assign_lengths_batch,
):
    setattr(_m, "_repro_fallback", True)
del _m
