"""Base class for adaptive adversaries.

The paper's lower bounds (Theorems 3.3 and 4.1) are forced by *adaptive*
adversaries: the input revealed to the online scheduler depends on the
scheduler's own actions.  The engine supports this through the
:class:`~repro.core.engine.Adversary` protocol; this module provides a
convenience base class with inert defaults so concrete adversaries only
override what they need.

An adversary may:

* supply the initial job releases (:meth:`initial_jobs`),
* observe every start and completion and react by releasing further jobs
  or requesting wake-ups (:meth:`on_start`, :meth:`on_completion`,
  :meth:`on_wakeup`),
* control the processing length of any job it created with
  ``length=None``: the engine asks for the commit time at the job's start
  (:meth:`length_decision_time`, defaulting to the paper's
  "one time unit after it is started") and for the value at that time
  (:meth:`assign_length`).
"""

from __future__ import annotations

from typing import Iterable

from ..core.engine import AdversaryResponse
from ..core.job import Job

__all__ = ["BaseAdversary", "AdversaryResponse"]


class BaseAdversary:
    """Inert adversary: releases nothing, assigns nothing.

    Concrete adversaries override the relevant hooks.  The class also
    centralises the length-commit delay used by §3.1 ("each job is
    assigned the processing length 1 time unit after it is started").
    """

    #: Delay between a job's start and its length commitment.
    assignment_delay: float = 1.0

    def initial_jobs(self) -> Iterable[Job]:
        """Jobs released before the simulation starts."""
        return ()

    def on_start(self, job: Job, t: float) -> AdversaryResponse | None:
        """A job was started at time ``t``."""
        return None

    def on_completion(self, job: Job, t: float) -> AdversaryResponse | None:
        """A job completed at time ``t``."""
        return None

    def on_wakeup(self, t: float) -> AdversaryResponse | None:
        """A previously requested adversary wake-up fired."""
        return None

    def length_decision_time(self, job: Job, start: float) -> float:
        """When the length of an adversary-controlled job is committed."""
        return start + self.assignment_delay

    def assign_length(self, job: Job, t: float) -> float:
        """Commit the length of an adversary-controlled job.

        Must be overridden by adversaries that release such jobs.
        """
        raise NotImplementedError(
            f"{type(self).__name__} released a job with an adversary-"
            "controlled length but does not implement assign_length()"
        )
