"""Performance layer: parallel fan-out, reference memoization, benchmarks.

Three orthogonal tools, one goal — make the empirical harness scale to
the paper's adversarial constructions and beyond:

* :mod:`repro.perf.parallel` — :class:`ParallelRunner`, a deterministic
  ordered process-pool map with chunked dispatch and graceful serial
  fallback, used by ``workloads.sweep.run_grid`` and
  ``analysis.montecarlo.estimate_expected_ratio`` (``REPRO_WORKERS``).
* :mod:`repro.perf.cache` — :class:`ReferenceCache`, content-addressed
  memoization of expensive offline references
  (``exact_optimal_span`` / ``span_lower_bound`` / ``lp_lower_bound``)
  with an in-memory LRU and an optional on-disk JSON tier
  (``REPRO_CACHE_DIR``, ``REPRO_CACHE=0`` to disable).
* :mod:`repro.perf.bench` — the pinned micro/macro suite behind
  ``python -m repro bench``, writing ``BENCH_perf.json`` so every PR's
  engine throughput is comparable to the last.
"""

from .bench import BenchRecord, main as bench_main, run_bench
from .cache import (
    CachedReference,
    ReferenceCache,
    cached_reference,
    get_default_cache,
    instance_fingerprint,
    reset_default_cache,
)
from .parallel import (
    WORKERS_ENV,
    ParallelRunner,
    RunnerStats,
    chunked,
    derive_seed,
    get_default_runner,
    resolve_workers,
)

__all__ = [
    "BenchRecord",
    "CachedReference",
    "ParallelRunner",
    "ReferenceCache",
    "RunnerStats",
    "WORKERS_ENV",
    "bench_main",
    "cached_reference",
    "chunked",
    "derive_seed",
    "get_default_cache",
    "get_default_runner",
    "instance_fingerprint",
    "reset_default_cache",
    "resolve_workers",
    "run_bench",
]
