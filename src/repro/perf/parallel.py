"""Process-pool fan-out for embarrassingly parallel experiment grids.

Every empirical harness in this repository reduces to the same shape:
``map(run_one, tasks)`` over independent ``(scheduler, instance)`` cells
or Monte-Carlo trials.  :class:`ParallelRunner` centralises that map with
three hard guarantees:

* **Determinism** — results are returned in task-submission order and
  every task carries its own pre-derived seed (:func:`derive_seed`), so
  parallel output is *bit-identical* to serial output regardless of
  worker count, chunking, or completion order.
* **Graceful degradation** — when ``workers <= 1``, when the callable or
  any task fails a pickling pre-flight (closures, lambdas, bound adaptive
  adversaries…), or when the host refuses to spawn processes (sandboxes,
  restricted containers), the runner silently executes serially and
  records why in :attr:`ParallelRunner.last_stats`.  Only pool
  *infrastructure* failures degrade this way; an exception raised by a
  task inside a worker propagates with its original traceback and each
  task runs at most once.
* **Chunked dispatch** — tasks are shipped to workers in contiguous
  chunks (default: ~4 chunks per worker) to amortise pickling and
  process-hop overhead on fine-grained grids.

The worker count defaults to the ``REPRO_WORKERS`` environment variable
(``0``/``auto`` ⇒ all cores; unset ⇒ ``1`` = serial), so test suites and
benches opt in without code changes.

Observability
-------------
When the ambient recorder is armed (``REPRO_TRACE=1``), the runner
reports sweep progress and streams worker metrics back to the parent:

* every completed task bumps the ``runner.tasks_completed`` counter —
  in the worker's own ambient recorder under the pool (workers inherit
  the environment, so they arm themselves), directly in the parent's
  when serial;
* :func:`_run_chunk` ships each worker's metrics *delta*
  (``metrics_snapshot(reset=True)``) back with the chunk's results, and
  the parent merges the snapshots **in submission order** after every
  future has succeeded — so parallel and serial runs of the same grid
  produce identical merged counters, gauges, and histogram bucket
  counts (histogram *sums* agree only to float rounding: cross-process
  addition is not associative), and a pool that fails mid-flight falls
  back to serial without double-counting partial worker metrics.
  Worker processes start from a fresh recorder (``_worker_init``), so
  the ``fork`` start method cannot re-ship the parent's own metrics.

Structured *records* (spans, instants, decisions) stay in the worker
processes — only metrics cross the process boundary.  Trace a single
cell serially when you need per-event records.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterable, Sequence, TypeVar

from ..obs.runtime import get_recorder

__all__ = [
    "WORKERS_ENV",
    "ParallelRunner",
    "RunnerStats",
    "chunked",
    "derive_seed",
    "get_default_runner",
    "resolve_workers",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable controlling the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Pool-*infrastructure* failures that justify the serial fallback:
#: a broken executor (worker died, pool unusable), the OS refusing to
#: spawn processes (sandboxes, rlimits), or payloads/results that fail
#: to (un)pickle.  Task exceptions are deliberately NOT in this tuple —
#: they propagate out of :meth:`ParallelRunner.map` with their original
#: traceback instead of triggering a silent full serial re-run.
_POOL_FAILURES: tuple[type[BaseException], ...] = (
    BrokenExecutor,
    OSError,
    pickle.PicklingError,
    pickle.UnpicklingError,
)


def resolve_workers(workers: int | str | None) -> int:
    """Normalise a worker specification to a positive integer.

    ``None`` reads :data:`WORKERS_ENV` (default ``1`` = serial);
    ``0`` or ``"auto"`` means *all cores*; anything else must be a
    positive integer.
    """
    if workers is None:
        workers = os.environ.get(WORKERS_ENV, "1")
    if isinstance(workers, str):
        spec = workers.strip().lower()
        if spec in ("auto", ""):
            workers = 0
        else:
            try:
                workers = int(spec)
            except ValueError:
                raise ValueError(
                    f"invalid worker count {workers!r} (int, 'auto', or 0)"
                ) from None
    if workers == 0:
        return max(os.cpu_count() or 1, 1)
    if workers < 0:
        raise ValueError(f"worker count must be >= 0, got {workers}")
    return workers


def derive_seed(base_seed: int, index: int) -> int:
    """A stable, collision-resistant per-task seed.

    Independent of worker count and execution order (it only hashes the
    pair), so parallel and serial runs draw identical random streams.
    """
    digest = hashlib.sha256(f"repro:{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def chunked(seq: Sequence[T], size: int) -> list[list[T]]:
    """Split ``seq`` into contiguous chunks of at most ``size`` items."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    return [list(seq[i : i + size]) for i in range(0, len(seq), size)]


def _worker_init() -> None:
    """Pool-worker initializer: start from a *fresh* recorder.

    Under the ``fork`` start method a worker inherits the parent's
    ambient recorder — including every metric the parent has already
    accumulated — so the worker's first ``metrics_snapshot(reset=True)``
    would ship the parent's own numbers back for a second counting.
    Swapping in a fresh recorder of the same armed-ness (armed stays
    armed, disarmed stays disarmed) makes fork behave like spawn: each
    worker streams only the metrics it produced itself.
    """
    from ..obs.recorder import NULL_RECORDER, TraceRecorder
    from ..obs.runtime import set_recorder

    set_recorder(TraceRecorder() if get_recorder().enabled else NULL_RECORDER)


def _run_chunk(
    fn: Callable[[T], R], chunk: list[T]
) -> tuple[list[R], dict[str, Any] | None]:
    """Worker-side body: apply ``fn`` to one chunk (must stay top-level
    so it is picklable under the spawn start method).

    Returns the chunk's results plus the worker's metrics *delta* since
    its previous chunk (``None`` when the worker's ambient recorder is
    disarmed), so per-task metrics stream back to the parent for merging.
    """
    obs = get_recorder()
    if not obs.enabled:
        return [fn(task) for task in chunk], None
    results: list[R] = []
    for task in chunk:
        results.append(fn(task))
        obs.counter_add("runner.tasks_completed")
    return results, obs.metrics_snapshot(reset=True)


@dataclass
class RunnerStats:
    """Telemetry for the most recent :meth:`ParallelRunner.map` call."""

    mode: str = "serial"  # "serial" | "parallel"
    reason: str = ""  # why serial was chosen, when it was
    workers: int = 1
    tasks: int = 0
    chunks: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "reason": self.reason,
            "workers": self.workers,
            "tasks": self.tasks,
            "chunks": self.chunks,
        }


@dataclass
class ParallelRunner:
    """Deterministic ordered map over independent tasks.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` reads ``REPRO_WORKERS`` (default 1),
        ``0``/``"auto"`` uses all cores, ``1`` forces serial execution.
    chunk_size:
        Tasks per worker chunk; ``None`` picks ``ceil(n / (4·workers))``.
    min_parallel_tasks:
        Grids smaller than this always run serially (process start-up
        costs more than it saves).
    """

    workers: int | str | None = None
    chunk_size: int | None = None
    min_parallel_tasks: int = 4
    last_stats: RunnerStats = field(default_factory=RunnerStats, repr=False)

    def __post_init__(self) -> None:
        self.workers = resolve_workers(self.workers)

    # ------------------------------------------------------------------ api
    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task, returning results in task order.

        Falls back to serial execution (recording the reason) whenever the
        pool cannot be used; the output is identical either way.
        """
        task_list = list(tasks)
        n = len(task_list)
        # Resolved in __post_init__; re-resolving is a typed no-op for ints.
        workers = resolve_workers(self.workers)

        if workers <= 1:
            return self._serial(fn, task_list, "workers<=1")
        if n < self.min_parallel_tasks:
            return self._serial(fn, task_list, f"fewer than {self.min_parallel_tasks} tasks")
        if not self._picklable(fn, task_list):
            return self._serial(fn, task_list, "callable or task not picklable")

        size = self.chunk_size or max(1, -(-n // (workers * 4)))
        chunks = chunked(task_list, size)
        try:
            results = self._pool_map(fn, chunks, min(workers, len(chunks)))
        except _POOL_FAILURES as exc:
            # Pool *infrastructure* failure only (sandboxed host refusing
            # to spawn, worker processes dying, un-picklable payloads that
            # slipped past the pre-flight): fall back to serial.  A task
            # exception raised inside a worker is NOT caught here — it
            # propagates with its original traceback, because silently
            # re-running the whole grid serially would double side effects
            # and mislabel a deterministic bug as "pool unavailable".
            return self._serial(fn, task_list, f"pool unavailable: {type(exc).__name__}")
        self.last_stats = RunnerStats(
            mode="parallel", workers=workers, tasks=n, chunks=len(chunks)
        )
        return results

    def starmap(self, fn: Callable[..., R], tasks: Iterable[tuple[Any, ...]]) -> list[R]:
        """Like :meth:`map` for callables taking positional arguments."""
        return self.map(_StarCall(fn), list(tasks))

    # ------------------------------------------------------------- internals
    def _serial(self, fn: Callable[[T], R], tasks: list[T], reason: str) -> list[R]:
        self.last_stats = RunnerStats(
            mode="serial", reason=reason, workers=1, tasks=len(tasks), chunks=1
        )
        obs = get_recorder()
        if not obs.enabled:
            return [fn(task) for task in tasks]
        results: list[R] = []
        with obs.span("runner.map", mode="serial", reason=reason, tasks=len(tasks)):
            for task in tasks:
                results.append(fn(task))
                obs.counter_add("runner.tasks_completed")
        return results

    @staticmethod
    def _picklable(fn: Callable[..., Any], tasks: list[Any]) -> bool:
        try:
            pickle.dumps(fn)
            for task in tasks:
                pickle.dumps(task)
        except Exception:
            return False
        return True

    @staticmethod
    def _pool_map(
        fn: Callable[[T], R], chunks: list[list[T]], workers: int
    ) -> list[R]:
        from concurrent.futures import ProcessPoolExecutor

        obs = get_recorder()
        results: list[R] = []
        snapshots: list[dict[str, Any] | None] = []
        with obs.span(
            "runner.map", mode="parallel", workers=workers, chunks=len(chunks)
        ):
            with ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init
            ) as pool:
                futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
                for future in futures:  # submission order == task order
                    chunk_results, snapshot = future.result()
                    results.extend(chunk_results)
                    snapshots.append(snapshot)
        # Merge worker metric deltas only once every future has succeeded:
        # a pool failure falls back to serial re-execution, and merging
        # partial worker metrics first would double-count that work.
        if obs.enabled:
            for snapshot in snapshots:
                obs.merge_metrics(snapshot)
            obs.gauge_set("runner.workers", float(workers))
        return results


class _StarCall(Generic[R]):
    """Picklable adapter turning ``fn(*args)`` into ``g(args)``."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., R]) -> None:
        self.fn = fn

    def __call__(self, args: tuple[Any, ...]) -> R:
        return self.fn(*args)


def get_default_runner() -> ParallelRunner:
    """A fresh runner honouring the current ``REPRO_WORKERS`` setting.

    Built per call (cheap) so tests and benches can flip the environment
    variable between runs without stale state.
    """
    return ParallelRunner(workers=None)
