"""Content-addressed memoization of expensive offline references.

Sweeps and experiments repeatedly evaluate the same offline reference —
``exact_optimal_span`` (exponential branch-and-bound),
``span_lower_bound``, ``lp_lower_bound`` — on the *same* instances:
every scheduler in a grid shares the instance family, every CLI rerun
regenerates the same seeded workloads.  :class:`ReferenceCache` makes
those recomputations free.

Keys are **content-addressed**: :func:`instance_fingerprint` hashes the
canonical job data (id, arrival, deadline, length, size) — *not* the
instance name — so two structurally identical instances share an entry
and any change to any job field invalidates it.  Entries live in an
in-memory LRU and, optionally, a JSON store on disk that persists across
processes (the parallel runner's workers and repeated CLI invocations
then share one reference table).

Environment knobs
-----------------
``REPRO_CACHE_DIR``  — directory for the on-disk store (enables disk
persistence for the default cache when set).
``REPRO_CACHE``      — set to ``0`` to disable the default cache
entirely (every lookup recomputes).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from ..core.job import Instance

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENABLE_ENV",
    "CachedReference",
    "ReferenceCache",
    "cached_reference",
    "get_default_cache",
    "instance_fingerprint",
    "reset_default_cache",
]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_ENABLE_ENV = "REPRO_CACHE"

DEFAULT_MAXSIZE = 4096
_STORE_FILENAME = "reference_cache.json"


def instance_fingerprint(instance: Instance) -> str:
    """A stable content hash of an instance's job data.

    Canonicalises each job to ``(id, arrival, deadline, length, size)``
    with floats rendered via ``repr`` (round-trip exact), sorts by id,
    and SHA-256 hashes the result.  The instance *name* is deliberately
    excluded — the cache is content-addressed.
    """
    items = sorted(
        (j.id, repr(j.arrival), repr(j.deadline), repr(j.length), repr(j.size))
        for j in instance.jobs
    )
    payload = json.dumps(items, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


class ReferenceCache:
    """``(kind, fingerprint) -> float`` store with LRU + optional disk tier.

    Parameters
    ----------
    maxsize:
        In-memory LRU capacity (oldest entries evicted first).
    path:
        Optional directory for a write-through JSON store.  Loaded
        lazily; writes are atomic (tempfile + rename) so concurrent
        processes never observe a torn file.
    """

    def __init__(
        self, maxsize: int = DEFAULT_MAXSIZE, path: str | Path | None = None
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._mem: OrderedDict[str, float] = OrderedDict()
        self._path = Path(path) / _STORE_FILENAME if path is not None else None
        self._disk_loaded = False
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ api
    def get(self, kind: str, fingerprint: str) -> float | None:
        """The cached value, or ``None`` on a miss (counters updated)."""
        key = f"{kind}:{fingerprint}"
        value = self._mem.get(key)
        if value is None and self._path is not None:
            value = self._disk_store().get(key)
            if value is not None:
                self._remember(key, value)  # promote to memory
        if value is None:
            self.misses += 1
            return None
        self._mem.move_to_end(key, last=True)
        self.hits += 1
        return value

    def put(self, kind: str, fingerprint: str, value: float) -> None:
        """Store a value in memory and (if configured) on disk."""
        key = f"{kind}:{fingerprint}"
        self._remember(key, float(value))
        if self._path is not None:
            store = self._disk_store()
            store[key] = float(value)
            self._flush(store)

    def compute(
        self, kind: str, instance: Instance, fn: Callable[[Instance], float]
    ) -> float:
        """Memoised ``fn(instance)`` under fingerprint addressing."""
        fp = instance_fingerprint(instance)
        cached = self.get(kind, fp)
        if cached is not None:
            return cached
        value = fn(instance)
        self.put(kind, fp, value)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry and reset counters (disk untouched)."""
        self._mem.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int | float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._mem),
            "hit_rate": self.hits / total if total else 0.0,
        }

    def __len__(self) -> int:
        return len(self._mem)

    # ------------------------------------------------------------- internals
    def _remember(self, key: str, value: float) -> None:
        self._mem[key] = value
        self._mem.move_to_end(key, last=True)
        while len(self._mem) > self.maxsize:
            self._mem.popitem(last=False)

    def _disk_store(self) -> dict[str, float]:
        if not self._disk_loaded:
            self._disk: dict[str, float] = {}
            if self._path is not None and self._path.exists():
                try:
                    raw = json.loads(self._path.read_text())
                    if isinstance(raw, dict):
                        self._disk = {str(k): float(v) for k, v in raw.items()}
                except (OSError, ValueError):
                    self._disk = {}  # corrupt store: start fresh
            self._disk_loaded = True
        return self._disk

    def _flush(self, store: dict[str, float]) -> None:
        assert self._path is not None
        tmp: str | None = None
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self._path.parent), prefix=".refcache-", suffix=".json"
            )
            with os.fdopen(fd, "w") as f:
                json.dump(store, f)
            os.replace(tmp, self._path)
        except OSError:
            pass  # disk tier is best-effort; memory tier still holds the value
        finally:
            # A failed os.replace (or a write error after mkstemp) must
            # not leak the temp file into the cache directory.
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass  # already renamed away (the success path)


class CachedReference:
    """A picklable, cache-backed ``Instance -> float`` reference callable.

    Wraps a top-level reference function; fixed keyword arguments are
    folded into the cache ``kind`` so differently parameterised wrappers
    never collide.  Pickling drops the cache binding (workers rebuild
    their own default cache), keeping the wrapper process-pool friendly.
    """

    __slots__ = ("fn", "kind", "kwargs", "_cache")

    def __init__(
        self,
        fn: Callable[..., float],
        *,
        kind: str | None = None,
        cache: ReferenceCache | None = None,
        **kwargs: Any,
    ) -> None:
        self.fn = fn
        self.kwargs = dict(sorted(kwargs.items()))
        suffix = (
            "" if not self.kwargs
            else "[" + ",".join(f"{k}={v!r}" for k, v in self.kwargs.items()) + "]"
        )
        self.kind = (kind or getattr(fn, "__name__", "reference")) + suffix
        self._cache = cache

    @property
    def cache(self) -> ReferenceCache | None:
        """The bound cache, the process default, or ``None`` when disabled."""
        return self._cache if self._cache is not None else get_default_cache()

    def __call__(self, instance: Instance) -> float:
        cache = self.cache
        if cache is None:  # caching globally disabled
            return self.fn(instance, **self.kwargs)
        return cache.compute(
            self.kind, instance, lambda inst: self.fn(inst, **self.kwargs)
        )

    def __getstate__(self) -> tuple[Callable[..., float], str, dict[str, Any]]:
        return (self.fn, self.kind, self.kwargs)

    def __setstate__(
        self, state: tuple[Callable[..., float], str, dict[str, Any]]
    ) -> None:
        self.fn, self.kind, self.kwargs = state
        self._cache = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachedReference({self.kind})"


def cached_reference(
    fn: Callable[..., float],
    *,
    kind: str | None = None,
    cache: ReferenceCache | None = None,
    **kwargs: Any,
) -> CachedReference:
    """Wrap a reference function with fingerprint memoization.

    >>> from repro.offline import span_lower_bound
    >>> ref = cached_reference(span_lower_bound)  # doctest: +SKIP
    """
    return CachedReference(fn, kind=kind, cache=cache, **kwargs)


_default_cache: ReferenceCache | None = None
_default_cache_config: tuple[str | None, str | None] | None = None


def get_default_cache() -> ReferenceCache | None:
    """The process-wide cache, or ``None`` when ``REPRO_CACHE=0``.

    Rebuilt automatically when the governing environment variables
    change (tests flip them via ``monkeypatch``).
    """
    global _default_cache, _default_cache_config
    config = (os.environ.get(CACHE_ENABLE_ENV), os.environ.get(CACHE_DIR_ENV))
    if config != _default_cache_config:
        _default_cache_config = config
        enable, cache_dir = config
        if enable is not None and enable.strip().lower() in ("0", "off", "false", "no"):
            _default_cache = None
        else:
            _default_cache = ReferenceCache(path=cache_dir or None)
    return _default_cache


def reset_default_cache() -> None:
    """Forget the process-wide cache (next access rebuilds from env)."""
    global _default_cache, _default_cache_config
    _default_cache = None
    _default_cache_config = None
