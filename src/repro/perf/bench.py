"""The repo's perf trajectory: a fixed micro/macro benchmark suite.

``python -m repro bench`` (or the ``fjs-bench`` console script) times a
pinned set of cases and writes ``BENCH_perf.json`` so successive PRs can
compare like against like.  Each record follows the schema

    {"case": str, "events": int, "wall_s": float, "events_per_s": float}

and the payload carries a ``provenance`` block (git SHA,
``REPRO_WORKERS``, whether a structured recorder was armed) so a bench
number can always be traced back to the tree and configuration that
produced it.  Numbers timed with ``REPRO_TRACE=1`` are *not* comparable
to disarmed runs — the recorder adds per-event work — which is exactly
why the recorder state is part of the provenance.  An existing output
file written under a *different* schema version is never silently
overwritten: pass ``--force`` to replace it (``repro obs diff`` consumes
these files, and a silent schema change would corrupt the trend line).

Cases
-----
micro/event_queue
    Raw :class:`~repro.core.events.EventQueue` push/pop throughput —
    isolates the heap from scheduler logic.
micro/eager_uniform · micro/batch_uniform
    The simulator on a seeded synthetic workload under a trivial and a
    batching scheduler — the common-path per-event cost.
macro/e1_paper_k2_batch · macro/e1_paper_k2_batch_plus
    The paper's §3.1 adversary at the doubly-exponential profile, k=2:
    65 808 jobs / 263 218 events through Batch and Batch+.  These are
    the cases the columnar engine core is tracked against — both
    schedulers take the vectorised cohort-start path (``--quick``
    substitutes the k=1 profile, 16 jobs, for CI smoke runs).
macro/e5_cdb_alpha2
    CDB (clairvoyant, α=2) over the seeded E5-style synthetic workload:
    live per-job hooks on every event, pinning the *scalar* path of the
    columnar core so a gathering regression can't hide behind it.
serve/stdio_two_tenants
    Two interleaved tenant streams of JSONL ops pushed synchronously
    through the serving layer's protocol + session path (``parse_op`` →
    ``TenantSession.apply``) — the per-op cost of ``repro serve
    --stdio`` minus the event loop, counted in output records/s.
serve/telemetry_armed
    The same two-tenant serve workload with the live telemetry plane
    armed (per-tenant span/ratio aggregation riding the record feed,
    plus periodic full snapshots) — pins the cost of ``REPRO_TELEMETRY``
    so the O(1)-amortized incremental OPT lower bound stays O(1).

Timing protocol: every case runs ``repeat`` times (default 3) after one
untimed warm-up iteration for the micro cases; the **best** wall time is
reported (standard practice for throughput benchmarking — the minimum is
the least noisy estimator of the true cost).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

__all__ = [
    "BENCH_SCHEMA",
    "E1_K2_BASELINE_EVENTS_PER_S",
    "E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S",
    "RATCHET_MARGIN",
    "SERVE_STDIO_BASELINE_EVENTS_PER_S",
    "SERVE_TELEMETRY_BASELINE_EVENTS_PER_S",
    "BenchRecord",
    "bench_cases",
    "bench_provenance",
    "check_ratchet",
    "run_bench",
    "main",
]

DEFAULT_OUT = "BENCH_perf.json"

#: The payload schema identifier.  v2 added the ``provenance`` block
#: (git SHA, REPRO_WORKERS, recorder state); v1 was the bare
#: ``{case, events, wall_s, events_per_s}`` rows.
BENCH_SCHEMA = "v2:{case, events, wall_s, events_per_s} + provenance"

#: Wall-clock events/s of ``macro/e1_paper_k2_batch`` measured on the
#: pre-optimisation engine (dataclass-comparison heap, per-event getattr
#: dispatch) — the reference point for the engine-optimisation claim.
E1_K2_BASELINE_EVENTS_PER_S = 111_846.0

#: The *ratcheted* floor for ``macro/e1_paper_k2_batch`` under the
#: columnar core (the reference machine measured 613 850 ev/s; the floor
#: is set below that to absorb machine variance but far above the
#: 295 000 ev/s the object core tops out at, so any silent fallback to
#: the scalar path trips it).  CI fails the perf-ratchet job when the
#: measured rate drops more than 10% below this.
E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S = 450_000.0

#: Ratcheted floor for ``serve/stdio_two_tenants`` — output records/s
#: through the synchronous protocol + session path (the reference
#: machine measured ≈85 000 rec/s; the floor absorbs machine variance
#: while still tripping on an accidental O(n²) in ``parse_op``,
#: ``TenantSession.apply``, or the record-delivery path).  Checked by
#: :func:`check_ratchet` whenever the case is part of the run.
SERVE_STDIO_BASELINE_EVENTS_PER_S = 35_000.0

#: Ratcheted floor for ``serve/telemetry_armed`` — the same two-tenant
#: protocol + session workload with the live telemetry plane armed
#: (:class:`repro.obs.live.TenantTelemetry` per session, periodic
#: aggregator snapshots).  Set below the disarmed floor by roughly the
#: tolerated telemetry overhead: a drop past it means the per-record
#: feed or the incremental OPT lower bound stopped being O(1)-amortized.
SERVE_TELEMETRY_BASELINE_EVENTS_PER_S = 32_000.0


@dataclass(frozen=True)
class BenchRecord:
    """One timed case (the ``BENCH_perf.json`` row schema)."""

    case: str
    events: int
    wall_s: float
    events_per_s: float


# --------------------------------------------------------------------- cases
def _bench_event_queue(n: int) -> int:
    """Push/pop ``n`` interleaved events; returns events processed."""
    from ..core.events import EventKind, EventQueue

    q = EventQueue()
    push = q.push
    kinds = (EventKind.ARRIVAL, EventKind.COMPLETION, EventKind.TIMER)
    for i in range(n):
        push((i * 2654435761) % 1_000_003 / 7.0, kinds[i % 3], i)
    pops = 0
    pop = q.pop_raw
    while q:
        pop()
        pops += 1
    return n + pops


def _bench_simulate(scheduler_name: str, jobs: int, seed: int) -> int:
    """Run one scheduler over a seeded synthetic workload."""
    from ..core.engine import simulate
    from ..schedulers import make_scheduler
    from ..workloads import WorkloadSpec, generate

    spec = WorkloadSpec(n=jobs, laxity_scale=2.0, length_high=10.0)
    inst = generate(spec, seed=seed)
    sched = make_scheduler(scheduler_name)
    result = simulate(
        sched, inst, clairvoyant=type(sched).requires_clairvoyance
    )
    return result.events_processed


def _bench_e1_macro(k: int, scheduler: str = "batch") -> int:
    """The §3.1 adversary with the paper's doubly-exponential profile."""
    from ..adversaries import NonClairvoyantLowerBoundAdversary, paper_profile
    from ..core.engine import simulate
    from ..schedulers import Batch, BatchPlus

    sched = Batch() if scheduler == "batch" else BatchPlus()
    adv = NonClairvoyantLowerBoundAdversary(5.0, paper_profile(k))
    result = simulate(sched, adversary=adv, clairvoyant=False)
    return result.events_processed


def _bench_e5_cdb(jobs: int, seed: int, alpha: float = 2.0) -> int:
    """CDB (clairvoyant, α=2) on the seeded E5-style synthetic workload.

    CDB keeps ``on_arrival``/``on_deadline``/``on_completion`` hooks
    live, so this case pins the *scalar* (non-gathering) path of the
    columnar core — the counterweight to the batch-family macros.
    """
    from ..core.engine import simulate
    from ..schedulers import ClassifyByDurationBatchPlus
    from ..workloads import WorkloadSpec, generate

    spec = WorkloadSpec(n=jobs, laxity_scale=2.0, length_high=10.0)
    inst = generate(spec, seed=seed)
    result = simulate(
        ClassifyByDurationBatchPlus(alpha=alpha), inst, clairvoyant=True
    )
    return result.events_processed


def _bench_serve_two_tenants(
    jobs_per_tenant: int, *, telemetry: bool = False, snapshot_every: int = 0
) -> int:
    """Two interleaved tenant streams through the serving layer.

    Feeds JSONL job ops alternating between tenants ``a`` and ``b``
    through ``parse_op`` → :meth:`TenantSession.apply`, then closes
    both.  Synchronous on purpose: it times the protocol + session
    layers themselves (the work `repro serve --stdio` does per op),
    not asyncio scheduling.  Returns the output-record count.

    ``telemetry=True`` arms the live telemetry plane (a
    :class:`repro.obs.live.TenantTelemetry` per session, exactly as the
    daemon wires it), and ``snapshot_every`` additionally renders a full
    aggregator snapshot every that-many job indices — the cost a scrape
    of the daemon's ``/snapshot`` endpoint adds.  ``repro obs overhead
    --telemetry`` times the armed/disarmed pair of this workload.
    """
    from ..obs.live import LiveAggregator
    from ..serve.protocol import parse_op
    from ..serve.session import TenantSession

    live = LiveAggregator() if telemetry else None
    sessions = {
        name: TenantSession(
            name, telemetry=live.tenant(name) if live is not None else None
        )
        for name in ("a", "b")
    }
    records = 0
    for session in sessions.values():
        records += len(session.hello())
    for i in range(jobs_per_tenant):
        arrival = float(i)
        for tenant in ("a", "b"):
            line = (
                f'{{"op": "job", "tenant": "{tenant}", "id": {i},'
                f' "arrival": {arrival}, "length": 2.0,'
                f' "deadline": {arrival + 6.0}}}'
            )
            records += len(sessions[tenant].apply(parse_op(line)))
        if live is not None and snapshot_every and i % snapshot_every == 0:
            live.snapshot()
    for tenant in ("a", "b"):
        op = parse_op(f'{{"op": "close", "tenant": "{tenant}"}}')
        records += len(sessions[tenant].apply(op))
    if live is not None:
        live.snapshot()
    return records


def bench_cases(quick: bool) -> list[tuple[str, Callable[[], int]]]:
    """The pinned suite: ``(case name, zero-arg callable -> event count)``."""
    if quick:
        return [
            ("micro/event_queue", lambda: _bench_event_queue(20_000)),
            ("micro/eager_uniform", lambda: _bench_simulate("eager", 1_000, 7)),
            ("micro/batch_uniform", lambda: _bench_simulate("batch", 1_000, 7)),
            ("macro/e1_paper_k1_batch", lambda: _bench_e1_macro(1)),
            (
                "macro/e1_paper_k1_batch_plus",
                lambda: _bench_e1_macro(1, "batch+"),
            ),
            ("macro/e5_cdb_alpha2", lambda: _bench_e5_cdb(1_000, 11)),
            (
                "serve/stdio_two_tenants",
                lambda: _bench_serve_two_tenants(500),
            ),
            (
                "serve/telemetry_armed",
                lambda: _bench_serve_two_tenants(
                    500, telemetry=True, snapshot_every=100
                ),
            ),
        ]
    return [
        ("micro/event_queue", lambda: _bench_event_queue(200_000)),
        ("micro/eager_uniform", lambda: _bench_simulate("eager", 5_000, 7)),
        ("micro/batch_uniform", lambda: _bench_simulate("batch", 5_000, 7)),
        ("macro/e1_paper_k2_batch", lambda: _bench_e1_macro(2)),
        (
            "macro/e1_paper_k2_batch_plus",
            lambda: _bench_e1_macro(2, "batch+"),
        ),
        ("macro/e5_cdb_alpha2", lambda: _bench_e5_cdb(5_000, 11)),
        (
            "serve/stdio_two_tenants",
            lambda: _bench_serve_two_tenants(2_500),
        ),
        (
            "serve/telemetry_armed",
            lambda: _bench_serve_two_tenants(
                2_500, telemetry=True, snapshot_every=250
            ),
        ),
    ]


# ------------------------------------------------------------------- harness
def _git_sha() -> str:
    """The current commit SHA (``"unknown"`` outside a git checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def bench_provenance() -> dict[str, Any]:
    """The provenance block: what tree/configuration produced the numbers."""
    from ..obs.runtime import get_recorder

    return {
        "git_sha": _git_sha(),
        "workers": os.environ.get("REPRO_WORKERS", "").strip() or None,
        "recorder_armed": get_recorder().enabled,
    }


def _time_case(fn: Callable[[], int], repeat: int, warmup: bool) -> tuple[int, float]:
    """Best-of-``repeat`` wall time; returns ``(events, wall_s)``."""
    if warmup:
        fn()
    best = float("inf")
    events = 0
    for _ in range(max(repeat, 1)):
        t0 = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
    return events, best


def _check_overwrite(out: Path, force: bool) -> None:
    """Refuse to overwrite an ``out`` written under a different schema.

    A corrupt/unparseable existing file is also protected (it is not
    ours to destroy); ``force=True`` overrides in both cases.
    """
    if force or not out.exists():
        return
    try:
        existing = json.loads(out.read_text(encoding="utf-8"))
        schema = existing.get("schema") if isinstance(existing, dict) else None
    except (OSError, json.JSONDecodeError):
        schema = None
    if schema != BENCH_SCHEMA:
        raise FileExistsError(
            f"{out} exists with schema {schema!r} (current: {BENCH_SCHEMA!r}); "
            "refusing to overwrite a different-schema bench file — "
            "pass --force to replace it"
        )


def run_bench(
    *,
    quick: bool = False,
    repeat: int = 3,
    out: str | Path | None = DEFAULT_OUT,
    force: bool = False,
    case: str | None = None,
) -> list[BenchRecord]:
    """Run the suite; write ``out`` (unless ``None``); return the records.

    ``case`` restricts the run to cases whose name contains the given
    substring (the CI perf ratchet times only ``macro/e1_paper_k2_batch``
    this way instead of paying for the whole suite).

    Raises :class:`FileExistsError` when ``out`` already exists under a
    different (or unreadable) schema and ``force`` is false.  The
    overwrite check runs *before* the timing loop, so a refused write
    does not waste a full bench run.
    """
    if out is not None:
        _check_overwrite(Path(out), force)
    cases = bench_cases(quick)
    if case is not None:
        cases = [(name, fn) for name, fn in cases if case in name]
        if not cases:
            raise ValueError(f"--case {case!r} matches no bench case")
    records: list[BenchRecord] = []
    for name, fn in cases:
        warmup = name.startswith(("micro/", "serve/")) or quick
        events, wall = _time_case(fn, repeat, warmup)
        records.append(
            BenchRecord(
                case=name,
                events=events,
                wall_s=round(wall, 6),
                events_per_s=round(events / wall, 1) if wall > 0 else float("inf"),
            )
        )
    if out is not None:
        payload = {
            "schema": BENCH_SCHEMA,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": quick,
            "repeat": repeat,
            "provenance": bench_provenance(),
            "baselines": {
                "macro/e1_paper_k2_batch": E1_K2_BASELINE_EVENTS_PER_S,
                "macro/e1_paper_k2_batch/columnar_floor": (
                    E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S
                ),
                "serve/stdio_two_tenants/floor": (
                    SERVE_STDIO_BASELINE_EVENTS_PER_S
                ),
                "serve/telemetry_armed/floor": (
                    SERVE_TELEMETRY_BASELINE_EVENTS_PER_S
                ),
            },
            "results": [asdict(r) for r in records],
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return records


def render_records(records: Sequence[BenchRecord]) -> str:
    """Fixed-width text table for terminal output."""
    lines = [
        f"{'case':<28} {'events':>10} {'wall_s':>10} {'events/s':>12}",
        "-" * 64,
    ]
    for r in records:
        lines.append(
            f"{r.case:<28} {r.events:>10,} {r.wall_s:>10.4f} {r.events_per_s:>12,.0f}"
        )
        if r.case == "macro/e1_paper_k2_batch":
            factor = r.events_per_s / E1_K2_BASELINE_EVENTS_PER_S
            lines.append(
                f"{'':<28} vs pre-optimisation baseline "
                f"{E1_K2_BASELINE_EVENTS_PER_S:,.0f} ev/s: {factor:.2f}x"
            )
            floor = E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S
            lines.append(
                f"{'':<28} vs columnar ratchet floor "
                f"{floor:,.0f} ev/s: {r.events_per_s / floor:.2f}x"
            )
    return "\n".join(lines)


#: CI ratchet margin: fail only when the measured rate falls more than
#: this fraction below the recorded columnar floor.
RATCHET_MARGIN = 0.10


def check_ratchet(records: Sequence[BenchRecord]) -> str | None:
    """The perf-ratchet verdict.

    The primary gate is ``macro/e1_paper_k2_batch`` against
    :data:`E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S`; it must be part of
    the run (:class:`ValueError` otherwise — e.g. under ``--quick``,
    which substitutes the k=1 profile).  ``serve/stdio_two_tenants``
    and ``serve/telemetry_armed`` are additionally checked against
    :data:`SERVE_STDIO_BASELINE_EVENTS_PER_S` /
    :data:`SERVE_TELEMETRY_BASELINE_EVENTS_PER_S` whenever they were
    timed (CI's narrow ``--case macro/e1_paper_k2_batch`` run skips
    them).
    Returns ``None`` on pass, a human-readable failure message when a
    measured rate falls more than :data:`RATCHET_MARGIN` below its
    floor.
    """
    target = "macro/e1_paper_k2_batch"
    record = next((r for r in records if r.case == target), None)
    if record is None:
        raise ValueError(
            f"perf ratchet needs the {target} case in the run "
            "(it is absent from --quick; drop --quick or widen --case)"
        )
    floor = E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S * (1.0 - RATCHET_MARGIN)
    if record.events_per_s < floor:
        return (
            f"perf ratchet FAILED: {target} measured "
            f"{record.events_per_s:,.0f} ev/s < {floor:,.0f} ev/s "
            f"(recorded columnar baseline "
            f"{E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S:,.0f} "
            f"- {RATCHET_MARGIN:.0%} margin)"
        )
    serve_floors = {
        "serve/stdio_two_tenants": SERVE_STDIO_BASELINE_EVENTS_PER_S,
        "serve/telemetry_armed": SERVE_TELEMETRY_BASELINE_EVENTS_PER_S,
    }
    for case, baseline in serve_floors.items():
        serve = next((r for r in records if r.case == case), None)
        if serve is None:
            continue
        serve_floor = baseline * (1.0 - RATCHET_MARGIN)
        if serve.events_per_s < serve_floor:
            return (
                f"perf ratchet FAILED: {serve.case} measured "
                f"{serve.events_per_s:,.0f} rec/s < {serve_floor:,.0f} rec/s "
                f"(recorded serving-layer baseline "
                f"{baseline:,.0f} "
                f"- {RATCHET_MARGIN:.0%} margin)"
            )
    return None


def main(argv: Sequence[str] | None = None) -> int:
    """``fjs-bench`` entry point (also behind ``python -m repro bench``)."""
    parser = argparse.ArgumentParser(
        prog="fjs-bench",
        description="Time the pinned micro/macro suite and write BENCH_perf.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small parameters (CI smoke): k=1 macro case, 1k-job micros",
    )
    parser.add_argument("--repeat", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--out", type=str, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing output file even if its schema differs",
    )
    parser.add_argument(
        "--case",
        type=str,
        default=None,
        help="run only cases whose name contains this substring",
    )
    parser.add_argument(
        "--ratchet",
        action="store_true",
        help=(
            "exit non-zero when macro/e1_paper_k2_batch lands more than "
            f"{RATCHET_MARGIN:.0%} below the recorded columnar baseline "
            f"({E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S:,.0f} ev/s)"
        ),
    )
    args = parser.parse_args(argv)
    try:
        records = run_bench(
            quick=args.quick,
            repeat=args.repeat,
            out=args.out,
            force=args.force,
            case=args.case,
        )
    except (FileExistsError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_records(records))
    print(f"\nwrote {args.out}")
    if args.ratchet:
        try:
            verdict = check_ratchet(records)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if verdict is not None:
            print(verdict, file=sys.stderr)
            return 1
        print(
            "perf ratchet OK: macro/e1_paper_k2_batch holds the "
            "columnar baseline"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
