"""Flag-job structure analysis (Lemmas 4.5–4.10).

The Profit analysis builds a directed graph over the designated flag
jobs: for each flag ``J``, ``X(J)`` is the set of flags ``J'`` with
``a(J') < d(J) + p(J)`` and ``d(J) < d(J')`` (``J'`` arrives before ``J``
can be sure to have completed, yet starts later, hence was not
profitable to ``J``).  If ``X(J)`` is non-empty, an edge points from the
earliest-deadline member of ``X(J)`` to ``J``.  Lemma 4.7 proves the
graph is a collection of rooted trees; Lemma 4.9 shows flags in
different trees can never overlap under *any* scheduler.

This module reconstructs that graph from a finished simulation and
provides machine-checkable validators for the structural lemmas — used
by both the test suite and experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.job import Instance, Job

__all__ = [
    "FlagForest",
    "build_flag_forest",
    "check_lemma_4_6",
    "check_forest_property",
    "select_disjoint_flags",
    "flags_pairwise_disjoint",
]


@dataclass
class FlagForest:
    """The Lemma 4.7 graph over flag jobs.

    ``parent[j]`` is the flag id with an edge pointing *to* ``j`` (the
    earliest-deadline member of ``X(j)``); roots have no entry.
    """

    flags: list[Job]
    parent: dict[int, int] = field(default_factory=dict)
    x_sets: dict[int, list[int]] = field(default_factory=dict)

    @property
    def roots(self) -> list[int]:
        """Flag ids with ``X(J) = ∅``."""
        return [j.id for j in self.flags if j.id not in self.parent]

    def children(self, flag_id: int) -> list[int]:
        return sorted(j for j, p in self.parent.items() if p == flag_id)

    def tree_of(self, flag_id: int) -> set[int]:
        """All flag ids in the same rooted tree as ``flag_id``."""
        # Climb to the root, then collect the subtree.
        root = flag_id
        seen = {root}
        while root in self.parent:
            root = self.parent[root]
            if root in seen:  # pragma: no cover - Lemma 4.7 forbids cycles
                raise ValueError("cycle detected in flag graph")
            seen.add(root)
        tree = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in self.children(node):
                tree.add(child)
                frontier.append(child)
        return tree

    def trees(self) -> list[set[int]]:
        """The partition of flags into rooted trees."""
        return [self.tree_of(r) for r in self.roots]

    def height(self, root_id: int) -> int:
        """Edge-count height of the tree rooted at ``root_id``."""
        def depth(node: int) -> int:
            kids = self.children(node)
            if not kids:
                return 0
            return 1 + max(depth(c) for c in kids)

        return depth(root_id)


def build_flag_forest(instance: Instance, flag_ids: list[int]) -> FlagForest:
    """Construct the Lemma 4.7 graph for the designated flag jobs.

    ``instance`` must be the resolved instance (all lengths known) and
    ``flag_ids`` the scheduler's ``flag_job_ids``.
    """
    flags = [instance[j] for j in flag_ids]
    forest = FlagForest(flags=flags)
    for j in flags:
        latest_completion = j.deadline + j.known_length
        x = [
            j2
            for j2 in flags
            if j2.id != j.id
            and j2.arrival < latest_completion
            and j.deadline < j2.deadline
        ]
        forest.x_sets[j.id] = sorted(job.id for job in x)
        if x:
            parent = min(x, key=lambda job: (job.deadline, job.id))
            forest.parent[j.id] = parent.id
    return forest


def check_lemma_4_6(instance: Instance, flag_ids: list[int]) -> bool:
    """Lemma 4.6: among any two flags, the earlier-deadline one completes
    first **in the Profit schedule** (flags start at their deadlines, so
    completion order is the order of ``d + p``).

    Returns True when ``d(J1) < d(J2)`` implies
    ``d(J1) + p(J1) < d(J2) + p(J2)`` over all flag pairs.
    """
    flags = sorted((instance[j] for j in flag_ids), key=lambda j: j.deadline)
    for earlier, later in zip(flags, flags[1:]):
        if earlier.deadline + earlier.known_length >= later.deadline + later.known_length:
            return False
    return True


def check_forest_property(forest: FlagForest) -> bool:
    """Lemma 4.7: the graph is acyclic with in-degree at most one.

    In-degree ≤ 1 holds by construction (``parent`` is a dict); this
    verifies acyclicity by climbing from every node.
    """
    for j in forest.flags:
        seen = {j.id}
        node = j.id
        while node in forest.parent:
            node = forest.parent[node]
            if node in seen:
                return False
            seen.add(node)
    return True


def select_disjoint_flags(instance: Instance, flag_ids: list[int]) -> list[int]:
    """The Theorem 3.4 flag-subset selection.

    Given Batch's flag jobs ``J_1, J_2, …`` (increasing starting
    deadlines), the proof picks a subset whose active intervals cannot
    overlap under *any* scheduler: start with ``J_1``; after choosing
    ``J_i``, find the lowest-indexed flag ``J_j`` with
    ``d(J_j) >= d(J_i) + p(J_i)`` and choose ``J_{j+1}`` if it exists.
    The selected flags certify ``span_min >= Σ p`` over the subset, and
    Batch's own span is at most ``(2μ+1)`` times that sum.

    Returns the chosen flag ids in selection order.
    """
    flags = [instance[j] for j in flag_ids]
    if not flags:
        return []
    # Batch designates flags in deadline order already; enforce it.
    flags.sort(key=lambda j: (j.deadline, j.id))
    chosen = [flags[0]]
    idx = 0
    while True:
        current = chosen[-1]
        threshold = current.deadline + current.known_length
        j = None
        for pos in range(idx, len(flags)):
            if flags[pos].deadline >= threshold:
                j = pos
                break
        if j is None or j + 1 >= len(flags):
            break
        chosen.append(flags[j + 1])
        idx = j + 1
    return [j.id for j in chosen]


def flags_pairwise_disjoint(instance: Instance, flag_ids: list[int]) -> bool:
    """Whether the flags' active intervals are unoverlappable by any
    scheduler: in deadline order, each next flag arrives no earlier than
    the previous one's latest possible completion ``d + p``."""
    flags = sorted((instance[j] for j in flag_ids), key=lambda j: j.deadline)
    for a, b in zip(flags, flags[1:]):
        if b.arrival < a.deadline + a.known_length - 1e-12:
            return False
    return True
