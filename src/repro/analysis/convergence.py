"""Limit extrapolation for convergent ratio sequences.

The tightness families converge like ``r(m) = L - c/(m + b)`` (e.g.
Batch's ``2mμ/(m(1+ε)+μ) → 2μ``); measuring at finite ``m`` therefore
*systematically* understates the limit.  Fitting the model and reporting
the extrapolated ``L`` turns "ratio 9.80 at m=256, limit 10" into a
quantitative statement: "the measured sequence extrapolates to
L = 10.00 ± fit error".

Uses :func:`scipy.optimize.curve_fit`; falls back to Richardson-style
two-point extrapolation when SciPy is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LimitFit", "fit_limit"]


@dataclass(frozen=True)
class LimitFit:
    """Result of extrapolating a convergent sequence.

    ``limit`` is the fitted asymptote ``L``; ``stderr`` its standard
    error (NaN when not estimable); ``residual`` the max absolute model
    misfit over the data.
    """

    limit: float
    stderr: float
    residual: float
    method: str

    def consistent_with(self, value: float, *, slack: float = 3.0) -> bool:
        """Whether ``value`` lies within ``slack`` standard errors of the
        fitted limit (using the residual when stderr is unavailable)."""
        tolerance = (
            slack * self.stderr
            if np.isfinite(self.stderr) and self.stderr > 0
            else max(10 * self.residual, 1e-6 * max(1.0, abs(value)))
        )
        return abs(self.limit - value) <= tolerance


def _model(m: np.ndarray, L: float, c: float, b: float) -> np.ndarray:
    return L - c / (m + b)


def fit_limit(
    ms: Sequence[float], ratios: Sequence[float]
) -> LimitFit:
    """Fit ``r(m) = L - c/(m + b)`` and return the extrapolated limit.

    Needs at least three points; with exactly three, the model is solved
    exactly (zero residual), beyond that least-squares.
    """
    m = np.asarray(ms, dtype=np.float64)
    r = np.asarray(ratios, dtype=np.float64)
    if m.size != r.size or m.size < 3:
        raise ValueError("need at least three (m, ratio) points")
    if np.any(m <= 0):
        raise ValueError("m values must be positive")

    try:
        from scipy.optimize import curve_fit

        # Initial guess: L ≈ last ratio + one more increment, b ≈ 1.
        L0 = float(r[-1] + (r[-1] - r[-2] if m.size > 1 else 0.0))
        c0 = float((L0 - r[0]) * (m[0] + 1.0))
        popt, pcov = curve_fit(
            _model,
            m,
            r,
            p0=[L0, c0, 1.0],
            maxfev=20_000,
        )
        fitted = _model(m, *popt)
        residual = float(np.max(np.abs(fitted - r)))
        stderr = float(np.sqrt(pcov[0, 0])) if np.all(np.isfinite(pcov)) else float("nan")
        return LimitFit(
            limit=float(popt[0]),
            stderr=stderr,
            residual=residual,
            method="curve_fit",
        )
    except ImportError:  # pragma: no cover - scipy is a listed dev dep
        # Richardson-style: assume b=0, solve L from the last two points.
        m1, m2 = m[-2], m[-1]
        r1, r2 = r[-2], r[-1]
        L = (r2 * m2 - r1 * m1 * (m2 / m1)) / (m2 - m1) if m2 != m1 else r2
        L = float((m2 * r2 - m1 * r1) / (m2 - m1))
        return LimitFit(limit=L, stderr=float("nan"), residual=float("nan"), method="richardson")
