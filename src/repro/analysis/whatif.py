"""Counterfactual placement analysis: which decisions cost span?

For a finished schedule, each job's **regret** is the span reduction
achievable by re-placing *that job alone* optimally against the other
jobs' fixed intervals (the coordinate-wise best response, evaluated over
the breakpoint candidate set).  Ranked regrets answer the operator
question "which scheduling decisions hurt?" and quantify how far a
schedule is from coordinate-wise optimality (total regret 0 ⇔ local
search fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.intervals import Interval, IntervalUnion
from ..core.schedule import Schedule
from ..offline.heuristics import candidate_starts

__all__ = ["JobRegret", "placement_regrets", "total_regret"]


@dataclass(frozen=True)
class JobRegret:
    """One job's counterfactual: its best single-job re-placement."""

    job_id: int
    current_start: float
    best_start: float
    #: Span reduction if this job alone moved to ``best_start`` (>= 0).
    regret: float


def placement_regrets(schedule: Schedule) -> list[JobRegret]:
    """Per-job regrets, sorted by descending regret (ties by id).

    O(n² · candidates); intended for diagnostic use on moderate
    instances.
    """
    instance = schedule.instance
    jobs = list(instance.jobs)
    starts = schedule.starts()
    out: list[JobRegret] = []
    for job in jobs:
        others = IntervalUnion(
            Interval(starts[j.id], starts[j.id] + j.known_length)
            for j in jobs
            if j.id != job.id
        )
        p = job.known_length
        current_cost = others.added_measure(
            Interval(starts[job.id], starts[job.id] + p)
        )
        best_s = starts[job.id]
        best_cost = current_cost
        for s in candidate_starts(job, others):
            cost = others.added_measure(Interval(s, s + p))
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_s = s
        out.append(
            JobRegret(
                job_id=job.id,
                current_start=starts[job.id],
                best_start=best_s,
                regret=max(0.0, current_cost - best_cost),
            )
        )
    out.sort(key=lambda r: (-r.regret, r.job_id))
    return out


def total_regret(schedule: Schedule) -> float:
    """Sum of per-job regrets.

    Zero iff the schedule is a coordinate-wise (local-search) optimum.
    Note regrets are counterfactuals that don't compose — the sum is a
    diagnostic magnitude, not an achievable joint improvement.
    """
    return sum(r.regret for r in placement_regrets(schedule))
