"""Theorem verification harness: machine-check the paper on any instance.

``verify_theorems(instance)`` runs every machine-checkable claim of the
paper against one instance and reports pass/fail per check:

=====================  ==============================================
check                  claim
=====================  ==============================================
``batch-upper``        span(Batch) ≤ (2μ+1) · OPT̂           (Thm 3.4)
``batch-flag-chain``   span(Batch) ≤ (2μ+1)·Σp over the Thm 3.4
                       flag selection, which is pairwise disjoint
``batchplus-tight``    span(Batch+) ≤ (μ+1) · OPT̂           (Thm 3.5)
``cdb-bound``          span(CDB) ≤ (3α+4+2/(α−1)) · OPT̂     (Thm 4.4)
``profit-bound``       span(Profit) ≤ (2k+2+1/(k−1)) · OPT̂  (Thm 4.11)
``profit-overlap``     every non-flag job overlaps its flag by ≥ p/k
``lemma-4.6``          earlier-deadline Profit flags complete first
``lemma-4.7``          the Profit flag graph is a forest
``lb-sound``           chain/mandatory LB ≤ every measured span
=====================  ==============================================

OPT̂ is the certified *upper* end of the optimum bracket when OPT is not
exact — so a bound check can only fail when the theorem is genuinely
violated, never because of estimation error.  This is the library's
deepest self-test: run it on your own workloads
(``python -m repro verify``) to confirm the implementation honours the
theory on inputs the authors of this reproduction never saw.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import simulate
from ..core.job import Instance
from ..schedulers.batch import Batch
from ..schedulers.batch_plus import BatchPlus
from ..schedulers.cdb import ClassifyByDurationBatchPlus
from ..schedulers.profit import Profit
from .certify import bracket_optimum
from .flags import (
    build_flag_forest,
    check_forest_property,
    check_lemma_4_6,
    flags_pairwise_disjoint,
    select_disjoint_flags,
)
from .report import Table
from .theory import batch_upper_bound, batchplus_ratio, cdb_ratio, profit_ratio

__all__ = ["TheoremCheck", "TheoremReport", "verify_theorems"]

_TOL = 1e-9


@dataclass(frozen=True)
class TheoremCheck:
    """One verified claim."""

    name: str
    passed: bool
    measured: float
    bound: float
    detail: str = ""


@dataclass(frozen=True)
class TheoremReport:
    """All checks for one instance."""

    instance_name: str
    checks: tuple[TheoremCheck, ...]

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        table = Table(
            ["check", "measured", "bound", "ok"],
            title=f"theorem verification on {self.instance_name}",
            precision=4,
        )
        for c in self.checks:
            table.add(c.name, c.measured, c.bound, c.passed)
        return table.render()


def verify_theorems(
    instance: Instance,
    *,
    alpha: float | None = None,
    k: float | None = None,
) -> TheoremReport:
    """Run every machine-checkable theorem on one instance.

    ``alpha``/``k`` override the CDB/Profit parameters (defaults: the
    paper's optima).
    """
    if len(instance) == 0:
        return TheoremReport(instance_name=instance.name, checks=())
    mu = instance.mu
    opt = bracket_optimum(instance)
    opt_hat = opt.upper  # sound comparison point for <= bound·OPT claims

    checks: list[TheoremCheck] = []

    # ---- Batch (Theorem 3.4) -------------------------------------------
    batch = simulate(Batch(), instance)
    checks.append(
        TheoremCheck(
            "batch-upper",
            batch.span <= batch_upper_bound(mu) * opt_hat + _TOL,
            batch.span,
            batch_upper_bound(mu) * opt_hat,
        )
    )
    chosen = select_disjoint_flags(batch.instance, batch.scheduler.flag_job_ids)
    chosen_work = sum(batch.instance[j].known_length for j in chosen)
    checks.append(
        TheoremCheck(
            "batch-flag-chain",
            flags_pairwise_disjoint(batch.instance, chosen)
            and batch.span <= batch_upper_bound(mu) * chosen_work + _TOL,
            batch.span,
            batch_upper_bound(mu) * chosen_work,
            detail=f"{len(chosen)} chosen flags",
        )
    )

    # ---- Batch+ (Theorem 3.5) ------------------------------------------
    bp = simulate(BatchPlus(), instance)
    checks.append(
        TheoremCheck(
            "batchplus-tight",
            bp.span <= batchplus_ratio(mu) * opt_hat + _TOL,
            bp.span,
            batchplus_ratio(mu) * opt_hat,
        )
    )

    # ---- CDB (Theorem 4.4) ----------------------------------------------
    cdb_sched = (
        ClassifyByDurationBatchPlus()
        if alpha is None
        else ClassifyByDurationBatchPlus(alpha=alpha)
    )
    cdb = simulate(cdb_sched, instance, clairvoyant=True)
    checks.append(
        TheoremCheck(
            "cdb-bound",
            cdb.span <= cdb_ratio(cdb_sched.alpha) * opt_hat + _TOL,
            cdb.span,
            cdb_ratio(cdb_sched.alpha) * opt_hat,
        )
    )

    # ---- Profit (Theorem 4.11 + lemmas) ----------------------------------
    profit_sched = Profit() if k is None else Profit(k=k)
    profit = simulate(profit_sched, instance, clairvoyant=True)
    checks.append(
        TheoremCheck(
            "profit-bound",
            profit.span <= profit_ratio(profit_sched.k) * opt_hat + _TOL,
            profit.span,
            profit_ratio(profit_sched.k) * opt_hat,
        )
    )

    flags = profit.scheduler.flag_job_ids
    flag_set = set(flags)
    overlap_ok = True
    worst_fraction = 1.0
    for job in instance:
        if job.id in flag_set:
            continue
        fid = profit.scheduler.attribution[job.id]
        own = profit.schedule.interval_of(job.id)
        overlap = own.intersection_length(profit.schedule.interval_of(fid))
        fraction = overlap / own.length if own.length > 0 else 1.0
        worst_fraction = min(worst_fraction, fraction)
        if overlap < own.length / profit_sched.k - _TOL:
            overlap_ok = False
    checks.append(
        TheoremCheck(
            "profit-overlap",
            overlap_ok,
            worst_fraction,
            1.0 / profit_sched.k,
            detail="worst overlap fraction vs 1/k",
        )
    )
    checks.append(
        TheoremCheck(
            "lemma-4.6",
            check_lemma_4_6(profit.instance, flags),
            float(len(flags)),
            float(len(flags)),
            detail="completion order over flags",
        )
    )
    forest = build_flag_forest(profit.instance, flags)
    checks.append(
        TheoremCheck(
            "lemma-4.7",
            check_forest_property(forest),
            float(len(forest.roots)),
            float(len(flags)),
            detail="flag graph is a forest",
        )
    )

    # ---- lower-bound soundness -------------------------------------------
    min_span = min(batch.span, bp.span, cdb.span, profit.span)
    checks.append(
        TheoremCheck(
            "lb-sound",
            opt.lower <= min_span + _TOL,
            opt.lower,
            min_span,
            detail=f"opt bracket method: {opt.method}",
        )
    )

    return TheoremReport(instance_name=instance.name, checks=tuple(checks))
