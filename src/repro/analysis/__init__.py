"""Analysis: theory bounds, flag-forest structure, reports, Gantt charts."""

from .certify import OptBracket, RatioBracket, bracket_optimum, measure_ratio
from .compare import ComparisonMatrix, compare_schedulers
from .convergence import LimitFit, fit_limit
from .curves import render_curve, render_curves
from .decompose import SpanComponent, decompose_span, iteration_attribution
from .flags import (
    FlagForest,
    build_flag_forest,
    check_forest_property,
    check_lemma_4_6,
    flags_pairwise_disjoint,
    select_disjoint_flags,
)
from .gantt import render_gantt
from .montecarlo import TrialSummary, estimate_adversarial_ratio, estimate_expected_ratio
from .report import Table, format_markdown, format_table
from .summary import RunSummary, summarize_run
from .verify import TheoremCheck, TheoremReport, verify_theorems
from .whatif import JobRegret, placement_regrets, total_regret
from .theory import (
    CLAIRVOYANT_LOWER_BOUND,
    batch_lower_bound,
    batch_upper_bound,
    batchplus_ratio,
    cdb_ratio,
    clairvoyant_adversary_ratio,
    nonclairvoyant_lower_bound,
    optimal_cdb_alpha,
    optimal_cdb_ratio,
    optimal_profit_k,
    optimal_profit_ratio,
    profit_ratio,
)

__all__ = [
    "OptBracket",
    "RatioBracket",
    "bracket_optimum",
    "measure_ratio",
    "ComparisonMatrix",
    "compare_schedulers",
    "LimitFit",
    "fit_limit",
    "render_curve",
    "render_curves",
    "SpanComponent",
    "decompose_span",
    "iteration_attribution",
    "FlagForest",
    "build_flag_forest",
    "check_forest_property",
    "check_lemma_4_6",
    "select_disjoint_flags",
    "flags_pairwise_disjoint",
    "render_gantt",
    "TrialSummary",
    "estimate_expected_ratio",
    "estimate_adversarial_ratio",
    "Table",
    "format_table",
    "format_markdown",
    "RunSummary",
    "summarize_run",
    "JobRegret",
    "placement_regrets",
    "total_regret",
    "TheoremCheck",
    "TheoremReport",
    "verify_theorems",
    "CLAIRVOYANT_LOWER_BOUND",
    "batch_lower_bound",
    "batch_upper_bound",
    "batchplus_ratio",
    "cdb_ratio",
    "clairvoyant_adversary_ratio",
    "nonclairvoyant_lower_bound",
    "optimal_cdb_alpha",
    "optimal_cdb_ratio",
    "optimal_profit_k",
    "optimal_profit_ratio",
    "profit_ratio",
]
