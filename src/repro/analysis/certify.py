"""Competitive-ratio certification: sound brackets for span/OPT.

Measuring a competitive ratio needs ``span_min``.  Depending on instance
size and arithmetic, this module picks the strongest available method
and returns a **bracket**, never a point estimate of unknown quality:

* tiny instances — exact OPT (integral branch-and-bound or the float
  candidate-closure solver): bracket collapses to a point;
* everything else — ``[chain lower bound, best offline heuristic]``:
  the true ratio lies in ``[span/upper, span/lower]``.

Used by the benchmark harness and the CLI so every reported number
carries its certainty.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import simulate
from ..core.errors import SolverError
from ..core.job import Instance
from ..offline.exact_float import MAX_JOBS as FLOAT_MAX_JOBS
from ..offline.exact_float import exact_optimal_span_float
from ..offline.heuristics import best_offline_span
from ..offline.lower_bounds import span_lower_bound
from ..schedulers.base import OnlineScheduler

__all__ = ["OptBracket", "RatioBracket", "bracket_optimum", "measure_ratio"]

#: Exact solving is attempted up to this many jobs.
EXACT_JOB_LIMIT = 10
#: The float (candidate-closure) solver's cost grows like 3^n; restrict
#: automatic attempts harder than its hard MAX_JOBS cap.
FLOAT_EXACT_JOB_LIMIT = 6
#: Node budget granted to the exact attempts before falling back.
EXACT_NODE_BUDGET = 500_000


@dataclass(frozen=True)
class OptBracket:
    """A certified bracket ``lower <= span_min <= upper``.

    ``method`` names how it was obtained (``"exact"``, ``"exact-float"``
    or ``"bounds"``).
    """

    lower: float
    upper: float
    method: str

    @property
    def exact(self) -> bool:
        return self.method.startswith("exact")

    @property
    def width(self) -> float:
        return self.upper - self.lower


@dataclass(frozen=True)
class RatioBracket:
    """A certified bracket on a measured competitive ratio."""

    span: float
    opt: OptBracket

    @property
    def lower(self) -> float:
        """The ratio is at least this (span over OPT's upper bound)."""
        return self.span / self.opt.upper if self.opt.upper > 0 else float("inf")

    @property
    def upper(self) -> float:
        """The ratio is at most this (span over OPT's lower bound)."""
        return self.span / self.opt.lower if self.opt.lower > 0 else float("inf")

    @property
    def exact(self) -> bool:
        return self.opt.exact

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.exact:
            return f"{self.lower:.4f} (exact)"
        return f"[{self.lower:.4f}, {self.upper:.4f}]"


def bracket_optimum(instance: Instance, *, use_lp: bool = False) -> OptBracket:
    """The strongest certified bracket on ``span_min`` we can compute.

    ``use_lp=True`` additionally solves the time-indexed LP relaxation
    (integral instances, bounded horizon) to raise the bracket's lower
    end when exact solving is infeasible — slower but tighter.
    """
    if len(instance) == 0:
        return OptBracket(0.0, 0.0, "exact")
    if instance.is_integral:
        # Decomposition first: exact solving scales with the *largest
        # independent component*, not the job count, so even large sparse
        # instances certify exactly.
        try:
            from ..offline.decompose_instance import (
                exact_optimal_span_decomposed,
            )

            opt = exact_optimal_span_decomposed(
                instance,
                max_component=EXACT_JOB_LIMIT,
                node_budget=EXACT_NODE_BUDGET,
            )
            return OptBracket(opt, opt, "exact")
        except SolverError:
            pass  # a component too large/wide — fall through
    if len(instance) <= min(FLOAT_EXACT_JOB_LIMIT, FLOAT_MAX_JOBS):
        try:
            opt = exact_optimal_span_float(
                instance, node_budget=EXACT_NODE_BUDGET
            )
            return OptBracket(opt, opt, "exact-float")
        except SolverError:
            pass
    lower = span_lower_bound(instance)
    method = "bounds"
    if use_lp and instance.is_integral:
        try:
            from ..offline.lp_bound import lp_lower_bound

            lp = lp_lower_bound(instance)
            if lp > lower:
                lower = lp
                method = "bounds+lp"
        except SolverError:
            pass
    return OptBracket(lower, best_offline_span(instance), method)


def measure_ratio(
    scheduler: OnlineScheduler,
    instance: Instance,
    *,
    clairvoyant: bool | None = None,
) -> RatioBracket:
    """Run a scheduler and bracket its competitive ratio on the instance."""
    mode = (
        type(scheduler).requires_clairvoyance if clairvoyant is None else clairvoyant
    )
    result = simulate(scheduler.clone(), instance, clairvoyant=mode)
    return RatioBracket(span=result.span, opt=bracket_optimum(instance))
