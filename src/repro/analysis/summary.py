"""One-call run summaries: everything about a simulation in one report.

``summarize_run(result)`` gathers the quantities scattered across the
metric and analysis modules — span, parallelism, concurrency, busy
components, flag/iteration structure, ratio bracket — into a single
:class:`RunSummary` with a terminal rendering.  Used by the CLI and the
examples; handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import SimulationResult
from ..core.metrics import overlap_fraction, parallelism, schedule_concurrency
from .certify import OptBracket, bracket_optimum
from .decompose import decompose_span
from .report import Table

__all__ = ["RunSummary", "summarize_run"]


@dataclass(frozen=True)
class RunSummary:
    """Aggregate view of one simulation run."""

    scheduler: str
    instance_name: str
    jobs: int
    span: float
    total_work: float
    parallelism: float
    overlap_fraction: float
    peak_concurrency: int
    busy_components: int
    events: int
    flag_count: int
    opt: OptBracket

    @property
    def ratio_lower(self) -> float:
        return self.span / self.opt.upper if self.opt.upper > 0 else float("inf")

    @property
    def ratio_upper(self) -> float:
        return self.span / self.opt.lower if self.opt.lower > 0 else float("inf")

    def render(self) -> str:
        table = Table(
            ["metric", "value"],
            title=f"{self.scheduler} on {self.instance_name}",
        )
        table.add("jobs", self.jobs)
        table.add("span", self.span)
        table.add("total work", self.total_work)
        table.add("parallelism (work/span)", self.parallelism)
        table.add("overlap fraction", self.overlap_fraction)
        table.add("peak concurrency", self.peak_concurrency)
        table.add("busy components", self.busy_components)
        table.add("flag jobs", self.flag_count)
        table.add("events processed", self.events)
        if self.opt.exact:
            table.add("competitive ratio (exact)", self.ratio_lower)
        else:
            table.add("ratio lower (vs offline UB)", self.ratio_lower)
            table.add("ratio upper (vs chain LB)", self.ratio_upper)
        return table.render()


def summarize_run(
    result: SimulationResult, *, certify: bool = True
) -> RunSummary:
    """Build a :class:`RunSummary` from a finished simulation.

    ``certify=False`` skips the OPT bracket (instant, but no ratio).
    """
    schedule = result.schedule
    instance = result.instance
    comps = decompose_span(schedule)
    if certify:
        opt = bracket_optimum(instance)
        if not opt.exact and schedule.span < opt.upper:
            # The run itself is feasible: its span tightens the OPT upper
            # bound (so the reported ratio lower bound is never < 1).
            opt = OptBracket(
                lower=min(opt.lower, schedule.span),
                upper=schedule.span,
                method=opt.method,
            )
    else:
        opt = OptBracket(lower=float("nan"), upper=float("nan"), method="skipped")
    return RunSummary(
        scheduler=getattr(result.scheduler, "name", type(result.scheduler).__name__),
        instance_name=instance.name,
        jobs=len(instance),
        span=schedule.span,
        total_work=instance.total_work,
        parallelism=parallelism(schedule),
        overlap_fraction=overlap_fraction(schedule),
        peak_concurrency=schedule_concurrency(schedule).peak,
        busy_components=len(comps),
        events=result.events_processed,
        flag_count=len(getattr(result.scheduler, "flag_job_ids", [])),
        opt=opt,
    )
