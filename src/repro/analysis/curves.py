"""ASCII line charts for parameter sweeps.

The sweeps (α for CDB, k for Profit, β/θ for the heuristics, laxity for
E14) produce ``x → y`` curves; this renders them in the terminal so the
examples and the CLI can *show* the bound shapes without a plotting
dependency.  Multiple named series share the canvas; each uses its own
marker character.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_curve", "render_curves"]

_MARKERS = "*o+x#@%&"


def render_curves(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Points are plotted on a shared linear canvas; the legend maps marker
    characters to series names.  Raises on empty input.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    x_extent = max(x1 - x0, 1e-12)
    y_extent = max(y1 - y0, 1e-12)

    canvas = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        cx = min(width - 1, max(0, round((x - x0) / x_extent * (width - 1))))
        cy = min(height - 1, max(0, round((y - y0) / y_extent * (height - 1))))
        return height - 1 - cy, cx

    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        ordered = sorted(pts)
        # connect consecutive points with linear interpolation
        for (xa, ya), (xb, yb) in zip(ordered, ordered[1:]):
            steps = max(
                2,
                int(abs((xb - xa) / x_extent * (width - 1))) + 1,
            )
            for t in range(steps + 1):
                frac = t / steps
                r, c = cell(xa + frac * (xb - xa), ya + frac * (yb - ya))
                if canvas[r][c] == " ":
                    canvas[r][c] = "·"
        for x, y in ordered:
            r, c = cell(x, y)
            canvas[r][c] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y1:g}"
    bottom_label = f"{y0:g}"
    label_w = max(len(top_label), len(bottom_label), len(y_label))
    for r, row in enumerate(canvas):
        if r == 0:
            label = top_label
        elif r == height - 1:
            label = bottom_label
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}|")
    lines.append(" " * label_w + f"  {x0:<{width // 2 - 2}g}{x1:>{width // 2}g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)


def render_curve(
    points: Sequence[tuple[float, float]],
    *,
    name: str = "y",
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Single-series convenience wrapper around :func:`render_curves`."""
    return render_curves({name: points}, width=width, height=height, title=title)
