"""Head-to-head scheduler comparison: win/loss matrices.

Mean ratios (E10) hide *dominance structure*: scheduler A can have a
better mean than B while losing to it on a third of instances.  The
comparison matrix counts per-instance wins, giving the pairwise picture
a practitioner choosing a scheduler actually wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.engine import simulate
from ..core.job import Instance
from ..schedulers.base import OnlineScheduler
from .report import Table

__all__ = ["ComparisonMatrix", "compare_schedulers"]

#: Span differences below this relative tolerance count as ties.
_TIE_RTOL = 1e-9


@dataclass(frozen=True)
class ComparisonMatrix:
    """Pairwise win counts over a common instance set.

    ``wins[a][b]`` counts instances where scheduler ``a``'s span is
    strictly smaller than ``b``'s; ties are counted separately.
    """

    names: tuple[str, ...]
    wins: dict[str, dict[str, int]]
    ties: dict[str, dict[str, int]]
    instances: int

    def dominance(self, a: str, b: str) -> str:
        """``"a"``, ``"b"``, or ``"mixed"``: who never loses to whom."""
        if self.wins[b][a] == 0 and self.wins[a][b] > 0:
            return a
        if self.wins[a][b] == 0 and self.wins[b][a] > 0:
            return b
        if self.wins[a][b] == 0 and self.wins[b][a] == 0:
            return "tie"
        return "mixed"

    def render(self) -> str:
        table = Table(
            ["wins ↓ over →", *self.names],
            title=f"head-to-head wins over {self.instances} instances "
            "(row beats column)",
            precision=0,
        )
        for a in self.names:
            table.add(
                a,
                *[
                    "—" if a == b else self.wins[a][b]
                    for b in self.names
                ],
            )
        return table.render()


def compare_schedulers(
    schedulers: Sequence[OnlineScheduler],
    instances: Sequence[Instance],
) -> ComparisonMatrix:
    """Run every scheduler on every instance and tabulate pairwise wins."""
    names = tuple(s.name for s in schedulers)
    if len(set(names)) != len(names):
        raise ValueError("scheduler names must be unique")
    spans: dict[str, list[float]] = {n: [] for n in names}
    for inst in instances:
        for proto in schedulers:
            result = simulate(
                proto.clone(),
                inst,
                clairvoyant=type(proto).requires_clairvoyance,
            )
            spans[proto.name].append(result.span)
    wins = {a: {b: 0 for b in names} for a in names}
    ties = {a: {b: 0 for b in names} for a in names}
    for i in range(len(instances)):
        for a in names:
            for b in names:
                if a == b:
                    continue
                sa, sb = spans[a][i], spans[b][i]
                if abs(sa - sb) <= _TIE_RTOL * max(sa, sb, 1.0):
                    ties[a][b] += 1
                elif sa < sb:
                    wins[a][b] += 1
    return ComparisonMatrix(
        names=names, wins=wins, ties=ties, instances=len(instances)
    )
