"""Span decomposition: attribute a schedule's span to its components.

The proofs of Theorems 3.4/3.5/4.4/4.11 all follow the same accounting
pattern — charge every unit of span to some flag job's iteration.  This
module makes that accounting executable, which is useful both for
verifying the analyses numerically (tests) and for understanding *why* a
scheduler's span is what it is (debugging, the examples):

* :func:`decompose_span` — split the busy union into maximal contiguous
  components and report, per component, the jobs running in it, its
  length, and the dominant (longest) job.
* :func:`iteration_attribution` — for flag-based schedulers, attribute
  each busy component to the flag jobs whose iterations intersect it,
  reproducing the per-iteration charge ``(μ+1)·p(flag)`` of Theorem 3.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.intervals import Interval
from ..core.job import Instance
from ..core.schedule import Schedule

__all__ = ["SpanComponent", "decompose_span", "iteration_attribution"]


@dataclass(frozen=True)
class SpanComponent:
    """One maximal contiguous busy interval of a schedule."""

    interval: Interval
    job_ids: tuple[int, ...]
    #: The job contributing the most running time inside the component.
    dominant_job: int

    @property
    def length(self) -> float:
        return self.interval.length


def decompose_span(schedule: Schedule) -> list[SpanComponent]:
    """Split the schedule's busy time into contiguous components.

    The sum of component lengths equals the span exactly.
    """
    union = schedule.active_union()
    rows = list(schedule.rows())
    out: list[SpanComponent] = []
    for comp in union.components:
        members = [
            r for r in rows if r.interval.overlaps(comp)
        ]
        members.sort(key=lambda r: (r.start, r.job.id))
        dominant = max(
            members, key=lambda r: (r.interval.intersection_length(comp), -r.job.id)
        )
        out.append(
            SpanComponent(
                interval=comp,
                job_ids=tuple(r.job.id for r in members),
                dominant_job=dominant.job.id,
            )
        )
    return out


def iteration_attribution(
    instance: Instance, schedule: Schedule, flag_ids: list[int]
) -> dict[int, float]:
    """Charge each busy component's length to flag jobs, Theorem-3.5 style.

    Every component is attributed to the flag jobs whose active intervals
    intersect it, splitting the length equally among them (components
    with no intersecting flag — possible for Profit's immediately-started
    arrivals outlasting their flag — are charged to the nearest earlier
    flag, or reported under id ``-1`` if none exists).

    Returns ``flag id -> charged span``; values sum to the span.
    """
    comps = decompose_span(schedule)
    flag_intervals = {
        fid: schedule.interval_of(fid) for fid in flag_ids
    }
    charges: dict[int, float] = {fid: 0.0 for fid in flag_ids}
    charges[-1] = 0.0
    for comp in comps:
        hit = [
            fid
            for fid, iv in flag_intervals.items()
            if iv.overlaps(comp.interval)
        ]
        if not hit:
            earlier = [
                fid
                for fid, iv in flag_intervals.items()
                if iv.right <= comp.interval.left
            ]
            if earlier:
                hit = [max(earlier, key=lambda f: flag_intervals[f].right)]
            else:
                hit = [-1]
        share = comp.length / len(hit)
        for fid in hit:
            charges[fid] += share
    if charges[-1] == 0.0:
        del charges[-1]
    return charges
