"""ASCII Gantt rendering of schedules.

Quick visual inspection of what a scheduler did — used by the examples
and handy in a REPL.  Each job renders as one row of ``█`` over its
active interval, with ``·`` marking the (unused) flexibility window
``[arrival, deadline]`` around it.
"""

from __future__ import annotations

from ..core.schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(
    schedule: Schedule,
    *,
    width: int = 78,
    max_jobs: int = 40,
    show_window: bool = True,
) -> str:
    """Render the schedule as an ASCII Gantt chart.

    Parameters
    ----------
    width:
        Character width of the time axis.
    max_jobs:
        Rows are truncated beyond this many jobs (with a note).
    show_window:
        Also shade each job's start-flexibility window.
    """
    rows = sorted(schedule.rows(), key=lambda r: (r.start, r.job.id))
    if not rows:
        return "(empty schedule)"
    t0 = min(min(r.job.arrival for r in rows), min(r.start for r in rows))
    t1 = max(r.end for r in rows)
    extent = max(t1 - t0, 1e-9)

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) / extent * (width - 1))))

    lines = [
        f"time [{t0:g}, {t1:g}]   span={schedule.span:g}   "
        f"jobs={len(rows)}"
    ]
    shown = rows[:max_jobs]
    id_w = max(len(str(r.job.id)) for r in shown)
    for r in shown:
        canvas = [" "] * width
        if show_window:
            for c in range(col(r.job.arrival), col(r.job.deadline) + 1):
                canvas[c] = "·"
        lo, hi = col(r.start), col(r.end)
        for c in range(lo, max(lo + 1, hi)):
            canvas[c] = "█"
        lines.append(f"J{str(r.job.id).rjust(id_w)} |{''.join(canvas)}|")
    if len(rows) > max_jobs:
        lines.append(f"… {len(rows) - max_jobs} more jobs not shown")
    return "\n".join(lines)
