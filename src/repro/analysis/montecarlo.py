"""Monte-Carlo estimation for randomized schedulers.

Theorems 3.3 and 4.1 bound *deterministic* schedulers; whether
randomization helps against these adversaries is a natural follow-up
(the paper's lower-bound instances are adaptive, so the standard
oblivious-adversary advantage need not apply).  This module provides the
estimation machinery experiment E15 uses:

* :func:`estimate_expected_ratio` — run a randomized scheduler many
  times (fresh seeds) on a fixed instance or adversary factory and
  report mean ratio with a normal-approximation confidence interval;
* :class:`TrialSummary` — the per-experiment record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.engine import simulate
from ..core.job import Instance
from ..perf.parallel import ParallelRunner, get_default_runner
from ..schedulers.base import OnlineScheduler

__all__ = ["TrialSummary", "estimate_expected_ratio", "estimate_adversarial_ratio"]


@dataclass(frozen=True)
class TrialSummary:
    """Aggregated Monte-Carlo trials of a (randomized) scheduler."""

    ratios: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.ratios)

    @property
    def mean(self) -> float:
        return float(np.mean(self.ratios))

    @property
    def std(self) -> float:
        return float(np.std(self.ratios, ddof=1)) if self.n > 1 else 0.0

    @property
    def stderr(self) -> float:
        return self.std / np.sqrt(self.n) if self.n > 0 else 0.0

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean ratio."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)

    @property
    def worst(self) -> float:
        return float(max(self.ratios)) if self.ratios else float("nan")

    @property
    def best(self) -> float:
        return float(min(self.ratios)) if self.ratios else float("nan")


def _run_trial(task: tuple[OnlineScheduler, Instance, bool]) -> float:
    """Simulate one Monte-Carlo trial (top-level: picklable for pools)."""
    scheduler, instance, mode = task
    return simulate(scheduler, instance, clairvoyant=mode).span


def estimate_expected_ratio(
    make_scheduler: Callable[[int], OnlineScheduler],
    instance: Instance,
    reference: float,
    *,
    trials: int = 50,
    clairvoyant: bool | None = None,
    workers: int | str | None = None,
    runner: ParallelRunner | None = None,
) -> TrialSummary:
    """Expected span ratio of a seeded randomized scheduler on a fixed
    instance.

    Trials are independent, so they fan out over a process pool when
    ``workers`` (or the ``REPRO_WORKERS`` environment variable) asks for
    one.  Every trial's scheduler is constructed *up front* from its own
    seed in trial order, so parallel results are bit-identical to serial
    ones; when the factory closes over unpicklable state the runner
    quietly degrades to serial execution.

    Parameters
    ----------
    make_scheduler:
        ``seed -> scheduler`` factory (fresh randomness per trial).
    reference:
        The denominator (exact OPT or a certified bound).
    workers / runner:
        Parallel fan-out controls (see
        :class:`repro.perf.ParallelRunner`).
    """
    if reference <= 0:
        raise ValueError("reference span must be positive")
    if runner is None:
        runner = (
            get_default_runner() if workers is None else ParallelRunner(workers)
        )
    tasks = []
    for seed in range(trials):
        sched = make_scheduler(seed)
        mode = (
            type(sched).requires_clairvoyance
            if clairvoyant is None
            else clairvoyant
        )
        tasks.append((sched, instance, mode))
    spans = runner.map(_run_trial, tasks)
    return TrialSummary(ratios=tuple(span / reference for span in spans))


def estimate_adversarial_ratio(
    make_scheduler: Callable[[int], OnlineScheduler],
    make_adversary: Callable[[], object],
    *,
    trials: int = 50,
    clairvoyant: bool = False,
) -> TrialSummary:
    """Expected forced ratio of a randomized scheduler against a fresh
    *adaptive* adversary per trial.

    The adversary must expose ``paper_optimal_schedule(instance)``; the
    per-trial denominator is that witness's span (a feasible schedule,
    so each trial's ratio is a sound upper-estimate of span/OPT).
    """
    ratios = []
    for seed in range(trials):
        adv = make_adversary()
        result = simulate(
            make_scheduler(seed), adversary=adv, clairvoyant=clairvoyant
        )
        witness = adv.paper_optimal_schedule(result.instance)  # type: ignore[attr-defined]
        ratios.append(result.span / witness.span)
    return TrialSummary(ratios=tuple(ratios))
