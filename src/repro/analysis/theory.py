"""Closed-form competitive bounds from the paper's theorems.

Every theorem's bound is exposed as a function so that benches and tests
compare measured ratios against the exact expressions rather than
hard-coded constants:

=============================  ==========================================
Theorem 3.3 (lower bound)      :func:`nonclairvoyant_lower_bound`
Theorem 3.4 (Batch)            :func:`batch_upper_bound`, ``batch_lower_bound``
Theorem 3.5 (Batch+)           :func:`batchplus_ratio` (tight)
Theorem 4.1 (lower bound)      :data:`CLAIRVOYANT_LOWER_BOUND` (φ)
Theorem 4.4 (CDB)              :func:`cdb_ratio`, :func:`optimal_cdb_alpha`
Theorem 4.11 (Profit)          :func:`profit_ratio`, :func:`optimal_profit_k`
=============================  ==========================================
"""

from __future__ import annotations

import math

__all__ = [
    "CLAIRVOYANT_LOWER_BOUND",
    "batch_upper_bound",
    "batch_lower_bound",
    "batchplus_ratio",
    "cdb_ratio",
    "optimal_cdb_alpha",
    "optimal_cdb_ratio",
    "profit_ratio",
    "optimal_profit_k",
    "optimal_profit_ratio",
    "nonclairvoyant_lower_bound",
    "clairvoyant_adversary_ratio",
]

#: Theorem 4.1: the golden ratio φ = (√5+1)/2 ≈ 1.618.
CLAIRVOYANT_LOWER_BOUND = (math.sqrt(5.0) + 1.0) / 2.0


def batch_upper_bound(mu: float) -> float:
    """Theorem 3.4 upper bound: Batch is at most ``(2μ+1)``-competitive."""
    _require_mu(mu)
    return 2.0 * mu + 1.0


def batch_lower_bound(mu: float) -> float:
    """Theorem 3.4 lower bound: Batch is at least ``2μ``-competitive."""
    _require_mu(mu)
    return 2.0 * mu


def batchplus_ratio(mu: float) -> float:
    """Theorem 3.5: Batch+'s tight competitive ratio ``μ + 1``."""
    _require_mu(mu)
    return mu + 1.0


def cdb_ratio(alpha: float) -> float:
    """Theorem 4.4: CDB's bound ``3α + 4 + 2/(α-1)`` for category ratio α."""
    if alpha <= 1:
        raise ValueError(f"alpha must exceed 1, got {alpha}")
    return 3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0)


def optimal_cdb_alpha() -> float:
    """The α minimising :func:`cdb_ratio`: ``1 + √(2/3)``."""
    return 1.0 + math.sqrt(2.0 / 3.0)


def optimal_cdb_ratio() -> float:
    """The minimised CDB bound ``7 + 2√6 ≈ 11.899``."""
    return 7.0 + 2.0 * math.sqrt(6.0)


def profit_ratio(k: float) -> float:
    """Theorem 4.11: Profit's bound ``2k + 2 + 1/(k-1)`` for parameter k."""
    if k <= 1:
        raise ValueError(f"k must exceed 1, got {k}")
    return 2.0 * k + 2.0 + 1.0 / (k - 1.0)


def optimal_profit_k() -> float:
    """The k minimising :func:`profit_ratio`: ``1 + √2/2``."""
    return 1.0 + math.sqrt(2.0) / 2.0


def optimal_profit_ratio() -> float:
    """The minimised Profit bound ``4 + 2√2 ≈ 6.828``."""
    return 4.0 + 2.0 * math.sqrt(2.0)


def nonclairvoyant_lower_bound(k: int, mu: float, counts: list[int] | None = None) -> float:
    """Theorem 3.3's forced ratio for iteration budget ``k``:

    ``min{ √N₁, min_{2<=i<=k} ((i-1)μ + √N_{i}) / (μ + i - 1),
           (kμ + 1) / (μ + k) }``

    With the paper's doubly-exponential counts (``counts=None``) this
    approaches μ as ``k → ∞``; pass explicit per-iteration job counts to
    evaluate the same expression for a scaled profile.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    _require_mu(mu)
    if counts is None:
        # √N_i = 2^(2^(2k-i)); overflows quickly, so work in logs and cap.
        def sqrt_count(i: int) -> float:
            exponent = 2 ** (2 * k - i)
            return float("inf") if exponent > 1000 else float(2**exponent)
    else:
        if len(counts) != k:
            raise ValueError(f"need {k} iteration counts, got {len(counts)}")

        def sqrt_count(i: int) -> float:
            return math.sqrt(counts[i - 1])

    candidates = [sqrt_count(1)]
    for i in range(2, k + 1):
        candidates.append(((i - 1) * mu + sqrt_count(i)) / (mu + i - 1))
    candidates.append((k * mu + 1.0) / (mu + k))
    return min(candidates)


def clairvoyant_adversary_ratio(n: int) -> float:
    """Theorem 4.1's forced ratio with iteration budget ``n``:
    ``min(φ, nφ / (φ + n - 1))`` — i.e. the final-iteration branch, the
    binding one; early stops force exactly φ."""
    if n < 1:
        raise ValueError("n must be at least 1")
    phi = CLAIRVOYANT_LOWER_BOUND
    return min(phi, n * phi / (phi + n - 1.0))


def _require_mu(mu: float) -> None:
    if mu < 1:
        raise ValueError(f"mu must be at least 1, got {mu}")
