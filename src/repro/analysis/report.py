"""Fixed-width result tables for benches and the CLI.

The paper has no numeric tables, so our experiment outputs define the
house style: a compact monospaced table with a title, aligned columns,
and consistent float formatting — the same renderer is reused by every
bench so EXPERIMENTS.md rows are directly copy-pasteable.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_markdown", "Table"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "∞"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a fixed-width table.

    Floats are formatted to ``precision`` decimals; booleans as yes/no.
    """
    str_rows = [[_fmt(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class Table:
    """Incremental table builder with the same rendering."""

    def __init__(self, headers: Sequence[str], title: str | None = None, precision: int = 4) -> None:
        self.headers = list(headers)
        self.title = title
        self.precision = precision
        self.rows: list[list[Any]] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        return format_table(
            self.headers, self.rows, title=self.title, precision=self.precision
        )

    def render_markdown(self) -> str:
        return format_markdown(self.headers, self.rows, precision=self.precision)

    def print(self) -> None:
        print(self.render())


def format_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    precision: int = 4,
) -> str:
    """Render the same table as GitHub-flavoured markdown.

    Used to paste regenerated results straight into EXPERIMENTS.md.
    """
    str_rows = [[_fmt(v, precision) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
