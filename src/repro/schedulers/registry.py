"""Scheduler registry: name-based lookup for the CLI and harnesses.

The registry maps short names (``"batch+"``, ``"profit"``, …) to factory
callables producing *fresh* scheduler instances, optionally parameterised
(e.g. ``make_scheduler("profit", k=2.0)``).
"""

from __future__ import annotations

from typing import Any

from .base import OnlineScheduler
from .batch import Batch
from .batch_plus import BatchPlus
from .cdb import ClassifyByDurationBatchPlus
from .doubler import Doubler
from .eager import Eager
from .epoch_batch import EpochBatch
from .greedy_cover import GreedyCover
from .lazy import Lazy
from .profit import Profit
from .random_start import RandomStart
from .wait_scale import WaitScale

__all__ = [
    "SCHEDULERS",
    "make_scheduler",
    "scheduler_names",
    "nonclairvoyant_schedulers",
    "clairvoyant_schedulers",
]

SCHEDULERS: dict[str, type[OnlineScheduler]] = {
    Eager.name: Eager,
    Lazy.name: Lazy,
    RandomStart.name: RandomStart,
    Batch.name: Batch,
    BatchPlus.name: BatchPlus,
    ClassifyByDurationBatchPlus.name: ClassifyByDurationBatchPlus,
    Profit.name: Profit,
    Doubler.name: Doubler,
    WaitScale.name: WaitScale,
    GreedyCover.name: GreedyCover,
    EpochBatch.name: EpochBatch,
}


def make_scheduler(name: str, **kwargs: Any) -> OnlineScheduler:
    """Instantiate a registered scheduler by name.

    Raises ``KeyError`` with the available names on an unknown name.
    """
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}"
        ) from None
    return factory(**kwargs)


def scheduler_names() -> list[str]:
    """All registered scheduler names, sorted."""
    return sorted(SCHEDULERS)


def nonclairvoyant_schedulers() -> list[str]:
    """Names of schedulers usable without length information."""
    return sorted(
        name for name, cls in SCHEDULERS.items() if not cls.requires_clairvoyance
    )


def clairvoyant_schedulers() -> list[str]:
    """Names of schedulers requiring length information at arrival."""
    return sorted(
        name for name, cls in SCHEDULERS.items() if cls.requires_clairvoyance
    )
