"""The Lazy baseline: delay every job to its starting deadline.

Section 3.2 of the paper observes that Lazy "cannot achieve any bounded
competitive ratio for any given μ either, since it does not take any
advantage of the flexibility offered by the laxity" — deadlines may be
spread out even when arrivals cluster, so Lazy serialises work an optimal
scheduler would overlap.  Experiment E7 demonstrates the unbounded ratio.
"""

from __future__ import annotations

from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from .base import OnlineScheduler

__all__ = ["Lazy"]


class Lazy(OnlineScheduler):
    """Start each job exactly at its starting deadline."""

    name: ClassVar[str] = "lazy"
    requires_clairvoyance: ClassVar[bool] = False

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        ctx.start(job.id)

    def describe(self) -> str:
        return "Lazy (start at deadline)"
