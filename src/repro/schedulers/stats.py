"""Per-iteration statistics for batch-style schedulers.

Batch, Batch+ (and CDB through its sub-schedulers) operate in
flag-anchored iterations; :class:`IterationRecord` captures each one so
analyses can inspect batch sizes, iteration spacing and open-phase
pickups without re-deriving them from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IterationRecord"]


@dataclass
class IterationRecord:
    """One scheduler iteration, anchored by its flag job.

    Attributes
    ----------
    flag_id:
        The flag job's id.
    start_time:
        When the iteration started (the flag's starting deadline).
    batch_job_ids:
        Jobs started together with the flag (the pending set), flag
        included.
    open_started_job_ids:
        Jobs started during the open phase (Batch+ only; empty for
        Batch).
    """

    flag_id: int
    start_time: float
    batch_job_ids: list[int] = field(default_factory=list)
    open_started_job_ids: list[int] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.batch_job_ids)

    @property
    def total_jobs(self) -> int:
        return len(self.batch_job_ids) + len(self.open_started_job_ids)
