"""The Batch scheduler (Section 3.2, Theorem 3.4).

Batch determines start times in iterations.  In each iteration it waits
until some pending job hits its starting deadline; that job is the
iteration's **flag job**.  At the flag job's deadline, Batch starts *all*
pending jobs simultaneously and then returns to waiting for the next
pending job to hit its deadline.

The paper proves Batch's competitive ratio lies between ``2μ`` and
``2μ + 1`` in the non-clairvoyant setting (Theorem 3.4).  The lower bound
is forced by the three-group instance of Figure 2, reproduced by
``repro.adversaries.tightness.batch_tightness_instance``.

Implementation notes
--------------------
The engine's deadline events drive the iterations: the *first* deadline
event among pending jobs belongs to the earliest-deadline pending job —
exactly the paper's flag-job choice.  When several pending jobs share the
flag's deadline, the first-fired event designates the flag and the batch
start covers the rest, whose own deadline events are then skipped by the
engine (any tie-break is admissible per the paper).
"""

from __future__ import annotations

from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from .base import OnlineScheduler
from .stats import IterationRecord

__all__ = ["Batch"]


class Batch(OnlineScheduler):
    """Batch: start all pending jobs whenever one hits its deadline."""

    name: ClassVar[str] = "batch"
    requires_clairvoyance: ClassVar[bool] = False

    def __init__(self) -> None:
        super().__init__()
        #: Per-iteration records, in iteration order.
        self.iterations: list[IterationRecord] = []

    def reset(self) -> None:
        super().reset()
        self.iterations = []

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        # ``job`` is the flag job of this iteration: the engine fires
        # deadline events in deadline order, and a pending job reaching its
        # deadline is by construction the earliest-deadline pending job.
        self.flag_job_ids.append(job.id)
        record = IterationRecord(flag_id=job.id, start_time=ctx.now)
        obs = self.obs
        if obs.enabled:
            now = ctx.now
            label = self._obs_scheduler
            for pending in ctx.pending():
                if pending.id == job.id:
                    obs.decision(
                        "deadline-flag",
                        job=pending.id,
                        t=now,
                        scheduler=label,
                        deadline=pending.deadline,
                    )
                else:
                    obs.decision(
                        "batch-start",
                        job=pending.id,
                        t=now,
                        scheduler=label,
                        flag=job.id,
                    )
                record.batch_job_ids.append(pending.id)
                ctx.start(pending.id)
        else:
            # Vectorised cohort start: same (deadline, arrival, id) order
            # as ctx.pending(), no per-job views, and the columnar core
            # executes the whole batch as array operations.
            ids = ctx.pending_ids()
            record.batch_job_ids.extend(ids)
            ctx.start_batch(ids)
        self.iterations.append(record)

    def describe(self) -> str:
        return "Batch (start all pending at each flag deadline)"
