"""GreedyCover: a coverage-threshold online heuristic.

Not from the paper — a practitioner's strawman for the comparison suite
(E10/E13): it approximates the *offline* greedy-overlap heuristic with
online information.  A pending job starts as soon as at least a fraction
``θ`` of its prospective run ``[now, now + p)`` is covered by the
committed busy time of already-started jobs (clairvoyant ⇒ their end
times are known); otherwise it waits, re-evaluated at every arrival and
completion, with the starting deadline as the backstop.

``θ = 0`` degenerates to Eager; ``θ = 1`` starts early only on full
coverage (Doubler-style piggybacking with a Lazy fallback).  Unlike
Profit, GreedyCover has no competitive guarantee — E13 measures how far
intuition gets without one.
"""

from __future__ import annotations

from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from ..core.intervals import Interval, IntervalUnion
from .base import OnlineScheduler

__all__ = ["GreedyCover"]


class GreedyCover(OnlineScheduler):
    """Start pending jobs once a θ-fraction of their run is covered.

    Parameters
    ----------
    theta:
        Coverage threshold in ``[0, 1]``.
    """

    name: ClassVar[str] = "greedy-cover"
    requires_clairvoyance: ClassVar[bool] = True

    def __init__(self, theta: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= theta <= 1.0:
            raise ValueError(f"theta must lie in [0, 1], got {theta}")
        self.theta = theta
        self._committed = IntervalUnion()
        self._pending: dict[int, JobView] = {}

    def clone(self) -> "GreedyCover":
        return GreedyCover(theta=self.theta)

    def reset(self) -> None:
        super().reset()
        self._committed = IntervalUnion()
        self._pending = {}

    # -- mechanics -----------------------------------------------------------
    def _coverage(self, now: float, length: float) -> float:
        if length <= 0:
            return 1.0
        iv = Interval(now, now + length)
        return self._committed.intersection_length(iv) / length

    def _start(self, ctx: SchedulerContext, job: JobView) -> None:
        self._pending.pop(job.id, None)
        self._committed = self._committed.insert(
            Interval(ctx.now, ctx.now + job.length)
        )
        ctx.start(job.id)

    def _sweep_pending(self, ctx: SchedulerContext) -> None:
        """Start every pending job whose coverage reached θ.

        Starting one job grows the committed union, which can unlock
        others — iterate to a fixpoint (each pass starts ≥ 1 job, so this
        terminates in ≤ |pending| passes).
        """
        progress = True
        while progress:
            progress = False
            for job in sorted(
                self._pending.values(), key=lambda v: (v.deadline, v.id)
            ):
                if self._coverage(ctx.now, job.length) >= self.theta - 1e-12:
                    self._start(ctx, job)
                    progress = True
                    break

    # -- hooks -------------------------------------------------------------------
    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        if self._coverage(ctx.now, job.length) >= self.theta - 1e-12:
            self._start(ctx, job)
        else:
            self._pending[job.id] = job

    def on_completion(self, ctx: SchedulerContext, job: JobView) -> None:
        # A completion never *increases* coverage, but new starts since
        # the last sweep might have; keep the sweep cheap and re-check.
        self._sweep_pending(ctx)

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        self._start(ctx, job)
        self._sweep_pending(ctx)

    def describe(self) -> str:
        return f"GreedyCover (θ={self.theta:g})"
