"""The Doubler scheduler — reconstructed Koehler–Khuller baseline.

The paper's concluding remarks cite concurrent work by Koehler and
Khuller (WADS 2017) whose unbounded-capacity online case equals
Clairvoyant FJS, with a 5-competitive scheduler named *Doubler*.  The
paper does not specify Doubler; we reconstruct the standard
wait-proportional-to-length ("doubling" / rent-or-buy) rule that their
analysis is built on:

    Each job ``J`` is delayed until time ``min(d(J), a(J) + p(J))`` —
    i.e. it waits for (at most) its own processing length before
    starting — unless it can piggyback for free: if at any moment the
    interval ``[now, now + p(J))`` is entirely inside the currently
    scheduled busy period, the job starts immediately (its execution adds
    zero span).

The intuition matches Profit with ``k = 1``-style accounting: a job that
waited ``p(J)`` and still had to start alone can charge its span to the
waiting period, giving O(1) competitiveness.  **This is a reconstruction,
not a verified reimplementation of [12]** (flagged in DESIGN.md §5); it
serves as the independent clairvoyant baseline of experiment E9.
"""

from __future__ import annotations

from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from ..core.intervals import Interval, IntervalUnion
from .base import OnlineScheduler

__all__ = ["Doubler"]


class Doubler(OnlineScheduler):
    """Doubler: wait for min(own length, laxity), piggyback when free."""

    name: ClassVar[str] = "doubler"
    requires_clairvoyance: ClassVar[bool] = True

    def __init__(self) -> None:
        super().__init__()
        # Busy time already committed by started jobs: union of their
        # active intervals (clairvoyant => end times known at start).
        self._committed = IntervalUnion()

    def reset(self) -> None:
        super().reset()
        self._committed = IntervalUnion()

    def _covered(self, start: float, length: float) -> bool:
        """Whether ``[start, start+length)`` adds no new span."""
        iv = Interval(start, start + length)
        return self._committed.intersection_length(iv) >= length - 1e-12

    def _start(self, ctx: SchedulerContext, job: JobView) -> None:
        self._committed = self._committed.insert(
            Interval(ctx.now, ctx.now + job.length)
        )
        ctx.start(job.id)

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        if self._covered(ctx.now, job.length):
            self._start(ctx, job)
            return
        wake = min(job.deadline, job.arrival + job.length)
        ctx.set_timer(wake, job.id)

    def on_timer(self, ctx: SchedulerContext, tag: int) -> None:
        job_id = tag
        if ctx.is_started(job_id):
            return
        # Find the job among pending views (it must pend: unstarted and
        # arrived, since its timer is within [arrival, deadline]).
        for job in ctx.pending():
            if job.id == job_id:
                self._start(ctx, job)
                return

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        # Backstop for timers scheduled exactly at the deadline: deadline
        # events run before timer events at equal times.
        self._start(ctx, job)

    def describe(self) -> str:
        return "Doubler (wait own length, piggyback when covered; reconstruction)"
