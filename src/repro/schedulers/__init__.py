"""Online schedulers for Flexible Job Scheduling.

Non-clairvoyant (Section 3): :class:`Batch`, :class:`BatchPlus`, and the
unbounded baselines :class:`Eager`, :class:`Lazy`, :class:`RandomStart`.

Clairvoyant (Section 4): :class:`ClassifyByDurationBatchPlus`,
:class:`Profit`, plus the reconstructed :class:`Doubler` baseline.
"""

from .base import OnlineScheduler
from .batch import Batch
from .batch_plus import BatchPlus
from .cdb import OPTIMAL_CDB_ALPHA, ClassifyByDurationBatchPlus, duration_category
from .doubler import Doubler
from .eager import Eager
from .epoch_batch import EpochBatch
from .greedy_cover import GreedyCover
from .lazy import Lazy
from .profit import OPTIMAL_PROFIT_K, Profit
from .random_start import RandomStart
from .stats import IterationRecord
from .wait_scale import WaitScale
from .registry import (
    SCHEDULERS,
    clairvoyant_schedulers,
    make_scheduler,
    nonclairvoyant_schedulers,
    scheduler_names,
)

__all__ = [
    "OnlineScheduler",
    "Batch",
    "BatchPlus",
    "ClassifyByDurationBatchPlus",
    "duration_category",
    "OPTIMAL_CDB_ALPHA",
    "Profit",
    "OPTIMAL_PROFIT_K",
    "Doubler",
    "Eager",
    "Lazy",
    "RandomStart",
    "IterationRecord",
    "WaitScale",
    "GreedyCover",
    "EpochBatch",
    "SCHEDULERS",
    "make_scheduler",
    "scheduler_names",
    "clairvoyant_schedulers",
    "nonclairvoyant_schedulers",
]
